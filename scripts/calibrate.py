"""Calibration harness: measure paper-target metrics on both profiles."""
import sys, time
from repro import LogGenerator, anl_profile, sdsc_profile, ThreePhasePredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.meta.stacked import MetaLearner
from repro.evaluation.crossval import cross_validate
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import MINUTE, HOUR

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
which = sys.argv[2] if len(sys.argv) > 2 else "both"
seed = int(sys.argv[3]) if len(sys.argv) > 3 else 42

def eval_profile(profile, rule_window):
    t = time.time()
    log = LogGenerator(profile, scale=scale, noise_multiplier=1.0, seed=seed).generate()
    p = ThreePhasePredictor()
    events = p.preprocess(log.raw).events
    fatal = events.fatal_events()
    print(f"--- {profile.name} scale={scale}: unique={len(events)} fatals={len(fatal)} gen={time.time()-t:.0f}s")
    # Table 5: statistical, band [5min, 1h], forced net/io
    t = time.time()
    cv = cross_validate(lambda: StatisticalPredictor(
        window=HOUR, lead=5*MINUTE,
        categories=[MainCategory.NETWORK, MainCategory.IOSTREAM]), events, k=10)
    print(f"Table5 statistical: P={cv.precision:.4f} R={cv.recall:.4f}  ({time.time()-t:.0f}s)")
    # follow probabilities (trigger auto-selection check)
    sp = StatisticalPredictor(window=HOUR, lead=5*MINUTE).fit(events)
    print("follow probs:", {c.value: round(v,3) for c,v in sorted(sp.follow_probability.items(), key=lambda kv:-kv[1])})
    # rules at W=30min
    t = time.time()
    for W in (5, 30, 60):
        cv = cross_validate(lambda: RuleBasedPredictor(
            rule_window=rule_window, prediction_window=W*MINUTE), events, k=10)
        print(f"rule W={W:2d}min: P={cv.precision:.4f} R={cv.recall:.4f}")
    rb = RuleBasedPredictor(rule_window=rule_window).fit(events)
    print(f"rules mined: {len(rb.ruleset)}; no-precursor frac: {rb.no_precursor_fraction:.3f} ({time.time()-t:.0f}s)")
    # meta
    t = time.time()
    for W in (5, 30, 60):
        cv = cross_validate(lambda: MetaLearner(
            prediction_window=W*MINUTE, rule_window=rule_window), events, k=10)
        print(f"meta W={W:2d}min: P={cv.precision:.4f} R={cv.recall:.4f}")
    print(f"meta time {time.time()-t:.0f}s")

if which in ("both", "anl"):
    eval_profile(anl_profile(), 15*MINUTE)
if which in ("both", "sdsc"):
    eval_profile(sdsc_profile(), 25*MINUTE)

def meta_diag(profile, rule_window, W):
    from repro.evaluation.matching import match_warnings
    log = LogGenerator(profile, scale=scale, seed=seed).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    cut = int(len(events)*0.7)
    ml = MetaLearner(prediction_window=W*MINUTE, rule_window=rule_window).fit(events.select(slice(0,cut)))
    test = events.select(slice(cut, len(events)))
    ws = ml.predict(test)
    m = match_warnings(ws, test)
    import collections
    per = collections.Counter()
    hit = collections.Counter()
    for w_, h in zip(ws, m.warning_hit):
        src = w_.detail.split(":")[0]
        per[src] += 1
        hit[src] += int(h)
    print(f"meta diag W={W}: P={m.metrics.precision:.3f} R={m.metrics.recall:.3f} dispatch={ml.dispatch_counts}")
    for k in per:
        print(f"    {k}: {per[k]} warnings, precision {hit[k]/per[k]:.3f}")

if which.endswith("diag"):
    prof = anl_profile() if "anl" in which else sdsc_profile()
    rw = 15*MINUTE if "anl" in which else 25*MINUTE
    for W in (5, 30, 60):
        meta_diag(prof, rw, W)
