import numpy as np, collections
from repro import LogGenerator, anl_profile, ThreePhasePredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.evaluation.matching import match_warnings
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import MINUTE, HOUR

log = LogGenerator(anl_profile(), scale=0.1, seed=42).generate()
p = ThreePhasePredictor()
events = p.preprocess(log.raw).events
print("unique", len(events), "fatals", len(events.fatal_events()))
# planted vs compressed fatal count
gt_fatal = sum(1 for e in log.ground_truth if __import__('repro.taxonomy.subcategories', fromlist=['by_name']).by_name(e.subcategory).is_fatal)
print("planted fatals", gt_fatal)

cut = int(len(events)*0.7)
train, test = events.select(slice(0,cut)), events.select(slice(cut,len(events)))
rb = RuleBasedPredictor(rule_window=15*MINUTE, prediction_window=30*MINUTE).fit(train)
print("no-precursor", round(rb.no_precursor_fraction,3), "rules:", len(rb.ruleset))
for r in rb.ruleset:
    print("  ", r.format(rb.ruleset.item_names), f"supp={r.support:.3f}")
warnings = rb.predict(test)
m = match_warnings(warnings, test)
print("rule: warnings", len(warnings), "P", round(m.metrics.precision,3), "R", round(m.metrics.recall,3))
# per-rule precision
stats = collections.Counter(); hits = collections.Counter()
for w, h in zip(warnings, m.warning_hit):
    key = w.detail.split(" ==>")[0]
    stats[key]+=1; hits[key]+=int(h)
for k in stats:
    print(f"   fire {stats[k]:4d} hit {hits[k]:4d} ({hits[k]/stats[k]:.2f})  {k}")

sp = StatisticalPredictor(window=HOUR, lead=5*MINUTE, categories=[MainCategory.NETWORK, MainCategory.IOSTREAM]).fit(train)
ws = sp.predict(test)
ms = match_warnings(ws, test)
print("stat: warnings", len(ws), "P", round(ms.metrics.precision,3), "R", round(ms.metrics.recall,3))
# ground-truth burst structure check on full fatal stream
fat = events.fatal_events()
ft = fat.times.astype(float)
from repro.util.windows import count_in_windows
follow = count_in_windows(ft, ft, 300, 3601) > 0
print("P(any fatal follows a fatal in [5,60]min):", round(follow.mean(),3))
