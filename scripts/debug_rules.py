"""Diagnostic dump for the rule-based and statistical predictors.

Generates a small ANL-profile log from an explicit seed, fits both base
predictors on a 70/30 temporal split and prints the mined rules, per-rule
firing precision and the fatal follow-up probability the statistical
predictor exploits.  Everything is deterministic given ``SEED`` — part of
the repro-lint contract for the linted ``scripts/`` tree.

Usage: PYTHONPATH=src python scripts/debug_rules.py
"""

import collections

from repro import LogGenerator, ThreePhasePredictor, anl_profile
from repro.evaluation.matching import match_warnings
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import by_name
from repro.util.timeutil import HOUR, MINUTE
from repro.util.windows import count_in_windows

SEED = 42
SCALE = 0.1


def main() -> None:
    log = LogGenerator(anl_profile(), scale=SCALE, seed=SEED).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    print("unique", len(events), "fatals", len(events.fatal_events()))
    planted = sum(
        1 for e in log.ground_truth if by_name(e.subcategory).is_fatal
    )
    print("planted fatals", planted)

    cut = int(len(events) * 0.7)
    train = events.select(slice(0, cut))
    test = events.select(slice(cut, len(events)))

    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=30 * MINUTE
    ).fit(train)
    print("no-precursor", round(rb.no_precursor_fraction, 3),
          "rules:", len(rb.ruleset))
    for rule in rb.ruleset:
        print("  ", rule.format(rb.ruleset.item_names),
              f"supp={rule.support:.3f}")
    warnings = rb.predict(test)
    matched = match_warnings(warnings, test)
    print("rule: warnings", len(warnings),
          "P", round(matched.metrics.precision, 3),
          "R", round(matched.metrics.recall, 3))

    # Per-rule firing precision.
    fired = collections.Counter()
    hits = collections.Counter()
    for warning, hit in zip(warnings, matched.warning_hit):
        key = warning.detail.split(" ==>")[0]
        fired[key] += 1
        hits[key] += int(hit)
    for key in fired:
        ratio = hits[key] / fired[key]
        print(f"   fire {fired[key]:4d} hit {hits[key]:4d} ({ratio:.2f})  {key}")

    sp = StatisticalPredictor(
        window=HOUR,
        lead=5 * MINUTE,
        categories=[MainCategory.NETWORK, MainCategory.IOSTREAM],
    ).fit(train)
    stat_warnings = sp.predict(test)
    stat_matched = match_warnings(stat_warnings, test)
    print("stat: warnings", len(stat_warnings),
          "P", round(stat_matched.metrics.precision, 3),
          "R", round(stat_matched.metrics.recall, 3))

    # Ground-truth burst structure check on the full fatal stream.
    fatal_times = events.fatal_events().times.astype(float)
    follow = count_in_windows(fatal_times, fatal_times, 300, 3601) > 0
    print("P(any fatal follows a fatal in [5,60]min):", round(follow.mean(), 3))


if __name__ == "__main__":
    main()
