"""Diagnostic dump for the statistical predictor's follow-up probabilities.

Reports, per main category, the probability that any fatal event follows a
fatal event of that category within the paper's [5 min, 60 min) horizon —
on the compressed stream, on the held-out test region and on the planted
ground truth.  Deterministic given ``SEED`` (repro-lint contract for
``scripts/``).

Usage: PYTHONPATH=src python scripts/debug_stat.py
"""

import numpy as np

from repro import LogGenerator, ThreePhasePredictor, anl_profile
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.taxonomy.subcategories import by_name
from repro.util.windows import count_in_windows

SEED = 42
SCALE = 0.1


def main() -> None:
    log = LogGenerator(anl_profile(), scale=SCALE, seed=SEED).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    fatal = events.fatal_events()
    clf = TaxonomyClassifier()
    cats = list(MainCategory)
    cat_ids = clf.main_category_ids(fatal)
    fatal_times = fatal.times.astype(float)
    n = len(fatal)
    print("fatals", n)
    for i, cat in enumerate(cats):
        anchors = fatal_times[cat_ids == i]
        if anchors.size == 0:
            continue
        follow = count_in_windows(fatal_times, anchors, 300, 3601) > 0
        print(f"{cat.value:12s} n={anchors.size:4d} P(follow)={follow.mean():.3f}")

    # Test region only (last 30%).
    cut = int(n * 0.7)
    test_times = fatal_times[cut:]
    test_ids = cat_ids[cut:]
    netio_idx = [cats.index(MainCategory.NETWORK), cats.index(MainCategory.IOSTREAM)]
    netio = np.isin(test_ids, netio_idx)
    anchors = test_times[netio]
    follow = count_in_windows(test_times, anchors, 300, 3601) > 0
    print("test netio:", anchors.size,
          "P(follow within test):", follow.mean().round(3))

    # Ground-truth check: planted burst network/IO spawn rate.
    gt = sorted(
        (e.time, by_name(e.subcategory).category)
        for e in log.ground_truth
        if by_name(e.subcategory).is_fatal
    )
    gt_times = np.array([t for t, _ in gt], float)
    gt_netio = np.array(
        [c in (MainCategory.NETWORK, MainCategory.IOSTREAM) for _, c in gt]
    )
    follow = count_in_windows(gt_times, gt_times[gt_netio], 300, 3601) > 0
    print("GT netio:", int(gt_netio.sum()), "P(follow):", follow.mean().round(3))
    follow_all = count_in_windows(gt_times, gt_times, 300, 3601) > 0
    print("GT all fatals:", len(gt_times), "P(follow):", follow_all.mean().round(3))

    # Recall potential: fatals with a network/IO trigger 5-60 min before.
    covered = count_in_windows(gt_times[gt_netio], gt_times, -3600, -299) > 0
    print("GT fatals w/ netio trigger before:", covered.mean().round(3))


if __name__ == "__main__":
    main()
