import numpy as np
from repro import LogGenerator, anl_profile, ThreePhasePredictor
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.taxonomy.categories import MainCategory
from repro.util.windows import count_in_windows

log = LogGenerator(anl_profile(), scale=0.1, seed=42).generate()
p = ThreePhasePredictor()
events = p.preprocess(log.raw).events
fat = events.fatal_events()
clf = TaxonomyClassifier()
cats = list(MainCategory)
cid = clf.main_category_ids(fat)
ft = fat.times.astype(float)
n = len(fat)
print("fatals", n)
for i, c in enumerate(cats):
    anchors = ft[cid == i]
    if anchors.size == 0: continue
    follow = count_in_windows(ft, anchors, 300, 3601) > 0
    print(f"{c.value:12s} n={anchors.size:4d} P(follow)={follow.mean():.3f}")
# test region only (last 30%)
cut = int(n*0.7)
test_ft = ft[cut:]
test_cid = cid[cut:]
netio = np.isin(test_cid, [cats.index(MainCategory.NETWORK), cats.index(MainCategory.IOSTREAM)])
anchors = test_ft[netio]
follow = count_in_windows(test_ft, anchors, 300, 3601) > 0
print("test netio:", anchors.size, "P(follow within test):", follow.mean().round(3))
# ground truth check: planted burst netio spawn rate
from repro.taxonomy.subcategories import by_name
gt_f = [(e.time, by_name(e.subcategory).category) for e in log.ground_truth if by_name(e.subcategory).is_fatal]
gt_f.sort()
gt_t = np.array([t for t,_ in gt_f], float)
gt_netio = np.array([c in (MainCategory.NETWORK, MainCategory.IOSTREAM) for _,c in gt_f])
fol = count_in_windows(gt_t, gt_t[gt_netio], 300, 3601) > 0
print("GT netio:", gt_netio.sum(), "P(follow):", fol.mean().round(3))
fol_all = count_in_windows(gt_t, gt_t, 300, 3601) > 0
print("GT all fatals:", len(gt_t), "P(follow):", fol_all.mean().round(3))
# how many fatals are covered (recall potential)
cov = count_in_windows(gt_t[gt_netio], gt_t, -3600, -299) > 0  # a netio fatal 5-60min BEFORE
print("GT fatals w/ netio trigger before:", cov.mean().round(3))
