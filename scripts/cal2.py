"""Stable calibration: key metrics over seeds at scale 0.25."""
import sys
import numpy as np
from repro import LogGenerator, anl_profile, sdsc_profile, ThreePhasePredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.meta.stacked import MetaLearner
from repro.evaluation.crossval import cross_validate
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import MINUTE, HOUR

which = sys.argv[1] if len(sys.argv) > 1 else "anl"
scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
seeds = [int(x) for x in (sys.argv[3].split(",") if len(sys.argv) > 3 else ["11","23"])]
prof = anl_profile() if which == "anl" else sdsc_profile()
rw = (15 if which == "anl" else 25) * MINUTE

rows = []
for seed in seeds:
    log = LogGenerator(prof, scale=scale, seed=seed).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    nf = len(events.fatal_events())
    planted = sum(v for v in log.ground_truth_fatal_counts().values())
    r = {"fatals": nf, "planted": planted}
    cv = cross_validate(lambda: StatisticalPredictor(window=HOUR, lead=5*MINUTE,
        categories=[MainCategory.NETWORK, MainCategory.IOSTREAM]), events, k=10)
    r["statP"], r["statR"] = cv.precision, cv.recall
    for W in (5, 60):
        cv = cross_validate(lambda: RuleBasedPredictor(rule_window=rw, prediction_window=W*MINUTE), events, k=10)
        r[f"ruleP{W}"], r[f"ruleR{W}"] = cv.precision, cv.recall
        cv = cross_validate(lambda: MetaLearner(prediction_window=W*MINUTE, rule_window=rw), events, k=10)
        r[f"metaP{W}"], r[f"metaR{W}"] = cv.precision, cv.recall
    rb = RuleBasedPredictor(rule_window=rw).fit(events)
    r["noprec"] = rb.no_precursor_fraction
    r["nrules"] = len(rb.ruleset)
    rows.append(r)
keys = ["fatals","planted","statP","statR","ruleP5","ruleR5","ruleP60","ruleR60","metaP5","metaR5","metaP60","metaR60","noprec","nrules"]
print(f"{'key':8s}", *[f"s{s:<7d}" for s in seeds], "mean")
for k in keys:
    vals = [r[k] for r in rows]
    print(f"{k:8s}", *[f"{v:7.3f}" if isinstance(v,float) else f"{v:7d}" for v in vals], f"{np.mean(vals):7.3f}")
targets = {"anl": "statP .516 statR .487 ruleP .7-.9 ruleR .22->.55 metaP .88->.65 metaR .64->.78",
           "sdsc": "statP .284 statR .312 ruleP .7-.9 metaP .99->.89 metaR ~.65"}
print("targets:", targets[which])
