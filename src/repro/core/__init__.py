"""The paper's primary contribution: the three-phase failure predictor.

:class:`repro.core.pipeline.ThreePhasePredictor` composes

- Phase 1 — :class:`repro.preprocess.PreprocessPipeline`,
- Phase 2 — :class:`repro.predictors.StatisticalPredictor` and
  :class:`repro.predictors.RuleBasedPredictor`,
- Phase 3 — :class:`repro.meta.MetaLearner`,

behind one ``fit_raw`` / ``predict_raw`` API that consumes raw RAS record
stores (or log files), so a downstream user never touches the internals
unless they want to.
"""

from repro.core.config import PredictorConfig
from repro.core.pipeline import PipelineReport, ThreePhasePredictor
from repro.core.serialize import load_model, save_model

__all__ = [
    "PredictorConfig",
    "ThreePhasePredictor",
    "PipelineReport",
    "save_model",
    "load_model",
]
