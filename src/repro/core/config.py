"""Configuration of the end-to-end three-phase predictor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutil import HOUR, MINUTE
from repro.util.validation import check_fraction, check_positive


@dataclass
class PredictorConfig:
    """All tunables of the three-phase predictor in one place.

    Defaults follow the paper: 300 s compression threshold, support 0.04,
    confidence 0.2, 15-minute rule-generation window, statistical band of
    5 minutes to 1 hour, 30-minute prediction window.
    """

    # Phase 1
    compression_threshold: float = 300.0
    temporal_key_mode: str = "job_location"

    # Phase 2 — rule-based
    rule_window: float = 15 * MINUTE
    min_support: float = 0.04
    min_confidence: float = 0.2
    max_rule_len: int = 6
    miner: str = "apriori"

    # Phase 2 — statistical
    statistical_lead: float = 5 * MINUTE
    statistical_window: float = HOUR
    trigger_threshold: float = 0.25

    # Phase 3
    prediction_window: float = 30 * MINUTE

    def __post_init__(self) -> None:
        check_positive(self.compression_threshold, "compression_threshold")
        check_positive(self.rule_window, "rule_window")
        check_positive(self.prediction_window, "prediction_window")
        check_fraction(self.min_support, "min_support")
        check_fraction(self.min_confidence, "min_confidence")
        check_fraction(self.trigger_threshold, "trigger_threshold")
        if not 0 <= self.statistical_lead < self.statistical_window:
            raise ValueError("statistical_lead must be < statistical_window")
        if self.max_rule_len < 2:
            raise ValueError("max_rule_len must be >= 2 (body + head)")

    def with_prediction_window(self, window: float) -> "PredictorConfig":
        """Copy with a different prediction window (sweep helper)."""
        from dataclasses import replace

        return replace(self, prediction_window=window)
