"""End-to-end three-phase predictor (paper Figure 1).

``ThreePhasePredictor`` is the library's headline API::

    from repro import ThreePhasePredictor, PredictorConfig

    predictor = ThreePhasePredictor(PredictorConfig())
    predictor.fit_raw(raw_training_store)       # phases 1 + 2 + 3 training
    warnings = predictor.predict_raw(raw_test_store)

Both methods accept *raw* record stores: Phase 1 (categorize + compress) is
applied internally and its statistics are kept on ``.report``.  Use
``fit``/``predict`` instead when events are already preprocessed (the
evaluation harness does, to avoid recompressing per fold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PredictorConfig
from repro.meta.stacked import MetaLearner
from repro.obs import get_registry
from repro.predictors.base import FailureWarning, Predictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.preprocess.pipeline import PreprocessPipeline, PreprocessResult
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier


@dataclass
class PipelineReport:
    """Phase-1 statistics of the last ``fit_raw``/``predict_raw`` calls."""

    fit_preprocess: Optional[PreprocessResult] = None
    predict_preprocess: Optional[PreprocessResult] = None
    rules_mined: int = 0
    trigger_categories: tuple = ()


class ThreePhasePredictor(Predictor):
    """Preprocessing + base predictors + meta-learner, end to end."""

    name = "three-phase"

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        super().__init__()
        self.config = config or PredictorConfig()
        cfg = self.config
        self.classifier = TaxonomyClassifier()
        self.preprocessor = PreprocessPipeline(
            classifier=self.classifier,
            threshold=cfg.compression_threshold,
            temporal_key_mode=cfg.temporal_key_mode,
        )
        self.statistical = StatisticalPredictor(
            window=cfg.statistical_window,
            lead=cfg.statistical_lead,
            trigger_threshold=cfg.trigger_threshold,
            classifier=self.classifier,
        )
        self.rulebased = RuleBasedPredictor(
            rule_window=cfg.rule_window,
            prediction_window=cfg.prediction_window,
            min_support=cfg.min_support,
            min_confidence=cfg.min_confidence,
            max_len=cfg.max_rule_len,
            miner=cfg.miner,
        )
        self.meta = MetaLearner(
            prediction_window=cfg.prediction_window,
            rule_window=cfg.rule_window,
            statistical=self.statistical,
            rulebased=self.rulebased,
        )
        self.report = PipelineReport()

    @classmethod
    def from_state(
        cls, config: PredictorConfig, meta: MetaLearner
    ) -> "ThreePhasePredictor":
        """Rebuild a *fitted* pipeline around a restored meta-learner.

        The public restore path used by model deserialization: the fitted
        ``meta`` (and its base predictors) replaces the freshly constructed
        ones, the report is rebuilt from the learned state, and the
        predictor is marked fitted.
        """
        if not meta.is_fitted:
            raise ValueError(
                "ThreePhasePredictor.from_state requires a fitted meta-learner"
            )
        predictor = cls(config)
        predictor.meta = meta
        predictor.statistical = meta.statistical
        predictor.rulebased = meta.rulebased
        predictor.report.rules_mined = len(meta.rulebased.ruleset or [])
        predictor.report.trigger_categories = tuple(
            c.value for c in meta.statistical.trigger_categories
        )
        predictor.mark_fitted()
        return predictor

    # -- preprocessed-event interface (Predictor protocol) -------------- #

    def fit(self, events: EventStore) -> "ThreePhasePredictor":
        """Train phases 2-3 on an already preprocessed event store."""
        with get_registry().span("phase2"):
            self.meta.fit(events)
        self.report.rules_mined = (
            len(self.rulebased.ruleset) if self.rulebased.ruleset else 0
        )
        self.report.trigger_categories = tuple(
            c.value for c in self.statistical.trigger_categories
        )
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Meta-learner warnings for an already preprocessed test store."""
        self._check_fitted()
        with get_registry().span("phase3"):
            return self.meta.predict(events)

    # -- raw-record interface -------------------------------------------- #

    def preprocess(
        self, raw: EventStore, chunk_events: Optional[int] = None
    ) -> PreprocessResult:
        """Run Phase 1 alone (exposed for inspection and the CLI).

        ``chunk_events`` is forwarded to
        :meth:`~repro.preprocess.pipeline.PreprocessPipeline.run`: ``None``
        streams automatically on columnar-backed stores, ``0`` forces the
        batch path, a positive count forces streaming.
        """
        with get_registry().span("phase1"):
            return self.preprocessor.run(raw, chunk_events=chunk_events)

    def fit_raw(self, raw: EventStore) -> "ThreePhasePredictor":
        """Phase 1 on the raw store, then train phases 2-3."""
        result = self.preprocess(raw)
        self.report.fit_preprocess = result
        return self.fit(result.events)

    def predict_raw(self, raw: EventStore) -> list[FailureWarning]:
        """Phase 1 on the raw test store, then meta-learner warnings."""
        self._check_fitted()
        result = self.preprocess(raw)
        self.report.predict_preprocess = result
        return self.predict(result.events)
