"""Persistence of trained predictors.

An online deployment trains on the archived log and then runs for weeks; the
trained model must survive daemon restarts without re-mining.  Everything a
fitted :class:`~repro.core.pipeline.ThreePhasePredictor` (or bare
:class:`~repro.meta.stacked.MetaLearner`) learned is small and structured —
rule sets, follow-up probabilities, configuration — so models serialize to a
versioned JSON document.

Dispatch is a *codec registry*: each predictor kind registers a
:class:`PredictorCodec` (full-document encode/decode plus learned-state-only
encode/apply, the latter backing the artifact cache in :mod:`repro.cache`).
New predictor kinds call :func:`register_codec` instead of growing if/elif
chains in ``save_model``/``load_model``.  Restoring always goes through the
predictors' public ``from_state``/``restore_state``/``mark_fitted`` paths —
no private attribute pokes.

Round-trip guarantee (tested): a loaded predictor produces byte-identical
warnings to the one that was saved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TextIO, Union

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.meta.stacked import MetaLearner
from repro.mining.incremental import IncrementalRuleMiner
from repro.mining.rules import Rule, RuleSet
from repro.predictors.base import Predictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory

#: Schema version of the on-disk format.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Document malformed or of an unsupported version."""


# ---------------------------------------------------------------------- #
# Component encoders / decoders
# ---------------------------------------------------------------------- #


def ruleset_to_dict(ruleset: RuleSet) -> dict:
    """Encode a rule set (item names are stored; ids are table indices)."""
    return {
        "item_names": list(ruleset.item_names),
        "fatal_items": sorted(ruleset.fatal_items),
        "rules": [
            {
                "body": sorted(r.body),
                "heads": sorted(r.heads),
                "confidence": r.confidence,
                "support": r.support,
                "support_count": r.support_count,
            }
            for r in ruleset.rules
        ],
    }


def ruleset_from_dict(doc: dict) -> RuleSet:
    """Decode a rule set; validates item-id ranges."""
    try:
        names = list(doc["item_names"])
        n = len(names)
        rules = []
        for rd in doc["rules"]:
            body = frozenset(int(i) for i in rd["body"])
            heads = frozenset(int(i) for i in rd["heads"])
            if any(not 0 <= i < n for i in body | heads):
                raise SerializationError("rule item id out of range")
            rules.append(
                Rule(
                    body=body,
                    heads=heads,
                    confidence=float(rd["confidence"]),
                    support=float(rd["support"]),
                    support_count=int(rd["support_count"]),
                )
            )
        fatal = frozenset(int(i) for i in doc["fatal_items"])
        return RuleSet(rules, names, fatal)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed ruleset document: {exc}") from exc


def statistical_to_dict(sp: StatisticalPredictor) -> dict:
    """Encode a fitted statistical predictor."""
    return {
        "window": sp.window,
        "lead": sp.lead,
        "trigger_threshold": sp.trigger_threshold,
        "deduplicate": sp.deduplicate,
        **_statistical_state_to_dict(sp),
    }


def _statistical_state_to_dict(sp: StatisticalPredictor) -> dict:
    """Learned-state-only encoding (artifact-cache payload)."""
    return {
        "follow_probability": {
            c.value: p for c, p in sp.follow_probability.items()
        },
        "trigger_categories": [c.value for c in sp.trigger_categories],
    }


def _statistical_apply_state(
    sp: StatisticalPredictor, doc: dict
) -> StatisticalPredictor:
    """Install learned state from a document onto an unfitted instance."""
    try:
        return sp.restore_state(
            follow_probability={
                MainCategory(k): float(v)
                for k, v in doc["follow_probability"].items()
            },
            trigger_categories=tuple(
                MainCategory(v) for v in doc["trigger_categories"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed statistical document: {exc}"
        ) from exc


def statistical_from_dict(doc: dict) -> StatisticalPredictor:
    """Decode into a *fitted* statistical predictor."""
    try:
        sp = StatisticalPredictor(
            window=float(doc["window"]),
            lead=float(doc["lead"]),
            trigger_threshold=float(doc["trigger_threshold"]),
            deduplicate=bool(doc["deduplicate"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed statistical document: {exc}"
        ) from exc
    return _statistical_apply_state(sp, doc)


def rulebased_to_dict(rb: RuleBasedPredictor) -> dict:
    """Encode a fitted rule-based predictor."""
    if rb.ruleset is None:
        raise SerializationError("rule-based predictor is not fitted")
    return {
        "rule_window": rb.rule_window,
        "prediction_window": rb.prediction_window,
        "min_support": rb.min_support,
        "min_confidence": rb.min_confidence,
        "max_len": rb.max_len,
        "miner": rb.miner,
        **_rulebased_state_to_dict(rb),
    }


def _rulebased_state_to_dict(rb: RuleBasedPredictor) -> dict:
    """Learned-state-only encoding (artifact-cache payload)."""
    if rb.ruleset is None:
        raise SerializationError("rule-based predictor is not fitted")
    return {
        "no_precursor_fraction": rb.no_precursor_fraction,
        "ruleset": ruleset_to_dict(rb.ruleset),
    }


def _rulebased_apply_state(
    rb: RuleBasedPredictor, doc: dict
) -> RuleBasedPredictor:
    """Install a mined rule set from a document onto an unfitted instance."""
    try:
        return rb.restore_state(
            ruleset=ruleset_from_dict(doc["ruleset"]),
            no_precursor_fraction=float(doc["no_precursor_fraction"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed rulebased document: {exc}") from exc


def rulebased_from_dict(doc: dict) -> RuleBasedPredictor:
    """Decode into a *fitted* rule-based predictor."""
    try:
        rb = RuleBasedPredictor(
            rule_window=float(doc["rule_window"]),
            prediction_window=float(doc["prediction_window"]),
            min_support=float(doc["min_support"]),
            min_confidence=float(doc["min_confidence"]),
            max_len=int(doc["max_len"]),
            miner=str(doc["miner"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed rulebased document: {exc}") from exc
    return _rulebased_apply_state(rb, doc)


def meta_to_dict(meta: MetaLearner) -> dict:
    """Encode a fitted meta-learner (both bases inline)."""
    if not meta.is_fitted:
        raise SerializationError("meta-learner is not fitted")
    return {
        "prediction_window": meta.prediction_window,
        "statistical": statistical_to_dict(meta.statistical),
        "rulebased": rulebased_to_dict(meta.rulebased),
    }


def _meta_state_to_dict(meta: MetaLearner) -> dict:
    """Learned-state-only encoding of both bases."""
    if not meta.is_fitted:
        raise SerializationError("meta-learner is not fitted")
    return {
        "statistical": _statistical_state_to_dict(meta.statistical),
        "rulebased": _rulebased_state_to_dict(meta.rulebased),
    }


def _meta_apply_state(meta: MetaLearner, doc: dict) -> MetaLearner:
    """Install learned state onto both embedded bases."""
    try:
        _statistical_apply_state(meta.statistical, doc["statistical"])
        _rulebased_apply_state(meta.rulebased, doc["rulebased"])
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed meta document: {exc}") from exc
    meta.mark_fitted()
    return meta


def meta_from_dict(doc: dict) -> MetaLearner:
    """Decode into a *fitted* meta-learner."""
    try:
        return MetaLearner.from_state(
            prediction_window=float(doc["prediction_window"]),
            statistical=statistical_from_dict(doc["statistical"]),
            rulebased=rulebased_from_dict(doc["rulebased"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed meta document: {exc}") from exc


def incremental_miner_to_dict(miner: IncrementalRuleMiner) -> dict:
    """Versioned snapshot of a maintained incremental-mining state.

    Carries the transaction multiset and mining parameters only (derived
    structures are rebuilt on restore), in the same versioned envelope as
    every other document here, so a lifecycle daemon can persist its
    retrainer's mining state across restarts and resume O(delta) refits.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "incremental-miner",
        "state": miner.to_dict(),
    }


def incremental_miner_from_dict(doc: dict) -> IncrementalRuleMiner:
    """Rebuild a maintained mining state from its snapshot document."""
    if not isinstance(doc, dict):
        raise SerializationError("miner document root is not an object")
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version: {version!r}"
        )
    if doc.get("kind") != "incremental-miner":
        raise SerializationError(
            f"document kind {doc.get('kind')!r} is not 'incremental-miner'"
        )
    state = doc.get("state")
    if not isinstance(state, dict):
        raise SerializationError("miner document has no 'state' object")
    try:
        return IncrementalRuleMiner.from_dict(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed miner document: {exc}") from exc


# ---------------------------------------------------------------------- #
# Codec registry
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class PredictorCodec:
    """Encode/decode pair for one predictor kind.

    ``encode``/``decode`` carry the *full* document body (constructor
    parameters plus learned state; what ``save_model`` writes).
    ``encode_state``/``apply_state`` carry the learned state only — the
    artifact cache stores that payload and re-applies it to a freshly
    spec-built (possibly differently parameterized) predictor.
    """

    kind: str
    cls: type
    encode: Callable[[Any], dict]
    decode: Callable[[dict], Any]
    encode_state: Callable[[Any], dict]
    apply_state: Callable[[Any, dict], Any]


_CODECS: dict[str, PredictorCodec] = {}


def register_codec(codec: PredictorCodec) -> PredictorCodec:
    """Register a predictor codec; the kind must be new."""
    if codec.kind in _CODECS:
        raise ValueError(f"duplicate codec kind {codec.kind!r}")
    _CODECS[codec.kind] = codec
    return codec


def registered_kinds() -> tuple[str, ...]:
    """All registered codec kinds, sorted."""
    return tuple(sorted(_CODECS))


def codec_for_kind(kind: str) -> PredictorCodec:
    """Codec registered under ``kind``; :class:`SerializationError` if none."""
    try:
        return _CODECS[kind]
    except KeyError:
        raise SerializationError(f"unknown model kind: {kind!r}") from None


def codec_for(predictor: Any) -> PredictorCodec:
    """Codec whose class matches ``predictor`` (exact type wins)."""
    for codec in _CODECS.values():
        if type(predictor) is codec.cls:
            return codec
    for codec in _CODECS.values():
        if isinstance(predictor, codec.cls):
            return codec
    raise SerializationError(f"cannot serialize {type(predictor).__name__}")


def _three_phase_encode(predictor: ThreePhasePredictor) -> dict:
    return {
        "config": {
            k: getattr(predictor.config, k)
            for k in (
                "compression_threshold", "temporal_key_mode",
                "rule_window", "min_support", "min_confidence",
                "max_rule_len", "miner", "statistical_lead",
                "statistical_window", "trigger_threshold",
                "prediction_window",
            )
        },
        "meta": meta_to_dict(predictor.meta),
    }


def _three_phase_decode(doc: dict) -> ThreePhasePredictor:
    try:
        config = PredictorConfig(**doc["config"])
        meta = meta_from_dict(doc["meta"])
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError(
            f"malformed three-phase document: {exc}"
        ) from exc
    return ThreePhasePredictor.from_state(config, meta)


def _three_phase_state(predictor: ThreePhasePredictor) -> dict:
    return _meta_state_to_dict(predictor.meta)


def _three_phase_apply_state(
    predictor: ThreePhasePredictor, doc: dict
) -> ThreePhasePredictor:
    _meta_apply_state(predictor.meta, doc)
    predictor.report.rules_mined = len(predictor.rulebased.ruleset or [])
    predictor.report.trigger_categories = tuple(
        c.value for c in predictor.statistical.trigger_categories
    )
    predictor.mark_fitted()
    return predictor


register_codec(PredictorCodec(
    kind="statistical",
    cls=StatisticalPredictor,
    encode=statistical_to_dict,
    decode=statistical_from_dict,
    encode_state=_statistical_state_to_dict,
    apply_state=_statistical_apply_state,
))
register_codec(PredictorCodec(
    kind="rule",
    cls=RuleBasedPredictor,
    encode=rulebased_to_dict,
    decode=rulebased_from_dict,
    encode_state=_rulebased_state_to_dict,
    apply_state=_rulebased_apply_state,
))
register_codec(PredictorCodec(
    kind="meta",
    cls=MetaLearner,
    encode=lambda meta: {"meta": meta_to_dict(meta)},
    decode=lambda doc: meta_from_dict(doc["meta"]),
    encode_state=_meta_state_to_dict,
    apply_state=_meta_apply_state,
))
register_codec(PredictorCodec(
    kind="three-phase",
    cls=ThreePhasePredictor,
    encode=_three_phase_encode,
    decode=_three_phase_decode,
    encode_state=_three_phase_state,
    apply_state=_three_phase_apply_state,
))


# ---------------------------------------------------------------------- #
# Learned-state payloads (artifact cache)
# ---------------------------------------------------------------------- #


def learned_state_to_dict(predictor: Predictor) -> dict:
    """Versioned learned-state-only document for a fitted predictor."""
    codec = codec_for(predictor)
    return {
        "format_version": FORMAT_VERSION,
        "kind": codec.kind,
        "state": codec.encode_state(predictor),
    }


def apply_learned_state(predictor: Predictor, doc: dict) -> Predictor:
    """Apply a :func:`learned_state_to_dict` document to a fresh predictor.

    The target must be of the document's kind; its constructor parameters
    may differ from the saving predictor's (the cache exploits this: a rule
    set mined once serves every prediction window).
    """
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version: {version!r}"
        )
    codec = codec_for(predictor)
    if doc.get("kind") != codec.kind:
        raise SerializationError(
            f"state document kind {doc.get('kind')!r} does not match "
            f"predictor kind {codec.kind!r}"
        )
    state = doc.get("state")
    if not isinstance(state, dict):
        raise SerializationError("state document has no 'state' object")
    return codec.apply_state(predictor, state)


# ---------------------------------------------------------------------- #
# Top-level save / load
# ---------------------------------------------------------------------- #


def model_to_dict(
    predictor: Union[ThreePhasePredictor, MetaLearner, Predictor],
) -> dict:
    """The versioned full-model document (what :func:`save_model` writes).

    The in-memory form backs both file persistence and the lifecycle model
    registry (:mod:`repro.lifecycle`), whose snapshot ids are content hashes
    of exactly this document.
    """
    codec = codec_for(predictor)
    return {
        "format_version": FORMAT_VERSION,
        "kind": codec.kind,
        **codec.encode(predictor),
    }


def model_from_dict(
    doc: dict,
) -> Union[ThreePhasePredictor, MetaLearner, Predictor]:
    """Decode a :func:`model_to_dict` document into a fitted predictor."""
    if not isinstance(doc, dict):
        raise SerializationError("model document root is not an object")
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version: {version!r}"
        )
    return codec_for_kind(doc.get("kind")).decode(doc)


def save_model(
    predictor: Union[ThreePhasePredictor, MetaLearner, Predictor],
    target: Union[str, Path, TextIO],
) -> None:
    """Serialize a fitted predictor to JSON (codec-registry dispatch)."""
    doc = model_to_dict(predictor)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
    else:
        json.dump(doc, target, indent=1)


def load_model(
    source: Union[str, Path, TextIO],
) -> Union[ThreePhasePredictor, MetaLearner, Predictor]:
    """Deserialize a predictor saved by :func:`save_model`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        doc = json.load(source)
    return model_from_dict(doc)
