"""Persistence of trained predictors.

An online deployment trains on the archived log and then runs for weeks; the
trained model must survive daemon restarts without re-mining.  Everything a
fitted :class:`~repro.core.pipeline.ThreePhasePredictor` (or bare
:class:`~repro.meta.stacked.MetaLearner`) learned is small and structured —
rule sets, follow-up probabilities, configuration — so models serialize to a
versioned JSON document.

Round-trip guarantee (tested): a loaded predictor produces byte-identical
warnings to the one that was saved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.meta.stacked import MetaLearner
from repro.mining.rules import Rule, RuleSet
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory

#: Schema version of the on-disk format.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Document malformed or of an unsupported version."""


# ---------------------------------------------------------------------- #
# Component encoders / decoders
# ---------------------------------------------------------------------- #


def ruleset_to_dict(ruleset: RuleSet) -> dict:
    """Encode a rule set (item names are stored; ids are table indices)."""
    return {
        "item_names": list(ruleset.item_names),
        "fatal_items": sorted(ruleset.fatal_items),
        "rules": [
            {
                "body": sorted(r.body),
                "heads": sorted(r.heads),
                "confidence": r.confidence,
                "support": r.support,
                "support_count": r.support_count,
            }
            for r in ruleset.rules
        ],
    }


def ruleset_from_dict(doc: dict) -> RuleSet:
    """Decode a rule set; validates item-id ranges."""
    try:
        names = list(doc["item_names"])
        n = len(names)
        rules = []
        for rd in doc["rules"]:
            body = frozenset(int(i) for i in rd["body"])
            heads = frozenset(int(i) for i in rd["heads"])
            if any(not 0 <= i < n for i in body | heads):
                raise SerializationError("rule item id out of range")
            rules.append(
                Rule(
                    body=body,
                    heads=heads,
                    confidence=float(rd["confidence"]),
                    support=float(rd["support"]),
                    support_count=int(rd["support_count"]),
                )
            )
        fatal = frozenset(int(i) for i in doc["fatal_items"])
        return RuleSet(rules, names, fatal)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed ruleset document: {exc}") from exc


def statistical_to_dict(sp: StatisticalPredictor) -> dict:
    """Encode a fitted statistical predictor."""
    return {
        "window": sp.window,
        "lead": sp.lead,
        "trigger_threshold": sp.trigger_threshold,
        "deduplicate": sp.deduplicate,
        "follow_probability": {
            c.value: p for c, p in sp.follow_probability.items()
        },
        "trigger_categories": [c.value for c in sp.trigger_categories],
    }


def statistical_from_dict(doc: dict) -> StatisticalPredictor:
    """Decode into a *fitted* statistical predictor."""
    try:
        sp = StatisticalPredictor(
            window=float(doc["window"]),
            lead=float(doc["lead"]),
            trigger_threshold=float(doc["trigger_threshold"]),
            deduplicate=bool(doc["deduplicate"]),
        )
        sp.follow_probability = {
            MainCategory(k): float(v)
            for k, v in doc["follow_probability"].items()
        }
        sp.trigger_categories = tuple(
            MainCategory(v) for v in doc["trigger_categories"]
        )
        sp._fitted = True
        return sp
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed statistical document: {exc}"
        ) from exc


def rulebased_to_dict(rb: RuleBasedPredictor) -> dict:
    """Encode a fitted rule-based predictor."""
    if rb.ruleset is None:
        raise SerializationError("rule-based predictor is not fitted")
    return {
        "rule_window": rb.rule_window,
        "prediction_window": rb.prediction_window,
        "min_support": rb.min_support,
        "min_confidence": rb.min_confidence,
        "max_len": rb.max_len,
        "miner": rb.miner,
        "no_precursor_fraction": rb.no_precursor_fraction,
        "ruleset": ruleset_to_dict(rb.ruleset),
    }


def rulebased_from_dict(doc: dict) -> RuleBasedPredictor:
    """Decode into a *fitted* rule-based predictor."""
    try:
        rb = RuleBasedPredictor(
            rule_window=float(doc["rule_window"]),
            prediction_window=float(doc["prediction_window"]),
            min_support=float(doc["min_support"]),
            min_confidence=float(doc["min_confidence"]),
            max_len=int(doc["max_len"]),
            miner=str(doc["miner"]),
        )
        rb.ruleset = ruleset_from_dict(doc["ruleset"])
        rb.no_precursor_fraction = float(doc["no_precursor_fraction"])
        rb._fitted = True
        return rb
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed rulebased document: {exc}") from exc


def meta_to_dict(meta: MetaLearner) -> dict:
    """Encode a fitted meta-learner (both bases inline)."""
    if not meta.is_fitted:
        raise SerializationError("meta-learner is not fitted")
    return {
        "prediction_window": meta.prediction_window,
        "statistical": statistical_to_dict(meta.statistical),
        "rulebased": rulebased_to_dict(meta.rulebased),
    }


def meta_from_dict(doc: dict) -> MetaLearner:
    """Decode into a *fitted* meta-learner."""
    try:
        meta = MetaLearner(
            prediction_window=float(doc["prediction_window"]),
            statistical=statistical_from_dict(doc["statistical"]),
            rulebased=rulebased_from_dict(doc["rulebased"]),
        )
        meta._fitted = True
        return meta
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed meta document: {exc}") from exc


# ---------------------------------------------------------------------- #
# Top-level save / load
# ---------------------------------------------------------------------- #


def save_model(
    predictor: Union[ThreePhasePredictor, MetaLearner],
    target: Union[str, Path, TextIO],
) -> None:
    """Serialize a fitted predictor to JSON."""
    if isinstance(predictor, ThreePhasePredictor):
        doc = {
            "format_version": FORMAT_VERSION,
            "kind": "three-phase",
            "config": {
                k: getattr(predictor.config, k)
                for k in (
                    "compression_threshold", "temporal_key_mode",
                    "rule_window", "min_support", "min_confidence",
                    "max_rule_len", "miner", "statistical_lead",
                    "statistical_window", "trigger_threshold",
                    "prediction_window",
                )
            },
            "meta": meta_to_dict(predictor.meta),
        }
    elif isinstance(predictor, MetaLearner):
        doc = {
            "format_version": FORMAT_VERSION,
            "kind": "meta",
            "meta": meta_to_dict(predictor),
        }
    else:
        raise SerializationError(
            f"cannot serialize {type(predictor).__name__}"
        )
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
    else:
        json.dump(doc, target, indent=1)


def load_model(
    source: Union[str, Path, TextIO],
) -> Union[ThreePhasePredictor, MetaLearner]:
    """Deserialize a predictor saved by :func:`save_model`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        doc = json.load(source)
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version: {version!r}"
        )
    kind = doc.get("kind")
    if kind == "meta":
        return meta_from_dict(doc["meta"])
    if kind == "three-phase":
        predictor = ThreePhasePredictor(PredictorConfig(**doc["config"]))
        meta = meta_from_dict(doc["meta"])
        predictor.meta = meta
        predictor.statistical = meta.statistical
        predictor.rulebased = meta.rulebased
        predictor._fitted = True
        predictor.report.rules_mined = len(meta.rulebased.ruleset or [])
        predictor.report.trigger_categories = tuple(
            c.value for c in meta.statistical.trigger_categories
        )
        return predictor
    raise SerializationError(f"unknown model kind: {kind!r}")
