"""Rule-based base predictor (paper §3.2.2).

Training builds event-sets over the *rule-generation window* and mines
association rules from non-fatal precursors to fatal events (support >= 0.04,
confidence >= 0.2 by default, the paper's thresholds).

Prediction slides an observation window of ``prediction_window`` seconds over
the test stream; whenever the window's set of non-fatal subcategories
completes some rule's body, a warning is raised for the highest-confidence
satisfied rule (paper Step 6: "if multiple rules are observed, select the
rule with the highest confidence").  While a rule's warning horizon is still
active the rule is not re-raised — its precursors lingering in the window are
one prediction, not many.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.mining.rules import Rule, RuleMatcher, RuleSet, generate_rules
from repro.mining.transactions import build_event_sets
from repro.obs import get_registry
from repro.predictors.base import FailureWarning, Predictor
from repro.ras.store import EventStore
from repro.util.timeutil import MINUTE
from repro.util.validation import check_fraction, check_positive


class RuleBasedPredictor(Predictor):
    """Association-rule predictor from non-fatal precursors to failures.

    Parameters
    ----------
    rule_window:
        Rule-generation window used to build training event-sets (the paper
        selects 15 min for ANL and 25 min for SDSC via a sweep).
    prediction_window:
        Observation/prediction window at test time (swept 5-60 min in the
        paper's Figure 4).
    min_support / min_confidence:
        Mining thresholds; paper defaults 0.04 / 0.2.
    miner:
        ``"apriori"`` or ``"fpgrowth"`` (identical output, different cost).
    """

    name = "rule"

    def __init__(
        self,
        rule_window: float = 15 * MINUTE,
        prediction_window: float = 30 * MINUTE,
        min_support: float = 0.04,
        min_confidence: float = 0.2,
        max_len: int = 6,
        miner: str = "apriori",
    ) -> None:
        super().__init__()
        check_positive(rule_window, "rule_window")
        check_positive(prediction_window, "prediction_window")
        self.rule_window = float(rule_window)
        self.prediction_window = float(prediction_window)
        self.min_support = check_fraction(min_support, "min_support")
        self.min_confidence = check_fraction(min_confidence, "min_confidence")
        self.max_len = max_len
        self.miner = miner
        self.ruleset: Optional[RuleSet] = None
        #: Fraction of training failures with no precursor (recall ceiling).
        self.no_precursor_fraction: float = 0.0

    @classmethod
    def from_state(
        cls,
        *,
        rule_window: float,
        prediction_window: float,
        min_support: float,
        min_confidence: float,
        max_len: int,
        miner: str,
        ruleset: RuleSet,
        no_precursor_fraction: float,
    ) -> "RuleBasedPredictor":
        """Rebuild a *fitted* predictor from a previously mined rule set.

        The public restore path used by model deserialization and the
        artifact cache; equivalent to a :meth:`fit` that mined exactly
        ``ruleset``.
        """
        rb = cls(
            rule_window=rule_window,
            prediction_window=prediction_window,
            min_support=check_fraction(min_support, "min_support"),
            min_confidence=check_fraction(min_confidence, "min_confidence"),
            max_len=max_len,
            miner=miner,
        )
        return rb.restore_state(ruleset, no_precursor_fraction)

    def restore_state(
        self, ruleset: RuleSet, no_precursor_fraction: float
    ) -> "RuleBasedPredictor":
        """Install a mined rule set onto this instance and mark it fitted."""
        self.ruleset = ruleset
        self.no_precursor_fraction = float(no_precursor_fraction)
        self.mark_fitted()
        return self

    def fit(self, events: EventStore) -> "RuleBasedPredictor":
        """Mine rules from the training store (Steps 1-4)."""
        obs = get_registry()
        with obs.span("phase2.fit.rule"):
            db = build_event_sets(events, self.rule_window)
            self.no_precursor_fraction = db.no_precursor_fraction()
            self.ruleset = generate_rules(
                db,
                min_support=self.min_support,
                min_confidence=self.min_confidence,
                max_len=self.max_len,
                miner=self.miner,
            )
        obs.counter("predictor.rules_mined", len(self.ruleset))
        obs.gauge(
            "predictor.no_precursor_fraction", self.no_precursor_fraction
        )
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Stream the test store through the sliding-window matcher."""
        self._check_fitted()
        assert self.ruleset is not None
        if len(self.ruleset) == 0 or len(events) == 0:
            return []
        obs = get_registry()
        with obs.span("phase2.predict.rule"):
            warnings = _match_stream(
                events, self.ruleset, self.prediction_window, source=self.name
            )
        obs.counter("predictor.warnings", len(warnings), source=self.name)
        return warnings


def _match_stream(
    events: EventStore,
    ruleset: RuleSet,
    window: float,
    source: str,
) -> list[FailureWarning]:
    """Shared streaming matcher (also used by the meta-learner).

    Maintains the non-fatal items inside the trailing ``window`` seconds; on
    each arrival that completes at least one rule, emits a warning for the
    highest-confidence *currently satisfied* rule unless that rule's previous
    warning is still active.
    """
    warnings: list[FailureWarning] = []
    matcher = RuleMatcher(ruleset)
    in_window: deque[tuple[int, int]] = deque()  # (time, item)
    active_until: dict[frozenset[int], int] = {}  # rule body -> horizon end
    w = int(window)
    # Hoisted bindings: one Python-level loop per event is the serving hot
    # path, so bulk-convert the columns once and bind methods to locals.
    times = events.times.tolist()
    subcats = events.subcat_ids.tolist()
    fatal_list = events.fatal_mask().tolist()
    matcher_add = matcher.add
    matcher_remove = matcher.remove
    best_satisfied = matcher.best_satisfied
    window_popleft = in_window.popleft
    window_append = in_window.append
    append_warning = warnings.append
    item_names = ruleset.item_names
    for t, item, is_fatal in zip(times, subcats, fatal_list):
        # Evict items older than the observation window.
        cutoff = t - w
        while in_window and in_window[0][0] < cutoff:
            matcher_remove(window_popleft()[1])
        if is_fatal:
            continue  # rule bodies are non-fatal items only
        window_append((t, item))
        if not matcher_add(item):
            continue
        # Paper Step 6: among observed rules pick the highest confidence —
        # kept incrementally by the matcher instead of rescanned per event.
        best: Optional[Rule] = best_satisfied()
        if best is None:  # pragma: no cover - completed implies satisfied
            continue
        end = active_until.get(best.body)
        if end is not None and t <= end:
            continue  # this rule's previous warning is still active
        warning = FailureWarning(
            issued_at=t,
            horizon_start=t + 1,
            horizon_end=t + w,
            confidence=best.confidence,
            source=source,
            detail=best.format(item_names),
        )
        active_until[best.body] = warning.horizon_end
        append_warning(warning)
    return warnings
