"""Naive-Bayes window classifier (related-work baseline).

The paper's related work cites Bayesian failure prediction (Hamerly & Elkan's
disk-drive work, its [14]).  This predictor brings that family onto the RAS
substrate as a third base method:

- **Training** tiles the log into fixed windows
  (:func:`repro.mining.transactions.build_tiled_windows`) and learns, with
  Laplace smoothing, ``P(subcategory present | next window has a failure)``
  and the same under no-failure — a Bernoulli naive Bayes over the *presence*
  of each non-fatal subcategory, scored against whether a fatal event occurs
  in the *following* window.
- **Prediction** slides over the test stream; whenever the posterior odds of
  "failure imminent" given the current window's contents exceed the decision
  threshold, it raises a warning with the posterior as confidence.

Compared to the paper's rule-based method this trades interpretability for
coverage: it fires on *soft* evidence (combinations that never formed a
support-worthy rule), which is exactly the behaviour worth ablating against
(`benchmarks/bench_ext_bayes.py`).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.mining.transactions import build_tiled_windows
from repro.predictors.base import FailureWarning, Predictor
from repro.ras.store import EventStore
from repro.util.timeutil import MINUTE
from repro.util.validation import check_fraction, check_positive


class BayesPredictor(Predictor):
    """Bernoulli naive Bayes over window contents.

    Parameters
    ----------
    window:
        Tiling/observation window width, seconds (also the warning horizon).
    threshold:
        Posterior probability of imminent failure above which a warning is
        raised.
    alpha:
        Laplace smoothing pseudo-count.
    """

    name = "bayes"

    def __init__(
        self,
        window: float = 30 * MINUTE,
        threshold: float = 0.5,
        alpha: float = 1.0,
    ) -> None:
        super().__init__()
        check_positive(window, "window")
        check_fraction(threshold, "threshold")
        check_positive(alpha, "alpha")
        self.window = float(window)
        self.threshold = threshold
        self.alpha = alpha
        #: log P(item present | class) for class in (no-failure, failure).
        self._log_present: Optional[np.ndarray] = None  # (2, n_items)
        self._log_absent: Optional[np.ndarray] = None
        self._log_prior: Optional[np.ndarray] = None  # (2,)
        self._n_items: int = 0

    # -- training --------------------------------------------------------- #

    def fit(self, events: EventStore) -> "BayesPredictor":
        db = build_tiled_windows(events, window=self.window)
        self._n_items = len(db.item_names)
        n_items = self._n_items
        # Label window i by whether window i+1 contains a failure: the
        # predictor must act *before* the failure's window.
        present = np.zeros((2, n_items), dtype=np.float64)
        class_counts = np.zeros(2, dtype=np.float64)
        for i in range(len(db) - 1):
            label = 1 if db.heads[i + 1] else 0
            class_counts[label] += 1
            for item in db.bodies[i]:
                present[label, item] += 1
        a = self.alpha
        denom = (class_counts + 2 * a)[:, None]
        p_present = (present + a) / denom
        self._log_present = np.log(p_present)
        self._log_absent = np.log1p(-p_present)
        total = class_counts.sum()
        if total == 0:
            self._log_prior = np.log(np.array([0.5, 0.5]))
        else:
            self._log_prior = np.log((class_counts + a) / (total + 2 * a))
        self._fitted = True
        return self

    # -- scoring ---------------------------------------------------------- #

    def posterior(self, items: set[int]) -> float:
        """P(failure in the next window | observed item set)."""
        self._check_fitted()
        assert self._log_present is not None
        scores = self._log_prior.copy()
        for cls in (0, 1):
            row_p = self._log_present[cls]
            row_a = self._log_absent[cls]
            s = row_a.sum()
            for item in items:
                if 0 <= item < self._n_items:
                    s += row_p[item] - row_a[item]
            scores[cls] += s
        m = scores.max()
        probs = np.exp(scores - m)
        return float(probs[1] / probs.sum())

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Sliding-window scoring with per-horizon deduplication."""
        self._check_fitted()
        warnings: list[FailureWarning] = []
        if len(events) == 0:
            return warnings
        w = int(self.window)
        in_window: deque[tuple[int, int]] = deque()
        counts: dict[int, int] = {}
        active_until = -1
        times = events.times
        subcats = events.subcat_ids
        fatal_mask = events.fatal_mask()
        for i in range(len(events)):
            t = int(times[i])
            while in_window and in_window[0][0] < t - w:
                _, old = in_window.popleft()
                counts[old] -= 1
                if counts[old] == 0:
                    del counts[old]
            if fatal_mask[i]:
                continue
            item = int(subcats[i])
            in_window.append((t, item))
            counts[item] = counts.get(item, 0) + 1
            if t <= active_until:
                continue
            post = self.posterior(set(counts))
            if post >= self.threshold:
                warning = FailureWarning(
                    issued_at=t,
                    horizon_start=t + 1,
                    horizon_end=t + w,
                    confidence=post,
                    source=self.name,
                    detail=f"posterior={post:.3f} over {len(counts)} items",
                )
                warnings.append(warning)
                active_until = warning.horizon_end
        return warnings
