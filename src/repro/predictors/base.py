"""Predictor interface and the warning stream model.

A predictor consumes a Phase-1 event store and emits
:class:`FailureWarning` objects: "a failure is expected within
``[horizon_start, horizon_end]``".  The evaluation layer
(:mod:`repro.evaluation.matching`) scores warning streams against the fatal
events that actually occurred; nothing in a predictor ever needs to know the
future.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ras.store import EventStore
from repro.util.validation import check_fraction


class NotFittedError(RuntimeError):
    """Predictor used before :meth:`Predictor.fit`."""


@dataclass(frozen=True)
class FailureWarning:
    """One prediction: a failure is expected within the horizon.

    Attributes
    ----------
    issued_at:
        Time the warning was raised (epoch seconds).  Must not exceed
        ``horizon_start`` — warnings cannot be issued retroactively.
    horizon_start / horizon_end:
        Closed interval in which a failure is predicted.  ``horizon_start``
        is strictly after ``issued_at`` for non-trivial lead time semantics.
    confidence:
        The predictor's confidence in [0, 1] (rule confidence, estimated
        follow-up probability, ...).
    source:
        Which method produced it (``"statistical"``, ``"rule"``, ``"meta"``).
    detail:
        Human-readable cause (trigger category, rule text, ...); also used as
        the deduplication key within a source.
    """

    issued_at: int
    horizon_start: int
    horizon_end: int
    confidence: float
    source: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.horizon_start < self.issued_at:
            raise ValueError("horizon_start must be >= issued_at")
        if self.horizon_end < self.horizon_start:
            raise ValueError("horizon_end must be >= horizon_start")
        check_fraction(self.confidence, "confidence")

    @property
    def horizon_width(self) -> int:
        return self.horizon_end - self.horizon_start

    def covers(self, time: float) -> bool:
        """True if ``time`` falls inside the prediction horizon."""
        return self.horizon_start <= time <= self.horizon_end


class Predictor(abc.ABC):
    """Common interface of all base predictors and the meta-learner."""

    #: Short identifier used in warning ``source`` fields and reports.
    name: str = "predictor"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fit() first")

    def mark_fitted(self) -> "Predictor":
        """Declare this predictor trained without calling :meth:`fit`.

        The public constructor path for restoring learned state — model
        deserialization (:mod:`repro.core.serialize`) and the artifact cache
        (:mod:`repro.cache`) install the learned attributes and then call
        this instead of poking the private flag.  Returns ``self`` so
        restore pipelines can chain it.
        """
        self._fitted = True
        return self

    @abc.abstractmethod
    def fit(self, events: EventStore) -> "Predictor":
        """Learn from a Phase-1 (classified, compressed) training store."""

    @abc.abstractmethod
    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Emit warnings for a test store, in issue-time order."""


def dedup_warnings(
    warnings: Iterable[FailureWarning],
) -> list[FailureWarning]:
    """Suppress re-issues while an identical warning is still active.

    A warning is dropped when an earlier *kept* warning with the same
    ``(source, detail)`` has a horizon that still covers the new issue time.
    This is the paper's implicit online behaviour: a rule that stays matched
    while its precursor events linger in the observation window constitutes
    one prediction, not one prediction per polling tick.
    """
    active: dict[tuple[str, str], int] = {}
    kept: list[FailureWarning] = []
    for w in sorted(warnings, key=lambda w: (w.issued_at, -w.confidence)):
        key = (w.source, w.detail)
        end = active.get(key)
        if end is not None and w.issued_at <= end:
            continue
        active[key] = w.horizon_end
        kept.append(w)
    return kept


def merge_warning_streams(
    *streams: Sequence[FailureWarning],
) -> list[FailureWarning]:
    """Merge several warning streams into one, ordered by issue time."""
    merged = [w for s in streams for w in s]
    merged.sort(key=lambda w: (w.issued_at, -w.confidence))
    return merged
