"""Predictors beyond the paper's two base methods.

The paper's summary calls for "further examining the proposed meta-learning
mechanism" with more base predictors; these provide that extension surface
plus trivial baselines that anchor the evaluation (any useful predictor must
beat them).

- :class:`PeriodicityPredictor` — exploits quasi-periodic failure modes
  (e.g. a flaky component failing every ~N hours): after each fatal event of
  a category whose inter-failure gaps are tightly concentrated, predict the
  next failure around the median gap.
- :class:`AlwaysWarnPredictor` — raises a warning on every event; its
  precision equals the base rate of "a failure within W of a random event".
- :class:`NeverWarnPredictor` — raises nothing; recall 0 by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.predictors.base import FailureWarning, Predictor
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR
from repro.util.validation import check_positive


class PeriodicityPredictor(Predictor):
    """Median-gap periodicity predictor (extension).

    For each main category with at least ``min_samples`` training failures,
    compute the median m and interquartile range IQR of consecutive-failure
    gaps.  Categories with IQR <= ``dispersion * m`` are treated as periodic:
    after each of their fatal events, predict another failure inside
    ``[m - half_band, m + half_band]``.
    """

    name = "periodicity"

    def __init__(
        self,
        dispersion: float = 0.5,
        half_band: float = HOUR / 2,
        min_samples: int = 10,
        classifier: Optional[TaxonomyClassifier] = None,
    ) -> None:
        super().__init__()
        check_positive(half_band, "half_band")
        check_positive(dispersion, "dispersion")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.dispersion = dispersion
        self.half_band = float(half_band)
        self.min_samples = min_samples
        self.classifier = classifier or TaxonomyClassifier()
        #: category -> (median gap, confidence) learned by fit().
        self.periods: dict[MainCategory, tuple[float, float]] = {}

    def fit(self, events: EventStore) -> "PeriodicityPredictor":
        fatal = events.fatal_events()
        self.periods = {}
        if len(fatal) >= self.min_samples:
            cat_ids = self.classifier.main_category_ids(fatal)
            cats = list(MainCategory)
            for i, cat in enumerate(cats):
                t = fatal.times[cat_ids == i].astype(np.float64)
                if t.size < self.min_samples:
                    continue
                gaps = np.diff(t)
                m = float(np.median(gaps))
                q1, q3 = np.percentile(gaps, [25, 75])
                if m > 0 and (q3 - q1) <= self.dispersion * m:
                    # Empirical hit rate of the band on the training data.
                    lo, hi = m - self.half_band, m + self.half_band
                    hits = float(np.mean((gaps >= lo) & (gaps <= hi)))
                    self.periods[cat] = (m, hits)
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        self._check_fitted()
        if not self.periods:
            return []
        fatal = events.fatal_events()
        if len(fatal) == 0:
            return []
        cat_ids = self.classifier.main_category_ids(fatal)
        cats = list(MainCategory)
        warnings: list[FailureWarning] = []
        for k in range(len(fatal)):
            cat = cats[int(cat_ids[k])]
            period = self.periods.get(cat)
            if period is None:
                continue
            m, conf = period
            t = int(fatal.times[k])
            start = max(t + 1, int(t + m - self.half_band))
            warnings.append(
                FailureWarning(
                    issued_at=t,
                    horizon_start=start,
                    horizon_end=int(t + m + self.half_band),
                    confidence=conf,
                    source=self.name,
                    detail=cat.value,
                )
            )
        return warnings


class AlwaysWarnPredictor(Predictor):
    """Warns after every event — the precision floor baseline."""

    name = "always"

    def __init__(self, window: float = HOUR) -> None:
        super().__init__()
        check_positive(window, "window")
        self.window = float(window)

    def fit(self, events: EventStore) -> "AlwaysWarnPredictor":
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        self._check_fitted()
        return [
            FailureWarning(
                issued_at=int(t),
                horizon_start=int(t) + 1,
                horizon_end=int(t + self.window),
                confidence=0.5,
                source=self.name,
                detail="unconditional",
            )
            for t in events.times
        ]


class NeverWarnPredictor(Predictor):
    """Never warns — the recall floor baseline."""

    name = "never"

    def fit(self, events: EventStore) -> "NeverWarnPredictor":
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        self._check_fitted()
        return []
