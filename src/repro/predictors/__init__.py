"""Phase 2 — base failure predictors (paper §3.2).

- :mod:`repro.predictors.base` — the :class:`FailureWarning` type, the
  :class:`Predictor` interface and warning-stream utilities.
- :mod:`repro.predictors.statistical` — the statistical predictor exploiting
  temporal correlation among fatal events (§3.2.1).
- :mod:`repro.predictors.rulebased` — the association-rule predictor
  exploiting causal correlation between non-fatal and fatal events (§3.2.2).
- :mod:`repro.predictors.extensions` — additional predictors beyond the
  paper (periodicity-based, trivial baselines) used for ablations.
"""

from repro.predictors.base import (
    FailureWarning,
    NotFittedError,
    Predictor,
    dedup_warnings,
    merge_warning_streams,
)
from repro.predictors.bayes import BayesPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor, failure_gap_cdf

__all__ = [
    "FailureWarning",
    "NotFittedError",
    "Predictor",
    "dedup_warnings",
    "merge_warning_streams",
    "StatisticalPredictor",
    "RuleBasedPredictor",
    "BayesPredictor",
    "failure_gap_cdf",
]
