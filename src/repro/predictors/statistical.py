"""Statistical base predictor (paper §3.2.1).

Training measures the *temporal correlation among fatal events*: for each
main category, the probability that a fatal event of that category is
followed by another fatal event within the prediction band.  Categories whose
follow-up probability clears a threshold become *trigger categories* — on the
paper's logs those are exactly the network and I/O-stream failures ("a
significant number of failures happen in close proximity, and ... network and
I/O stream related failures form a majority of such failures").

Prediction then implements the paper's sentence literally: "if a network or
I/O stream failure is reported, it is predicted that another failure is
possible within a time period of 5 minutes to 1 hour" — i.e. each reported
trigger-category fatal event raises one warning whose horizon is the
``[lead, window]`` band after it.

:func:`failure_gap_cdf` computes the Figure-2 curve: the cumulative
distribution of the waiting time to the next failure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.obs import get_registry
from repro.predictors.base import FailureWarning, Predictor, dedup_warnings
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR, MINUTE
from repro.util.validation import check_fraction, check_positive
from repro.util.windows import count_in_windows


def failure_gap_cdf(
    events: EventStore, grid: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of the gap between consecutive fatal events (paper Figure 2).

    Returns ``(grid_seconds, cdf)`` where ``cdf[i]`` is the fraction of
    fatal events followed by another fatal event within ``grid_seconds[i]``.
    """
    if grid is None:
        # 30 s .. 48 h, log-ish spacing like the paper's hour-scale plot.
        grid = np.unique(
            np.concatenate(
                [
                    np.arange(30, 10 * MINUTE, 30),
                    np.arange(10 * MINUTE, 2 * HOUR, 5 * MINUTE),
                    np.arange(2 * HOUR, 48 * HOUR, HOUR),
                ]
            )
        ).astype(np.float64)
    fatal_times = events.fatal_events().times.astype(np.float64)
    if fatal_times.size < 2:
        return grid, np.zeros_like(grid, dtype=np.float64)
    gaps = np.diff(fatal_times)
    cdf = np.searchsorted(np.sort(gaps), grid, side="right") / gaps.size
    return grid, cdf


class StatisticalPredictor(Predictor):
    """Temporal-correlation predictor over fatal events.

    Parameters
    ----------
    window:
        End of the prediction band after a trigger event (paper: 1 hour for
        Table 5; swept 5-60 min when embedded in the meta-learner).
    lead:
        Start of the band (paper: 5 minutes for Table 5 — "a time window
        smaller than 5 minutes becomes too small for taking preventive
        action").  A value of 0 still excludes the trigger second itself.
    trigger_threshold:
        Minimum follow-up probability for a category to become a trigger.
    categories:
        Explicit trigger categories; ``None`` selects them from the data
        (the paper's analysis step arriving at {network, iostream}).
    deduplicate:
        If True, suppress warnings while an identical one is active.  The
        paper's accounting is per reported failure, so the default is False.
    """

    name = "statistical"

    def __init__(
        self,
        window: float = HOUR,
        lead: float = 5 * MINUTE,
        trigger_threshold: float = 0.25,
        categories: Optional[Sequence[MainCategory]] = None,
        classifier: Optional[TaxonomyClassifier] = None,
        deduplicate: bool = False,
    ) -> None:
        super().__init__()
        check_positive(window, "window")
        if lead < 0 or lead >= window:
            raise ValueError("lead must satisfy 0 <= lead < window")
        check_fraction(trigger_threshold, "trigger_threshold")
        self.window = float(window)
        self.lead = float(lead)
        self.trigger_threshold = trigger_threshold
        self.forced_categories = tuple(categories) if categories else None
        self.classifier = classifier or TaxonomyClassifier()
        self.deduplicate = deduplicate
        #: Learned follow-up probability per MainCategory.
        self.follow_probability: dict[MainCategory, float] = {}
        #: Selected trigger categories after fit().
        self.trigger_categories: tuple[MainCategory, ...] = ()

    @classmethod
    def from_state(
        cls,
        *,
        window: float,
        lead: float,
        trigger_threshold: float,
        deduplicate: bool,
        follow_probability: dict[MainCategory, float],
        trigger_categories: Sequence[MainCategory],
        classifier: Optional[TaxonomyClassifier] = None,
    ) -> "StatisticalPredictor":
        """Rebuild a *fitted* predictor from previously learned state.

        The public restore path used by model deserialization and the
        artifact cache; equivalent to a :meth:`fit` that arrived at exactly
        this state.
        """
        sp = cls(
            window=window,
            lead=lead,
            trigger_threshold=trigger_threshold,
            deduplicate=deduplicate,
            classifier=classifier,
        )
        return sp.restore_state(dict(follow_probability), trigger_categories)

    def restore_state(
        self,
        follow_probability: dict[MainCategory, float],
        trigger_categories: Sequence[MainCategory],
    ) -> "StatisticalPredictor":
        """Install learned state onto this instance and mark it fitted."""
        self.follow_probability = dict(follow_probability)
        self.trigger_categories = tuple(trigger_categories)
        self.mark_fitted()
        return self

    # -- training -------------------------------------------------------- #

    def _band(self) -> tuple[float, float]:
        """The (strictly positive) offset band of the horizon."""
        lo = max(self.lead, 1.0)
        return lo, self.window

    def fit(self, events: EventStore) -> "StatisticalPredictor":
        """Estimate per-category follow-up probabilities on the training set."""
        obs = get_registry()
        with obs.span("phase2.fit.statistical"):
            fatal = events.fatal_events()
            self.follow_probability = {}
            if len(fatal) == 0:
                self.trigger_categories = ()
                self._fitted = True
                return self
            cat_ids = self.classifier.main_category_ids(fatal)
            fatal_times = fatal.times.astype(np.float64)
            lo, hi = self._band()
            cats = list(MainCategory)
            for i, cat in enumerate(cats):
                anchors = fatal_times[cat_ids == i]
                if anchors.size == 0:
                    continue
                # +1 on the upper offset: the horizon is a closed interval at
                # second granularity, count_in_windows is half-open.
                follow = count_in_windows(fatal_times, anchors, lo, hi + 1) > 0
                self.follow_probability[cat] = float(follow.mean())
            if self.forced_categories is not None:
                self.trigger_categories = tuple(self.forced_categories)
            else:
                self.trigger_categories = tuple(
                    cat
                    for cat, p in sorted(
                        self.follow_probability.items(), key=lambda kv: -kv[1]
                    )
                    if p >= self.trigger_threshold
                )
        obs.gauge(
            "predictor.trigger_categories", len(self.trigger_categories)
        )
        self._fitted = True
        return self

    # -- prediction ------------------------------------------------------ #

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """One warning per reported trigger-category fatal event."""
        self._check_fitted()
        fatal = events.fatal_events()
        if len(fatal) == 0 or not self.trigger_categories:
            return []
        cat_ids = self.classifier.main_category_ids(fatal)
        cats = list(MainCategory)
        trigger_idx = {cats.index(c) for c in self.trigger_categories}
        lo, hi = self._band()
        warnings: list[FailureWarning] = []
        for k in range(len(fatal)):
            ci = int(cat_ids[k])
            if ci not in trigger_idx:
                continue
            cat = cats[ci]
            t = int(fatal.times[k])
            warnings.append(
                FailureWarning(
                    issued_at=t,
                    horizon_start=int(t + lo),
                    horizon_end=int(t + hi),
                    confidence=self.follow_probability.get(cat, 0.0),
                    source=self.name,
                    detail=cat.value,
                )
            )
        if self.deduplicate:
            warnings = dedup_warnings(warnings)
        get_registry().counter(
            "predictor.warnings", len(warnings), source=self.name
        )
        return warnings

    def candidate_confidence(self, category: MainCategory) -> Optional[float]:
        """Confidence the method would assign to a trigger of ``category``.

        Returns ``None`` when the category is not a trigger — used by the
        meta-learner's higher-confidence dispatch.
        """
        self._check_fitted()
        if category not in self.trigger_categories:
            return None
        return self.follow_probability.get(category, 0.0)

    def candidate_confidence_map(self) -> dict[MainCategory, Optional[float]]:
        """:meth:`candidate_confidence` for every category, precomputed.

        The batched dispatch path hoists this table out of its event loop so
        the per-fatal cost is one dict lookup instead of a method call plus a
        fitted-state check.
        """
        self._check_fitted()
        return {cat: self.candidate_confidence(cat) for cat in MainCategory}
