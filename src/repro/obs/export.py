"""Exporters for :class:`repro.obs.MetricsRegistry` snapshots.

Two formats, both dependency-free:

- :func:`snapshot` / :func:`to_json` — a JSON-ready dict with counters,
  gauges, histogram *summaries* (count/sum/min/max/mean/p50/p90/p99, raw
  samples are not exported), and the nested span tree.  This is what
  ``bgl-predict --emit-metrics`` writes and what ``BENCH_*.json`` embeds.
- :func:`to_text` — a compact fixed-width block for terminal reports (the
  CLI's ``metrics`` section).

The JSON form round-trips: ``json.loads(to_json(reg)) == snapshot(reg)``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry, SpanRecord

#: Percentiles summarized for every histogram.
HISTOGRAM_PERCENTILES = (50, 90, 99)


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of a sorted sample."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    pos = q / 100.0 * (len(sorted_samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return float(sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac)


def summarize_histogram(samples: Sequence[float]) -> dict[str, float]:
    """count/sum/min/max/mean plus :data:`HISTOGRAM_PERCENTILES`."""
    ordered = sorted(samples)
    total = float(sum(ordered))
    out: dict[str, float] = {
        "count": float(len(ordered)),
        "sum": total,
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "mean": total / len(ordered),
    }
    for q in HISTOGRAM_PERCENTILES:
        out[f"p{q}"] = percentile(ordered, q)
    return out


def snapshot(registry: "MetricsRegistry") -> dict[str, Any]:
    """JSON-ready dict of everything the registry holds."""
    return {
        "counters": dict(registry.counters),
        "gauges": dict(registry.gauges),
        "histograms": {
            key: summarize_histogram(samples)
            for key, samples in registry.histograms.items()
            if samples
        },
        "spans": [s.to_dict() for s in registry.spans],
    }


def to_json(registry: "MetricsRegistry", indent: Optional[int] = 2) -> str:
    """The :func:`snapshot` dict as a JSON document (trailing newline)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True) + "\n"


def span_totals(registry: "MetricsRegistry") -> dict[str, tuple[int, float]]:
    """Aggregate ``span name -> (count, total seconds)`` over the whole trace."""
    totals: dict[str, tuple[int, float]] = {}
    for span in registry.iter_spans():
        count, secs = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, secs + span.duration)
    return totals


def _format_span(span: "SpanRecord", depth: int, lines: list[str]) -> None:
    label = "".join(f" {k}={v}" for k, v in sorted(span.labels.items()))
    lines.append(f"  {'  ' * depth}{span.name}{label}: {span.duration:.4f}s")
    for child in span.children:
        _format_span(child, depth + 1, lines)


def to_text(registry: "MetricsRegistry") -> str:
    """Fixed-width terminal rendering of the snapshot (CLI metrics section)."""
    lines: list[str] = []
    if registry.counters:
        lines.append("counters:")
        for key in sorted(registry.counters):
            lines.append(f"  {key} = {registry.counters[key]:g}")
    if registry.gauges:
        lines.append("gauges:")
        for key in sorted(registry.gauges):
            lines.append(f"  {key} = {registry.gauges[key]:.4g}")
    if registry.histograms:
        lines.append("histograms:")
        for key in sorted(registry.histograms):
            s = summarize_histogram(registry.histograms[key])
            lines.append(
                f"  {key}: n={s['count']:g} mean={s['mean']:.4g} "
                f"p50={s['p50']:.4g} p90={s['p90']:.4g} max={s['max']:.4g}"
            )
    if registry.spans:
        lines.append("spans:")
        for root in registry.spans:
            _format_span(root, 0, lines)
    return "\n".join(lines)
