"""Metrics registry and span tracing primitives.

Zero-dependency observability for the three-phase pipeline: counters,
gauges, histogram samples, and a :meth:`MetricsRegistry.span` context
manager that records a *nested* trace of phase timings.  All timing uses
``time.perf_counter()`` — a monotonic clock, never the wall clock — so the
layer is RL002-clean by construction and instrumented results stay
replayable.

The library never instantiates a registry by itself: the process-wide
active registry defaults to :data:`NULL_REGISTRY`, whose every method is a
no-op, so uninstrumented runs pay only a module-global read per call site
(the hot paths are instrumented at *phase* granularity, never per event —
see ``docs/observability.md`` for the overhead budget).  Callers that want
measurements install a real registry::

    from repro.obs import MetricsRegistry, use

    registry = MetricsRegistry()
    with use(registry):
        predictor.fit_raw(raw)
    print(registry.to_text())

Labels are keyword arguments with string values; a labelled metric is
keyed ``name{k=v,...}`` with keys sorted, so the same label set always
lands on the same series.  The registry is not thread-safe; share one per
worker, not across workers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

Number = Union[int, float]


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class SpanRecord:
    """One completed (or in-flight) trace span."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    duration: float = 0.0  # seconds, monotonic-clock delta
    children: list["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "duration_s": self.duration}
        if self.labels:
            out["labels"] = dict(self.labels)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def walk(self) -> Iterator["SpanRecord"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ("_span",)

    def __init__(self, span: SpanRecord) -> None:
        self._span = span

    def __enter__(self) -> SpanRecord:
        return self._span

    def __exit__(self, *exc: object) -> None:
        return None


class MetricsRegistry:
    """Counters, gauges, histogram samples, and nested trace spans.

    ``enabled`` lets instrumented code skip work that only feeds the
    registry (e.g. an extra ``perf_counter`` read) when the active registry
    is the null one.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, Number] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        #: Completed root spans, in completion order.
        self.spans: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []

    # -- scalar instruments --------------------------------------------- #

    def counter(self, name: str, value: Number = 1, **labels: str) -> None:
        """Add ``value`` (default 1) to a monotonically growing counter."""
        key = metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a point-in-time value (last write wins)."""
        self.gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one histogram sample (summarized at export time)."""
        self.histograms.setdefault(metric_key(name, labels), []).append(
            float(value)
        )

    # -- timing --------------------------------------------------------- #

    @contextmanager
    def timer(self, name: str, **labels: str) -> Iterator[None]:
        """Observe the monotonic elapsed time of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, **labels)

    @contextmanager
    def span(self, name: str, **labels: str) -> Iterator[SpanRecord]:
        """Open a trace span; spans opened inside it become its children."""
        record = SpanRecord(name=name, labels=dict(labels))
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.spans.append(record)
        self._stack.append(record)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start
            self._stack.pop()

    # -- lifecycle / export --------------------------------------------- #

    def clear(self) -> None:
        """Drop all recorded metrics and spans (open spans stay open)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()

    def iter_spans(self) -> Iterator[SpanRecord]:
        """Every recorded span (roots and descendants), depth-first."""
        for root in self.spans:
            yield from root.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (see :mod:`repro.obs.export`)."""
        from repro.obs.export import snapshot

        return snapshot(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        from repro.obs.export import to_json

        return to_json(self, indent=indent)

    def to_text(self) -> str:
        from repro.obs.export import to_text

        return to_text(self)


class NullRegistry(MetricsRegistry):
    """The default registry: every operation is a no-op.

    ``span``/``timer`` return a pre-built context manager, so the disabled
    path allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullContext(SpanRecord(name=""))

    def counter(self, name: str, value: Number = 1, **labels: str) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: str) -> None:
        return None

    def observe(self, name: str, value: float, **labels: str) -> None:
        return None

    def timer(self, name: str, **labels: str) -> Any:
        return self._null_context

    def span(self, name: str, **labels: str) -> Any:
        return self._null_context


#: Shared no-op registry; the active registry until :func:`use` installs one.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (:data:`NULL_REGISTRY` by default)."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` -> the null registry); returns the old."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` active for the ``with`` body, then restore."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
