"""repro.obs — zero-dependency metrics, spans and exporters.

The pipeline's observability layer: library code records counters, gauges,
histogram samples and nested phase spans against the *active* registry
(:func:`get_registry`), which defaults to a no-op so uninstrumented runs
cost nothing.  See ``docs/observability.md`` for the metric catalogue,
span hierarchy and overhead budget.
"""

from repro.obs.export import (
    snapshot,
    span_totals,
    summarize_histogram,
    to_json,
    to_text,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
    get_registry,
    metric_key,
    set_registry,
    use,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SpanRecord",
    "get_registry",
    "set_registry",
    "use",
    "metric_key",
    "snapshot",
    "span_totals",
    "summarize_histogram",
    "to_json",
    "to_text",
]
