"""Small argument-validation helpers.

Centralizing these keeps error messages consistent and the call sites terse;
they are used at public API boundaries, not in inner loops.
"""

from __future__ import annotations

import numpy as np


def check_fraction(value: float, name: str) -> float:
    """Require ``0.0 <= value <= 1.0``; return the value for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return ``float(value)`` for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``; return ``float(value)`` for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Require ``lo <= value <= hi``; return ``float(value)`` for chaining.

    The general form of :func:`check_fraction` for quantities with other
    closed bounds (e.g. a correlation in [-1, 1]); repro-lint's RL005 rule
    accepts either as a valid fraction guard.
    """
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo:g}, {hi:g}], got {value!r}")
    return float(value)


def check_sorted(arr: np.ndarray, name: str) -> np.ndarray:
    """Require a 1-D array sorted in non-decreasing order."""
    a = np.asarray(arr)
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {a.shape}")
    if a.size > 1 and np.any(np.diff(a) < 0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return a
