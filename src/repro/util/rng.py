"""Random-number-generator plumbing.

Every stochastic component in this library takes an explicit
:class:`numpy.random.Generator` (or a seed convertible to one) so that whole
experiments are reproducible from a single integer seed.  Child streams are
derived with :func:`spawn_child` so that independent subsystems (fault
processes, noise, job arrivals, ...) do not consume from a shared stream —
changing one subsystem's draw count then cannot perturb another's sequence.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or
    an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, *, streams: int = 1) -> list[np.random.Generator]:
    """Derive ``streams`` statistically independent child generators.

    Uses the bit generator's ``spawn`` support (PCG64 seed-sequence spawning),
    so children are independent of each other and of the parent's future
    output.
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise TypeError(
            "spawn_child requires a generator whose bit generator exposes a "
            "SeedSequence (e.g. one built by as_generator); "
            f"{type(rng.bit_generator).__name__} does not"
        )
    return [np.random.default_rng(s) for s in seed_seq.spawn(streams)]


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = None
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = as_generator(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator; the next ``self.rng`` access recreates it."""
        self._seed = seed
        self._rng = None
