"""Time constants and Blue Gene/L timestamp formatting.

The CMCS repository stores two time representations per record: an epoch
second (used for all arithmetic in this library) and a human-readable
timestamp of the form ``2005-06-03-15.42.50.675872``.  RAS analysis only ever
needs second granularity (the paper notes that although events are *detected*
at sub-millisecond granularity, the recorded event time is in seconds), so the
canonical representation throughout this package is an integer epoch second.
"""

from __future__ import annotations

import datetime as _dt

#: Seconds per minute/hour/day — used for window arithmetic everywhere.
MINUTE: int = 60
HOUR: int = 3600
DAY: int = 86400

_UTC = _dt.timezone.utc


def parse_bgl_date(text: str) -> int:
    """Parse a ``YYYY.MM.DD`` date into the epoch second at midnight UTC.

    This is the short date field that prefixes each raw log line.
    """
    dt = _dt.datetime.strptime(text, "%Y.%m.%d").replace(tzinfo=_UTC)
    return int(dt.timestamp())


def format_bgl_date(epoch: float) -> str:
    """Format an epoch second as the short ``YYYY.MM.DD`` date field."""
    return _dt.datetime.fromtimestamp(float(epoch), tz=_UTC).strftime("%Y.%m.%d")


def parse_bgl_timestamp(text: str) -> int:
    """Parse a full ``YYYY-MM-DD-HH.MM.SS.ffffff`` timestamp to epoch seconds.

    Fractional seconds are accepted but truncated: the RAS pipeline operates
    at second granularity (see module docstring).  A timestamp without the
    fractional part is accepted as well.
    """
    base, _, _frac = text.partition(".")
    # ``base`` now holds YYYY-MM-DD-HH, so re-split on the full pattern.
    try:
        dt = _dt.datetime.strptime(text[:19], "%Y-%m-%d-%H.%M.%S").replace(tzinfo=_UTC)
    except ValueError as exc:
        raise ValueError(f"invalid BG/L timestamp: {text!r}") from exc
    return int(dt.timestamp())


def format_bgl_timestamp(epoch: float, microseconds: int = 0) -> str:
    """Format an epoch second as ``YYYY-MM-DD-HH.MM.SS.ffffff``."""
    if not 0 <= microseconds < 1_000_000:
        raise ValueError(f"microseconds out of range: {microseconds}")
    dt = _dt.datetime.fromtimestamp(int(epoch), tz=_UTC)
    return dt.strftime("%Y-%m-%d-%H.%M.%S") + f".{microseconds:06d}"


def format_epoch(epoch: float) -> str:
    """Human-readable UTC rendering used in reports (``YYYY-MM-DD HH:MM:SS``)."""
    return _dt.datetime.fromtimestamp(float(epoch), tz=_UTC).strftime(
        "%Y-%m-%d %H:%M:%S"
    )
