"""Vectorized time-window primitives.

Both the statistical predictor (``is there a fatal event within W seconds
after t?``) and the rule predictor (``which events fall in [t - G, t)?``)
reduce to range queries over a sorted timestamp array.  These helpers express
those queries with :func:`numpy.searchsorted` so the per-event cost is
O(log n) instead of a Python-level scan — the difference between seconds and
hours on the full-scale ANL log.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_sorted


def window_slice(times: np.ndarray, start: float, end: float) -> slice:  # repro-lint: sorted
    """Return the slice of ``times`` (sorted) with ``start <= t < end``.

    Hot path: callers guarantee order (``EventStore.times`` is sorted by
    construction); an O(n) ``check_sorted`` here would defeat the O(log n)
    query — hence the explicit waiver.
    """
    lo = int(np.searchsorted(times, start, side="left"))
    hi = int(np.searchsorted(times, end, side="left"))
    return slice(lo, hi)


def events_in_window(times: np.ndarray, start: float, end: float) -> np.ndarray:  # repro-lint: sorted
    """Indices of events with ``start <= t < end`` in a sorted time array."""
    sl = window_slice(times, start, end)
    return np.arange(sl.start, sl.stop)


def count_in_windows(
    times: np.ndarray,
    anchors: np.ndarray,
    offset_lo: float,
    offset_hi: float,
) -> np.ndarray:
    """For each anchor ``a`` count events with ``a+offset_lo <= t < a+offset_hi``.

    Fully vectorized: two ``searchsorted`` calls over all anchors at once.
    Used to estimate follow-up failure probabilities (Figure 2 CDF, the
    statistical predictor's training step).
    """
    times = check_sorted(np.asarray(times, dtype=np.float64), "times")
    anchors = np.asarray(anchors, dtype=np.float64)
    lo = np.searchsorted(times, anchors + offset_lo, side="left")
    hi = np.searchsorted(times, anchors + offset_hi, side="left")
    return (hi - lo).astype(np.int64)


def sliding_window_indices(
    times: np.ndarray, width: float
) -> tuple[np.ndarray, np.ndarray]:
    """For each event ``i`` return ``(lo[i], i)`` bounds of its look-back window.

    ``lo[i]`` is the first index with ``times[lo[i]] > times[i] - width``; the
    half-open window ``[lo[i], i)`` therefore contains exactly the *earlier*
    events within ``width`` seconds of event ``i``.  Vectorized with a single
    ``searchsorted``.
    """
    t = check_sorted(np.asarray(times, dtype=np.float64), "times")
    lo = np.searchsorted(t, t - width, side="right")
    return lo.astype(np.int64), np.arange(t.size, dtype=np.int64)
