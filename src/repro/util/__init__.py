"""Shared utilities: time handling, RNG management, validation, windows.

These helpers are deliberately dependency-light (NumPy only) and are used by
every other subpackage.  Nothing in here is specific to Blue Gene/L.
"""

from repro.util.rng import RngMixin, as_generator, spawn_child
from repro.util.timeutil import (
    MINUTE,
    HOUR,
    DAY,
    format_epoch,
    parse_bgl_date,
    parse_bgl_timestamp,
    format_bgl_date,
    format_bgl_timestamp,
)
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_nonnegative,
    check_sorted,
)
from repro.util.windows import (
    count_in_windows,
    events_in_window,
    sliding_window_indices,
    window_slice,
)

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "RngMixin",
    "as_generator",
    "spawn_child",
    "format_epoch",
    "parse_bgl_date",
    "parse_bgl_timestamp",
    "format_bgl_date",
    "format_bgl_timestamp",
    "check_fraction",
    "check_positive",
    "check_nonnegative",
    "check_sorted",
    "count_in_windows",
    "events_in_window",
    "sliding_window_indices",
    "window_slice",
]
