"""Shared count-maintenance primitives for the mining layer.

Every miner — level-wise Apriori, FP-growth, and the incremental engine —
must agree *exactly* on what "frequent" means, or their outputs stop being
interchangeable.  The absolute-count threshold therefore lives here, spelled
once: :func:`min_count_for` is the single source of the ``ceil(support * n)``
conversion (with the "support == threshold passes" convention the paper's
0.04 cutoff implies).
"""

from __future__ import annotations

from repro.util.validation import check_fraction


def min_count_for(min_support: float, n_transactions: int) -> int:
    """Absolute transaction-count threshold for a relative support level.

    ``ceil(min_support * n_transactions)``, floored at 1 so a zero support
    threshold still requires an itemset to actually occur.  An itemset whose
    support *equals* the threshold is frequent (``count >= min_count``).
    """
    check_fraction(min_support, "min_support")
    # ceil via negated floor division; bit-identical to the historical
    # expression both miners used inline.
    return max(1, int(-(-min_support * n_transactions // 1)))
