"""Incremental frequent-itemset and rule mining: O(delta) window retrains.

Lifecycle retrains slide a transaction window forward: each retrain adds the
new chunk's transactions and evicts the expired ones, while the bulk of the
window is unchanged.  From-scratch Apriori/FP-growth re-pays the full mining
cost for that unchanged bulk on every retrain; this module maintains the
mining state across retrains and re-pays only for what changed — the
CanTree/LogMaster idea (PAPERS.md) of keeping event-correlation state alive
as logs arrive.

Structure
---------
:class:`CanonicalTree`
    A prefix tree over transactions stored in *canonical* (ascending item-id)
    order.  Unlike a frequency-ordered FP-tree, the insertion path of a
    transaction never depends on global counts, so weighted insert/remove of
    arbitrary transactions keeps the tree exactly equal to one built from
    scratch on the surviving multiset.
:class:`IncrementalMiner`
    The itemset-count half: a transaction multiset + canonical tree +
    per-suffix mined-itemset cache with dirty-item tracking.  ``itemsets()``
    re-mines only suffix items whose supporting transactions changed, using
    the *same* conditional-tree primitives as :func:`repro.mining.fptree.
    fpgrowth` — counts are identical by construction, not by luck.
:class:`IncrementalRuleMiner`
    The rule half: syncs against an :class:`EventSetDB` by multiset diff,
    feeds the maintained itemset table through
    :func:`repro.mining.rules.rules_from_itemsets` with a memoizing body
    counter, and snapshots/restores through plain dicts for the codec
    registry.

Soundness (why delta-mining is exact)
-------------------------------------
Frequent itemsets are partitioned by their *maximum* item: mining item ``i``
over the conditional pattern base of items ``< i`` yields exactly the
frequent itemsets whose max item is ``i`` (this is FP-growth's recursion
evaluated in ascending header order over the canonical tree).  A transaction
add/evict marks all its items *dirty*; an itemset's count can only change if
**every** one of its items occurred in some changed transaction, so any
suffix item that stayed clean proves every itemset in its partition kept its
count — its cached partition is reused verbatim when the absolute support
threshold did not drop (if the threshold *rose*, the cache is filtered by
count, which is exact because counts are exact).  A threshold drop can make
previously-infrequent itemsets frequent without touching any transaction, so
it forces a re-mine of every suffix; that is the one case where incremental
work degenerates to from-scratch cost (see docs/incremental_mining.md).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Mapping, Optional, Sequence

from repro.mining.counts import min_count_for
from repro.mining.fptree import build_conditional_tree, mine_conditional
from repro.mining.rules import RuleSet, rules_from_itemsets
from repro.mining.transactions import EventSetDB
from repro.obs import get_registry
from repro.util.validation import check_fraction


class _CanNode:
    """One canonical-order prefix-tree node."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: Optional[int], parent: Optional["_CanNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _CanNode] = {}


class CanonicalTree:
    """Weighted prefix tree in canonical (ascending item-id) order.

    Because the path of a transaction is a pure function of the transaction
    itself, ``add(t, w)`` followed by ``remove(t, w)`` restores the tree
    bit-for-bit, and the tree after any add/remove sequence equals the tree
    built from scratch on the resulting multiset — the property a
    frequency-ordered FP-tree lacks (its item order shifts with counts,
    which is why CanTree-style canonical order is the standard choice for
    incremental mining).
    """

    def __init__(self) -> None:
        self.root = _CanNode(None, None)
        # item -> set of nodes carrying it (dict used as an ordered set).
        self._nodes: dict[int, dict[_CanNode, None]] = defaultdict(dict)

    def add(self, items: Sequence[int], count: int) -> None:
        """Insert a canonical-sorted transaction with multiplicity ``count``."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _CanNode(item, node)
                node.children[item] = child
                self._nodes[item][child] = None
            child.count += count
            node = child

    def remove(self, items: Sequence[int], count: int) -> None:
        """Remove multiplicity ``count`` of a previously-added transaction.

        Nodes whose count reaches zero are pruned.  Counts are monotone down
        a path (parent.count >= child.count), so a zero-count node has only
        zero-count descendants and unlinking it drops them all.
        """
        node = self.root
        path: list[_CanNode] = []
        for item in items:
            child = node.children.get(item)
            if child is None or child.count < count:
                raise ValueError(
                    f"cannot remove {count} x {list(items)}: not present"
                )
            path.append(child)
            node = child
        for child in reversed(path):
            child.count -= count
            if child.count == 0:
                parent = child.parent
                assert parent is not None
                del parent.children[child.item]  # type: ignore[arg-type]
                del self._nodes[child.item][child]
                for orphan_item, orphan in _iter_subtree(child):
                    self._nodes[orphan_item].pop(orphan, None)

    def paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``: (prefix-path, count) pairs.

        Prefix paths contain only items ``< item`` (canonical order), which
        is exactly the conditional DB for the max-item-``item`` partition.
        """
        out: list[tuple[list[int], int]] = []
        for node in self._nodes.get(item, ()):
            if node.count == 0:
                continue
            path: list[int] = []
            p = node.parent
            while p is not None and p.item is not None:
                path.append(p.item)
                p = p.parent
            path.reverse()
            out.append((path, node.count))
        return out


def _iter_subtree(node: _CanNode) -> Iterable[tuple[int, _CanNode]]:
    """All (item, node) pairs strictly below ``node``."""
    stack = list(node.children.values())
    while stack:
        n = stack.pop()
        assert n.item is not None
        yield n.item, n
        stack.extend(n.children.values())


class IncrementalMiner:
    """Maintained itemset counts over a sliding transaction multiset.

    ``add(transactions)`` / ``evict(transactions)`` update the canonical
    tree, item counts, and the dirty-item set in O(size of the delta);
    ``itemsets(min_support, max_len)`` then returns the exact
    :func:`~repro.mining.fptree.fpgrowth` result for the current multiset,
    re-mining only the suffix partitions whose counts could have changed.
    """

    def __init__(self) -> None:
        self._tree = CanonicalTree()
        self._trans: Counter[frozenset[int]] = Counter()
        self._item_counts: Counter[int] = Counter()
        self._n = 0
        self._dirty: set[int] = set()
        # suffix item -> (min_count it was mined at, its itemset partition).
        self._suffix_cache: dict[int, tuple[int, dict[frozenset[int], int]]] = {}
        self._last_max_len: Optional[int] = None
        #: Bumped on every state change; lets dependents (rule cache, the
        #: evaluation-layer fitter) detect staleness cheaply.
        self.version = 0

    # -- delta maintenance -------------------------------------------------

    @property
    def n_transactions(self) -> int:
        return self._n

    def transaction_counts(self) -> Mapping[frozenset[int], int]:
        """The current multiset (live view; do not mutate)."""
        return self._trans

    def add(self, transactions: Iterable[frozenset[int]]) -> int:
        """Add a window of transactions; returns the number added."""
        return self._apply(transactions, +1)

    def evict(self, transactions: Iterable[frozenset[int]]) -> int:
        """Evict previously-added transactions; returns the number evicted."""
        return self._apply(transactions, -1)

    def _apply(self, transactions: Iterable[frozenset[int]], sign: int) -> int:
        delta: Counter[frozenset[int]] = Counter()
        for t in transactions:
            delta[frozenset(t)] += 1
        n_delta = sum(delta.values())
        if not n_delta:
            return 0
        if sign < 0:
            # Validate the whole batch first so a bad evict cannot leave the
            # maintained state half-applied.
            for t, w in delta.items():
                have = self._trans.get(t, 0)
                if have < w:
                    raise ValueError(
                        f"evicting {w} x {sorted(t)} but only {have} present"
                    )
        for t, w in delta.items():
            items = sorted(t)
            if sign > 0:
                self._tree.add(items, w)
                self._trans[t] += w
            else:
                have = self._trans.get(t, 0)
                if have < w:
                    raise ValueError(
                        f"evicting {w} x {items} but only {have} present"
                    )
                self._tree.remove(items, w)
                if have == w:
                    del self._trans[t]
                else:
                    self._trans[t] = have - w
            for item in t:
                self._item_counts[item] += sign * w
                if self._item_counts[item] == 0:
                    del self._item_counts[item]
                self._dirty.add(item)
        self._n += sign * n_delta
        self.version += 1
        get_registry().counter(
            "mining.delta_transactions",
            n_delta,
            op="add" if sign > 0 else "evict",
        )
        return n_delta

    # -- mining ------------------------------------------------------------

    def itemsets(
        self, min_support: float, max_len: int = 6
    ) -> dict[frozenset[int], int]:
        """Frequent itemsets of the current multiset — exact fpgrowth output.

        Suffix partitions untouched by the delta (and mined at a threshold
        no higher than now needed) are reused from cache; the rest are
        re-mined from the canonical tree via the shared FP-growth
        primitives.
        """
        check_fraction(min_support, "min_support")
        if max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {max_len}")
        obs = get_registry()
        if self._n == 0:
            self._suffix_cache.clear()
            self._dirty.clear()
            return {}
        min_count = min_count_for(min_support, self._n)
        if max_len != self._last_max_len:
            self._suffix_cache.clear()
            self._last_max_len = max_len

        reused = 0
        mined = 0
        fresh: dict[int, tuple[int, dict[frozenset[int], int]]] = {}
        out: dict[frozenset[int], int] = {}
        for item in sorted(self._item_counts):
            cached = self._suffix_cache.get(item)
            if (
                cached is not None
                and item not in self._dirty
                and min_count >= cached[0]
            ):
                # Clean suffix: every itemset in the partition kept its
                # exact count; a raised threshold only filters.
                mined_at, sets = cached
                if min_count == mined_at:
                    part = sets
                else:
                    part = {s: c for s, c in sets.items() if c >= min_count}
                reused += 1
            else:
                part = self._mine_suffix(item, min_count, max_len)
                mined += 1
            fresh[item] = (min_count, part)
            out.update(part)
        self._suffix_cache = fresh
        self._dirty.clear()
        obs.counter("mining.incremental.suffix_reused", reused)
        obs.counter("mining.incremental.suffix_mined", mined)
        return out

    def _mine_suffix(
        self, item: int, min_count: int, max_len: int
    ) -> dict[frozenset[int], int]:
        """Mine the max-item-``item`` partition from its pattern base."""
        out: dict[frozenset[int], int] = {}
        if self._item_counts.get(item, 0) < min_count:
            return out
        out[frozenset({item})] = self._item_counts[item]
        if max_len < 2:
            return out
        base = self._tree.paths(item)
        if not base:
            return out
        tree, frequent = build_conditional_tree(base, min_count)
        if frequent:
            mine_conditional(
                tree, frequent, frozenset({item}), min_count, max_len, out
            )
        return out


class IncrementalRuleMiner:
    """Maintained rule mining over a sliding :class:`EventSetDB` window.

    ``sync(db)`` diffs the database's transaction multiset against the
    maintained one and applies only the delta; ``rules()`` then produces a
    :class:`RuleSet` bit-identical to ``generate_rules(db, ...)`` with the
    same parameters.  Body-count scans for Step-3 combined confidence are
    memoized and invalidated per dirty item.
    """

    def __init__(
        self,
        min_support: float = 0.04,
        min_confidence: float = 0.2,
        max_len: int = 6,
        combine: bool = True,
        prune_generalizations: bool = True,
    ) -> None:
        check_fraction(min_support, "min_support")
        check_fraction(min_confidence, "min_confidence")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_len = max_len
        self.combine = combine
        self.prune_generalizations = prune_generalizations
        self.miner = IncrementalMiner()
        self.item_names: list[str] = []
        self.fatal_items: frozenset[int] = frozenset()
        self._rule_dirty: set[int] = set()
        # (body, heads) -> (body_count, hit_count); valid while no item of
        # the body occurs in a changed transaction.
        self._body_cache: dict[
            tuple[frozenset[int], frozenset[int]], tuple[int, int]
        ] = {}
        self._ruleset: Optional[RuleSet] = None
        self._ruleset_version = -1

    # -- window maintenance ------------------------------------------------

    def sync(self, db: EventSetDB) -> tuple[int, int]:
        """Bring the maintained window in line with ``db`` by multiset diff.

        Returns ``(n_added, n_evicted)``.  Item ids must be stable across
        windows: the interned-name tables of successive windows must agree
        on every id the maintained state has seen (EventStore.concat grows
        tables prefix-stably, so sliding windows of one stream qualify).  A
        conflicting table resets the state to a from-scratch build.
        """
        if not self._names_compatible(db.item_names):
            self.reset()
        self.item_names = list(db.item_names)
        self.fatal_items = db.fatal_items
        target: Counter[frozenset[int]] = Counter(db.transactions())
        current = self.miner.transaction_counts()
        to_add: list[frozenset[int]] = []
        to_evict: list[frozenset[int]] = []
        for t in set(target) | set(current):
            diff = target.get(t, 0) - current.get(t, 0)
            if diff > 0:
                to_add.extend([t] * diff)
            elif diff < 0:
                to_evict.extend([t] * -diff)
        if to_evict:
            self._touch(to_evict)
            self.miner.evict(to_evict)
        if to_add:
            self._touch(to_add)
            self.miner.add(to_add)
        return len(to_add), len(to_evict)

    def add_window(self, transactions: Iterable[frozenset[int]]) -> int:
        """Add transactions directly (callers managing their own windows)."""
        batch = [frozenset(t) for t in transactions]
        self._touch(batch)
        return self.miner.add(batch)

    def evict_window(self, transactions: Iterable[frozenset[int]]) -> int:
        """Evict transactions directly (exact multiset members required)."""
        batch = [frozenset(t) for t in transactions]
        self._touch(batch)
        return self.miner.evict(batch)

    def reset(self) -> None:
        """Drop all maintained state (next sync rebuilds from scratch)."""
        self.miner = IncrementalMiner()
        self._rule_dirty.clear()
        self._body_cache.clear()
        self._ruleset = None
        self._ruleset_version = -1

    def _names_compatible(self, names: Sequence[str]) -> bool:
        if len(names) < len(self.item_names):
            return False
        return all(a == b for a, b in zip(self.item_names, names))

    def _touch(self, batch: Iterable[frozenset[int]]) -> None:
        for t in batch:
            self._rule_dirty.update(t)

    # -- rule generation ---------------------------------------------------

    def rules(self) -> RuleSet:
        """The rule set of the current window — bit-identical to
        ``generate_rules`` with this miner's parameters on the same
        transactions."""
        if (
            self._ruleset is not None
            and self._ruleset_version == self.miner.version
        ):
            get_registry().counter("mining.incremental.ruleset_reused")
            return self._ruleset
        # Purge body-count memos touching any changed item, then mark the
        # remaining memos valid for this window.
        if self._rule_dirty:
            dirty = self._rule_dirty
            self._body_cache = {
                k: v for k, v in self._body_cache.items() if not (k[0] & dirty)
            }
            self._rule_dirty = set()
        freq = self.miner.itemsets(self.min_support, self.max_len)
        ruleset = rules_from_itemsets(
            freq,
            self.miner.n_transactions,
            item_names=self.item_names,
            fatal_items=self.fatal_items,
            min_confidence=self.min_confidence,
            combine=self.combine,
            prune_generalizations=self.prune_generalizations,
            body_counter=self._count_body,
        )
        self._ruleset = ruleset
        self._ruleset_version = self.miner.version
        return ruleset

    def _count_body(
        self, body: frozenset[int], heads: frozenset[int]
    ) -> tuple[int, int]:
        key = (body, heads)
        cached = self._body_cache.get(key)
        if cached is not None:
            get_registry().counter("mining.incremental.body_cache_hits")
            return cached
        body_count = 0
        hit_count = 0
        for t, w in self.miner.transaction_counts().items():
            if body <= t:
                body_count += w
                if t & heads:
                    hit_count += w
        self._body_cache[key] = (body_count, hit_count)
        return body_count, hit_count

    # -- snapshot / restore ------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the maintained window and parameters.

        Only the transaction multiset and window metadata are persisted —
        tree, caches and dirty sets are derived state rebuilt on restore, so
        snapshots stay small and content-addressable hashes stay stable
        across cache states.
        """
        return {
            "params": {
                "min_support": self.min_support,
                "min_confidence": self.min_confidence,
                "max_len": self.max_len,
                "combine": self.combine,
                "prune_generalizations": self.prune_generalizations,
            },
            "item_names": list(self.item_names),
            "fatal_items": sorted(self.fatal_items),
            "transactions": sorted(
                (sorted(t), w)
                for t, w in self.miner.transaction_counts().items()
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "IncrementalRuleMiner":
        params = payload["params"]
        self = cls(
            min_support=params["min_support"],
            min_confidence=params["min_confidence"],
            max_len=params["max_len"],
            combine=params["combine"],
            prune_generalizations=params["prune_generalizations"],
        )
        self.item_names = list(payload["item_names"])
        self.fatal_items = frozenset(payload["fatal_items"])
        batch = [
            frozenset(items)
            for items, w in payload["transactions"]
            for _ in range(w)
        ]
        self.add_window(batch)
        return self
