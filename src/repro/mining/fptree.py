"""FP-growth frequent-itemset mining (Han, Pei, Yin, Mao — paper [15]).

Mines the exact same frequent itemsets as :func:`repro.mining.apriori.apriori`
without candidate generation: the database is compressed into a prefix tree
(FP-tree) whose header table links all nodes of one item, and itemsets are
grown recursively from each item's *conditional pattern base*.

Property tests assert Apriori/FP-growth equivalence on random databases; the
miner-cost ablation bench compares their running times as the support
threshold drops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from repro.mining.counts import min_count_for
from repro.obs import get_registry
from repro.util.validation import check_fraction


class _FPNode:
    """One prefix-tree node."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[int], parent: Optional["_FPNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}
        self.link: Optional[_FPNode] = None


class _FPTree:
    """FP-tree with header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[int, _FPNode] = {}
        self._tails: dict[int, _FPNode] = {}

    def insert(self, items: Sequence[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                tail = self._tails.get(item)
                if tail is None:
                    self.header[item] = child
                else:
                    tail.link = child
                self._tails[item] = child
            child.count += count
            node = child

    def item_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for item, head in self.header.items():
            c = 0
            node: Optional[_FPNode] = head
            while node is not None:
                c += node.count
                node = node.link
            counts[item] = c
        return counts

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of an item: (path, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        node: Optional[_FPNode] = self.header.get(item)
        while node is not None:
            path: list[int] = []
            p = node.parent
            while p is not None and p.item is not None:
                path.append(p.item)
                p = p.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
            node = node.link
        return paths


def build_conditional_tree(
    weighted_transactions: list[tuple[list[int], int]],
    min_count: int,
) -> tuple[_FPTree, dict[int, int]]:
    """Filter infrequent items, order by frequency, build the tree.

    A reusable count-maintenance primitive: besides backing
    :func:`fpgrowth`'s own recursion it builds the conditional trees of the
    incremental engine (:mod:`repro.mining.incremental`), which is what
    makes the two miners' counts identical by construction.
    """
    item_counts: dict[int, int] = defaultdict(int)
    for items, count in weighted_transactions:
        for item in items:
            item_counts[item] += count
    frequent = {i: c for i, c in item_counts.items() if c >= min_count}
    # Descending frequency; ties broken by item id for determinism.
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-frequent[i], i))
        )
    }
    tree = _FPTree()
    for items, count in weighted_transactions:
        kept = sorted((i for i in set(items) if i in frequent), key=order.__getitem__)
        if kept:
            tree.insert(kept, count)
    return tree, frequent


def mine_conditional(
    tree: _FPTree,
    frequent_items: dict[int, int],
    suffix: frozenset[int],
    min_count: int,
    max_len: int,
    out: dict[frozenset[int], int],
) -> None:
    """Recursively grow ``suffix`` through ``tree``'s pattern bases.

    Writes every frequent ``suffix | {...}`` extension (with its exact
    database count) into ``out``.  Shared with the incremental engine, whose
    per-suffix re-mining calls this with a singleton suffix.
    """
    # Grow from least frequent item upward (standard FP-growth order).
    for item in sorted(frequent_items, key=lambda i: (frequent_items[i], i)):
        new_set = suffix | {item}
        out[frozenset(new_set)] = frequent_items[item]
        if len(new_set) >= max_len:
            continue
        cond = tree.prefix_paths(item)
        if not cond:
            continue
        cond_tree, cond_frequent = build_conditional_tree(cond, min_count)
        if cond_frequent:
            mine_conditional(
                cond_tree, cond_frequent, frozenset(new_set), min_count,
                max_len, out,
            )


def fpgrowth(
    transactions: Sequence[frozenset[int]],
    min_support: float,
    max_len: int = 6,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets with support >= ``min_support``.

    Same contract (and same result) as :func:`repro.mining.apriori.apriori`.
    """
    check_fraction(min_support, "min_support")
    if max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")
    n = len(transactions)
    if n == 0:
        return {}
    min_count = min_count_for(min_support, n)
    obs = get_registry()
    with obs.timer("mining.fpgrowth.mine_seconds"):
        weighted = [(sorted(t), 1) for t in transactions]
        tree, frequent = build_conditional_tree(weighted, min_count)
        out: dict[frozenset[int], int] = {}
        if frequent:
            mine_conditional(tree, frequent, frozenset(), min_count, max_len, out)
    obs.counter("mining.fpgrowth.itemsets", len(out))
    return out
