"""Event-set construction (paper §3.2.2, Step 1).

"On the learning set, for each fatal event identify the set of non-fatal
events frequently preceding it within a fixed time window (i.e. *rule
generation window*).  The set, including the fatal event and their precursor
non-fatal events, is called an *event-set*."

:class:`EventSetDB` is the transaction database handed to the miners: one
transaction per fatal event, containing the non-fatal subcategory ids seen in
``[t_fatal - window, t_fatal)`` plus the fatal event's own subcategory id.
Items are subcategory ids into the store's label table, so the mining layer
works on small integers.

The fraction of fatal events whose event-set has an *empty* body is the
quantity the paper reports as the rule-based method's recall ceiling (31-66 %
of ANL failures and 47-75 % of SDSC failures have no precursor).

:func:`build_tiled_windows` is an extension (not in the paper): it tiles the
whole timeline, including failure-free stretches, producing transactions with
no head.  Confidences computed on a tiled DB account for bodies that occur
without any failure, which the per-fatal DB cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ras.store import UNCLASSIFIED, EventStore
from repro.util.validation import check_positive


@dataclass
class EventSetDB:
    """Transaction database for rule mining.

    Attributes
    ----------
    bodies:
        Per-transaction frozenset of non-fatal item ids.
    heads:
        Per-transaction frozenset of fatal item ids (empty for failure-free
        tiled windows).
    item_names:
        Item id -> subcategory name (the store's label table).
    fatal_items:
        Ids that denote fatal subcategories.
    """

    bodies: list[frozenset[int]]
    heads: list[frozenset[int]]
    item_names: list[str]
    fatal_items: frozenset[int]

    def __post_init__(self) -> None:
        if len(self.bodies) != len(self.heads):
            raise ValueError("bodies and heads must align")

    def __len__(self) -> int:
        return len(self.bodies)

    def transactions(self) -> list[frozenset[int]]:
        """Body ∪ head per transaction (what the miners consume)."""
        return [b | h for b, h in zip(self.bodies, self.heads)]

    def no_precursor_fraction(self) -> float:
        """Fraction of transactions with an empty body (no precursors).

        Only transactions that carry a head (i.e. correspond to a fatal
        event) are counted; tiled failure-free windows are excluded.
        """
        with_head = [(b, h) for b, h in zip(self.bodies, self.heads) if h]
        if not with_head:
            return 0.0
        empty = sum(1 for b, _h in with_head if not b)
        return empty / len(with_head)

    def name_of(self, item: int) -> str:
        return self.item_names[item]


def _require_classified(events: EventStore) -> None:
    if len(events) and bool(np.any(events.subcat_ids == UNCLASSIFIED)):
        raise ValueError(
            "events must be classified (run the Phase-1 pipeline first)"
        )


def _fatal_item_ids(events: EventStore) -> frozenset[int]:
    from repro.taxonomy.classifier import TaxonomyClassifier

    clf = TaxonomyClassifier()
    return frozenset(
        i for i, name in enumerate(events.subcat_table) if clf.label_is_fatal(name)
    )


def build_event_sets(
    events: EventStore,
    rule_window: float,
    fatal_items: Optional[frozenset[int]] = None,
) -> EventSetDB:
    """One transaction per fatal event (the paper's construction).

    ``rule_window`` is the rule-generation window in seconds.  The body
    collects the *distinct* non-fatal subcategories in ``[t - window, t)``;
    the head is the fatal event's subcategory.
    """
    check_positive(rule_window, "rule_window")
    _require_classified(events)
    if fatal_items is None:
        fatal_items = _fatal_item_ids(events)

    times = events.times
    subcats = events.subcat_ids
    fatal_mask = events.fatal_mask()
    nonfatal_idx = np.flatnonzero(~fatal_mask)
    nonfatal_times = times[nonfatal_idx]
    nonfatal_subcats = subcats[nonfatal_idx]
    fatal_positions = np.flatnonzero(fatal_mask)

    # Vectorized bounds of each fatal's look-back window over the non-fatal
    # sub-array.
    lo = np.searchsorted(nonfatal_times, times[fatal_positions] - rule_window, "left")
    hi = np.searchsorted(nonfatal_times, times[fatal_positions], "left")

    bodies: list[frozenset[int]] = []
    heads: list[frozenset[int]] = []
    for k, pos in enumerate(fatal_positions):
        body_items = nonfatal_subcats[lo[k] : hi[k]]
        bodies.append(frozenset(int(x) for x in np.unique(body_items)))
        heads.append(frozenset({int(subcats[pos])}))
    return EventSetDB(
        bodies=bodies,
        heads=heads,
        item_names=list(events.subcat_table),
        fatal_items=fatal_items,
    )


def build_tiled_windows(
    events: EventStore,
    window: float,
    fatal_items: Optional[frozenset[int]] = None,
) -> EventSetDB:
    """Tile the timeline into fixed windows (extension; includes empty heads).

    Every window of ``window`` seconds becomes one transaction: body = the
    distinct non-fatal subcategories inside it, head = the distinct fatal
    subcategories inside it (possibly empty).  Windows containing no events
    at all are skipped — they carry no information for mining.
    """
    check_positive(window, "window")
    _require_classified(events)
    if fatal_items is None:
        fatal_items = _fatal_item_ids(events)
    if len(events) == 0:
        return EventSetDB([], [], list(events.subcat_table), fatal_items)
    t0 = int(events.times[0])
    t1 = int(events.times[-1]) + 1
    edges = np.arange(t0, t1 + window, window)
    # Window id per event: largest i with edges[i] <= t, i.e. membership in
    # [edges[i], edges[i+1]) — the same intervals the per-window searchsorted
    # pairs delimit, computed in one pass over the event column instead of
    # one pass per window.
    win = np.searchsorted(edges, events.times, "right") - 1
    # Distinct (window, item) pairs via a composite key; np.unique both
    # dedups within each window and sorts by window, so decoding the keys
    # yields contiguous per-window segments in ascending window order —
    # exactly the order the per-window loop emitted transactions in.
    n_items = len(events.subcat_table) or 1
    keys = win.astype(np.int64) * n_items + events.subcat_ids
    fatal_mask = events.fatal_mask()
    nonfatal_keys = np.unique(keys[~fatal_mask])
    fatal_keys = np.unique(keys[fatal_mask])
    present = np.unique(win)  # windows containing >= 1 event, ascending
    nonfatal_win = nonfatal_keys // n_items
    fatal_win = fatal_keys // n_items
    nonfatal_lo = np.searchsorted(nonfatal_win, present, "left")
    nonfatal_hi = np.searchsorted(nonfatal_win, present, "right")
    fatal_lo = np.searchsorted(fatal_win, present, "left")
    fatal_hi = np.searchsorted(fatal_win, present, "right")
    nonfatal_items = (nonfatal_keys % n_items).tolist()
    fatal_items_list = (fatal_keys % n_items).tolist()
    bodies = [
        frozenset(nonfatal_items[lo:hi])
        for lo, hi in zip(nonfatal_lo.tolist(), nonfatal_hi.tolist())
    ]
    heads = [
        frozenset(fatal_items_list[lo:hi])
        for lo, hi in zip(fatal_lo.tolist(), fatal_hi.tolist())
    ]
    return EventSetDB(
        bodies=bodies,
        heads=heads,
        item_names=list(events.subcat_table),
        fatal_items=fatal_items,
    )
