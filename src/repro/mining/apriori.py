"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB'94 — paper [1]).

The classic level-wise algorithm: frequent k-itemsets are joined to form
(k+1)-candidates, candidates with an infrequent subset are pruned (the
*apriori property*: every subset of a frequent itemset is frequent), and the
survivors are counted against the transaction database.

The transaction DB of this application is small (one transaction per fatal
event — thousands), but the item universe (101 subcategories) and low support
threshold (0.04) can still make naive candidate generation expensive; the
implementation therefore:

- counts candidates via per-transaction subset enumeration when the
  transaction is short, and via candidate-subset tests otherwise;
- uses a ``max_len`` cap (default 6) matching the longest rule bodies the
  paper exhibits (4 body items + 1 head).
"""

from __future__ import annotations

import time
from collections import defaultdict
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.mining.counts import min_count_for
from repro.obs import get_registry
from repro.util.validation import check_fraction


def _count_candidates(
    transactions: Sequence[frozenset[int]],
    candidates: set[frozenset[int]],
    k: int,
) -> dict[frozenset[int], int]:
    """Count how many transactions contain each candidate k-itemset."""
    counts: dict[frozenset[int], int] = defaultdict(int)
    for t in transactions:
        if len(t) < k:
            continue
        # Enumerating the transaction's own k-subsets is cheaper than testing
        # every candidate when the transaction is short; otherwise test the
        # candidate set directly.
        n_subsets = 1
        for i in range(k):
            n_subsets = n_subsets * (len(t) - i) // (i + 1)
            if n_subsets > len(candidates):
                break
        if n_subsets <= len(candidates):
            for combo in combinations(sorted(t), k):
                fs = frozenset(combo)
                if fs in candidates:
                    counts[fs] += 1
        else:
            for c in candidates:
                if c <= t:
                    counts[c] += 1
    return dict(counts)


def _join_step(frequent_k: list[frozenset[int]], k: int) -> set[frozenset[int]]:
    """Join frequent k-itemsets sharing a (k-1)-prefix into (k+1)-candidates."""
    sorted_sets = sorted(tuple(sorted(s)) for s in frequent_k)
    candidates: set[frozenset[int]] = set()
    for i in range(len(sorted_sets)):
        for j in range(i + 1, len(sorted_sets)):
            a, b = sorted_sets[i], sorted_sets[j]
            if a[:-1] != b[:-1]:
                break  # sorted order: no later j can share the prefix
            candidates.add(frozenset(a) | frozenset(b))
    return candidates


def _prune_step(
    candidates: set[frozenset[int]], frequent_k: set[frozenset[int]], k: int
) -> set[frozenset[int]]:
    """Drop candidates having an infrequent k-subset (apriori property)."""
    pruned: set[frozenset[int]] = set()
    for c in candidates:
        if all(frozenset(sub) in frequent_k for sub in combinations(c, k)):
            pruned.add(c)
    return pruned


def apriori(
    transactions: Sequence[frozenset[int]],
    min_support: float,
    max_len: int = 6,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets with support >= ``min_support``.

    Parameters
    ----------
    transactions:
        The database; each transaction is a frozenset of item ids.
    min_support:
        Relative support threshold in [0, 1] (the paper uses 0.04).
    max_len:
        Largest itemset size mined.

    Returns
    -------
    dict mapping each frequent itemset to its absolute transaction count.
    """
    check_fraction(min_support, "min_support")
    if max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")
    n = len(transactions)
    if n == 0:
        return {}
    min_count = min_count_for(min_support, n)

    result: dict[frozenset[int], int] = {}

    # L1.
    item_counts: dict[int, int] = defaultdict(int)
    for t in transactions:
        for item in t:
            item_counts[item] += 1
    frequent = [
        frozenset({item}) for item, c in item_counts.items() if c >= min_count
    ]
    for fs in frequent:
        result[fs] = item_counts[next(iter(fs))]

    # Per-pass instrumentation happens at level granularity (at most
    # ``max_len`` passes), so the disabled path costs two no-op calls and
    # one monotonic read per level — nothing against the counting loops.
    obs = get_registry()
    obs.counter("mining.apriori.frequent", len(frequent), k="1")

    k = 1
    while frequent and k < max_len:
        pass_start = time.perf_counter()
        candidates = _join_step(frequent, k)
        n_generated = len(candidates)
        candidates = _prune_step(candidates, set(frequent), k)
        obs.counter("mining.apriori.candidates", n_generated)
        obs.counter("mining.apriori.pruned", n_generated - len(candidates))
        if not candidates:
            break
        counts = _count_candidates(transactions, candidates, k + 1)
        frequent = [fs for fs, c in counts.items() if c >= min_count]
        for fs in frequent:
            result[fs] = counts[fs]
        k += 1
        obs.counter("mining.apriori.frequent", len(frequent), k=str(k))
        obs.observe(
            "mining.apriori.pass_seconds", time.perf_counter() - pass_start
        )
    return result


def support_of(
    itemset: Iterable[int],
    counts: Mapping[frozenset[int], int],
    n_transactions: int,
) -> float:
    """Relative support of an itemset from a mined count table."""
    if n_transactions <= 0:
        raise ValueError("n_transactions must be > 0")
    return counts.get(frozenset(itemset), 0) / n_transactions
