"""Association-rule mining substrate (paper §3.2.2).

Implemented from scratch (no external ML dependency):

- :mod:`repro.mining.transactions` — building *event-sets* (the paper's
  transactions): for each fatal event, the set of non-fatal subcategories
  observed in the rule-generation window before it.
- :mod:`repro.mining.apriori` — the classic Agrawal-Srikant frequent-itemset
  algorithm the paper cites.
- :mod:`repro.mining.fptree` — FP-growth (Han et al., the paper's [15]),
  mining the identical itemsets without candidate generation; used for the
  miner-cost ablation and cross-checked against Apriori by property tests.
- :mod:`repro.mining.rules` — rule generation (body of non-fatal items, head
  of fatal items), the paper's per-body rule *combination*, confidence
  sorting, and the matcher used at prediction time.
- :mod:`repro.mining.incremental` — maintained mining state for O(delta)
  sliding-window retrains: add/evict transaction windows, re-mine only the
  suffix partitions whose counts changed, bit-identical rule sets.
"""

from repro.mining.apriori import apriori
from repro.mining.counts import min_count_for
from repro.mining.fptree import fpgrowth
from repro.mining.incremental import (
    CanonicalTree,
    IncrementalMiner,
    IncrementalRuleMiner,
)
from repro.mining.rules import Rule, RuleSet, generate_rules, rules_from_itemsets
from repro.mining.transactions import (
    EventSetDB,
    build_event_sets,
    build_tiled_windows,
)

__all__ = [
    "apriori",
    "fpgrowth",
    "min_count_for",
    "CanonicalTree",
    "IncrementalMiner",
    "IncrementalRuleMiner",
    "Rule",
    "RuleSet",
    "generate_rules",
    "rules_from_itemsets",
    "EventSetDB",
    "build_event_sets",
    "build_tiled_windows",
]
