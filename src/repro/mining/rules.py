"""Association-rule generation, combination and matching (paper §3.2.2).

From the mined frequent itemsets we keep rules of the form

    {non-fatal precursors} -> {fatal event(s)}

with support and confidence above the paper's thresholds (0.04 / 0.2).
Rules with the same body are *combined* (Step 3: "if {e...} -> f1 and
{e...} -> f2 are generated, we combine them as {e...} -> {f1, f2}"), because
the predictor only needs to know *whether* a failure is imminent.  Combined
confidence is recomputed against the database as P(any head | body).  Rules
are sorted by descending confidence (Step 4) and the matcher returns the
highest-confidence rule observed (Step 6).

:class:`RuleMatcher` is the streaming-window matcher used at prediction time:
it maintains the set of items present in the sliding observation window and
reports rules the moment their body becomes fully observed — O(rules
containing the arriving item) per event, not O(all rules).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Optional, Sequence

from repro.mining.apriori import apriori
from repro.mining.fptree import fpgrowth
from repro.mining.transactions import EventSetDB
from repro.obs import get_registry
from repro.util.validation import check_fraction

#: Miner registry: both produce identical itemset->count tables.
MINERS: dict[str, Callable[..., dict[frozenset[int], int]]] = {
    "apriori": apriori,
    "fpgrowth": fpgrowth,
}

#: Counts a rule body against the database: (body_count, hit_count) where
#: hit_count is the number of body-containing transactions that also contain
#: at least one head.  Pluggable so the incremental engine can memoize.
BodyCounter = Callable[[frozenset[int], frozenset[int]], tuple[int, int]]


@dataclass(frozen=True)
class Rule:
    """An association rule body -> heads with its quality measures."""

    body: frozenset[int]
    heads: frozenset[int]
    confidence: float
    support: float
    support_count: int

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("rule body must be non-empty")
        if not self.heads:
            raise ValueError("rule heads must be non-empty")
        check_fraction(self.confidence, "confidence")
        check_fraction(self.support, "support")

    def format(self, item_names: Sequence[str]) -> str:
        """Figure-3 style rendering: ``a b ==> f: 0.7``."""
        body = " ".join(sorted(item_names[i] for i in self.body))
        heads = " ".join(sorted(item_names[i] for i in self.heads))
        return f"{body} ==> {heads}: {self.confidence:g}"


def generate_rules(
    db: EventSetDB,
    min_support: float = 0.04,
    min_confidence: float = 0.2,
    max_len: int = 6,
    miner: str = "apriori",
    combine: bool = True,
    prune_generalizations: bool = True,
) -> "RuleSet":
    """Mine, filter, combine and sort rules from an event-set database.

    Implements Steps 2-4 of the paper's rule-based method.  ``min_support``
    and ``min_confidence`` default to the paper's values.

    ``prune_generalizations`` drops a rule whose body is a proper subset of
    another rule's body when the more specific rule shares a head and has at
    least the same confidence: the general rule then adds no predictive
    value (every time its stronger specialization matches, the matcher
    prefers that anyway — paper Step 6 picks the highest confidence) while
    firing spuriously whenever the partial body occurs alone.
    """
    if miner not in MINERS:
        raise ValueError(f"unknown miner {miner!r}; choose from {sorted(MINERS)}")
    check_fraction(min_support, "min_support")
    check_fraction(min_confidence, "min_confidence")
    obs = get_registry()
    transactions = db.transactions()
    n = len(transactions)
    if n == 0:
        return RuleSet([], db.item_names, db.fatal_items)
    with obs.span("phase2.mine", miner=miner):
        freq = MINERS[miner](transactions, min_support, max_len=max_len)
    obs.counter("mining.itemsets_frequent", len(freq))

    def scan_body(body: frozenset[int], heads: frozenset[int]) -> tuple[int, int]:
        body_count = 0
        hit_count = 0
        for t in transactions:
            if body <= t:
                body_count += 1
                if t & heads:
                    hit_count += 1
        return body_count, hit_count

    return rules_from_itemsets(
        freq,
        n,
        item_names=db.item_names,
        fatal_items=db.fatal_items,
        min_confidence=min_confidence,
        combine=combine,
        prune_generalizations=prune_generalizations,
        body_counter=scan_body,
    )


def _rule_sort_key(r: Rule) -> tuple:
    """Total deterministic order: Step-4 confidence-descending, then support,
    then body/heads contents.  A *total* order (not just confidence/support)
    makes the rule list a pure function of the itemset table and transaction
    multiset — required for the incremental engine's bit-identical guarantee,
    which must not depend on dict iteration order.
    """
    return (
        -r.confidence,
        -r.support_count,
        tuple(sorted(r.body)),
        tuple(sorted(r.heads)),
    )


def rules_from_itemsets(
    freq: dict[frozenset[int], int],
    n_transactions: int,
    *,
    item_names: Sequence[str],
    fatal_items: frozenset[int],
    min_confidence: float = 0.2,
    combine: bool = True,
    prune_generalizations: bool = True,
    body_counter: BodyCounter,
) -> "RuleSet":
    """Steps 2-4 from an already-mined itemset->count table.

    The count-maintenance half of rule generation, split out so the
    incremental engine (:mod:`repro.mining.incremental`) can feed it a
    maintained itemset table and a memoizing ``body_counter`` while
    :func:`generate_rules` feeds it a fresh mine and a full-scan counter —
    both paths produce bit-identical :class:`RuleSet` contents.
    """
    check_fraction(min_confidence, "min_confidence")
    obs = get_registry()
    n = n_transactions
    if n == 0:
        return RuleSet([], item_names, fatal_items)

    # Step 2: single-head rules body(non-fatal) -> head(fatal).
    singles: list[Rule] = []
    for itemset, count in freq.items():
        heads = itemset & fatal_items
        if len(heads) != 1:
            continue
        body = itemset - heads
        if not body or body & fatal_items:
            continue
        body_count = freq.get(body)
        if not body_count:
            continue  # body itself below support (cannot happen w/ apriori)
        conf = count / body_count
        if conf < min_confidence:
            continue
        singles.append(
            Rule(
                body=body,
                heads=heads,
                confidence=conf,
                support=count / n,
                support_count=count,
            )
        )
    if prune_generalizations:
        n_before = len(singles)
        singles = _prune_generalizations(singles)
        obs.counter("mining.rules_pruned", n_before - len(singles))
    if not combine:
        obs.counter("mining.rules_kept", len(singles))
        return RuleSet(
            sorted(singles, key=_rule_sort_key), item_names, fatal_items
        )

    # Step 3: combine rules sharing a body; recompute confidence as
    # P(any head | body) over the database.
    by_body: dict[frozenset[int], set[int]] = defaultdict(set)
    for r in singles:
        by_body[r.body] |= r.heads
    combined: list[Rule] = []
    for body, heads in by_body.items():
        body_count, hit_count = body_counter(body, frozenset(heads))
        conf = hit_count / body_count if body_count else 0.0
        combined.append(
            Rule(
                body=body,
                heads=frozenset(heads),
                confidence=conf,
                support=hit_count / n,
                support_count=hit_count,
            )
        )
    # Step 4: descending confidence (total order for determinism).
    combined.sort(key=_rule_sort_key)
    obs.counter("mining.rules_kept", len(combined))
    return RuleSet(combined, item_names, fatal_items)


def _prune_generalizations(rules: list[Rule]) -> list[Rule]:
    """Drop rules subsumed by a more specific, at-least-as-confident rule."""
    kept: list[Rule] = []
    for a in rules:
        subsumed = any(
            a.body < b.body
            and (a.heads & b.heads)
            and b.confidence >= a.confidence
            for b in rules
        )
        if not subsumed:
            kept.append(a)
    return kept


class RuleSet:
    """An ordered (confidence-descending) collection of rules."""

    def __init__(
        self,
        rules: Sequence[Rule],
        item_names: Sequence[str],
        fatal_items: frozenset[int],
    ) -> None:
        self.rules: list[Rule] = list(rules)
        self.item_names: list[str] = list(item_names)
        self.fatal_items = fatal_items
        self._by_item: dict[int, list[int]] = defaultdict(list)
        for idx, rule in enumerate(self.rules):
            for item in rule.body:
                self._by_item[item].append(idx)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __getitem__(self, i: int) -> Rule:
        return self.rules[i]

    def rules_containing(self, item: int) -> list[int]:
        """Indices of rules whose body contains ``item``."""
        return self._by_item.get(item, [])

    def best_match(self, observed: Iterable[int]) -> Optional[Rule]:
        """Highest-confidence rule whose body is fully observed, if any."""
        observed = set(observed)
        for rule in self.rules:  # already confidence-descending
            if rule.body <= observed:
                return rule
        return None

    def matching(self, observed: Iterable[int]) -> list[Rule]:
        """All rules whose body is fully observed (confidence-descending)."""
        observed = set(observed)
        return [r for r in self.rules if r.body <= observed]

    def format_rules(self, limit: Optional[int] = None) -> str:
        """Figure-3 style listing of the top rules."""
        rules = self.rules if limit is None else self.rules[:limit]
        return "\n".join(r.format(self.item_names) for r in rules)


class RuleMatcher:
    """Streaming matcher over a sliding observation window.

    Feed items as they enter/leave the window; ``add`` returns the rules that
    became fully satisfied by the arrival (i.e. the arriving item completed
    their body), which is exactly when the predictor should consider raising
    a warning.
    """

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self._present: dict[int, int] = defaultdict(int)  # item -> multiplicity
        self._missing: list[int] = [len(r.body) for r in ruleset.rules]
        # Lazy min-heap of rule indices that became satisfied.  Rules are
        # confidence-descending, so the smallest *currently satisfied* index
        # is exactly the paper's Step-6 pick; stale entries (rules that fell
        # back out of the window) are discarded at query time, which keeps
        # best_satisfied() O(log R) amortized instead of O(R) per event.
        self._satisfied_heap: list[int] = []

    def reset(self) -> None:
        """Clear the window state."""
        self._present.clear()
        self._missing = [len(r.body) for r in self.ruleset.rules]
        self._satisfied_heap.clear()

    def add(self, item: int) -> list[Rule]:
        """Item enters the window; returns rules completed by this arrival."""
        self._present[item] += 1
        completed: list[Rule] = []
        if self._present[item] == 1:  # 0 -> 1 transition
            for idx in self.ruleset.rules_containing(item):
                self._missing[idx] -= 1
                if self._missing[idx] == 0:
                    completed.append(self.ruleset.rules[idx])
                    heappush(self._satisfied_heap, idx)
        completed.sort(key=lambda r: -r.confidence)
        return completed

    def remove(self, item: int) -> None:
        """Item leaves the window."""
        count = self._present.get(item, 0)
        if count == 0:
            raise ValueError(f"item {item} not present in window")
        if count == 1:
            del self._present[item]
            for idx in self.ruleset.rules_containing(item):
                self._missing[idx] += 1
        else:
            self._present[item] = count - 1

    def satisfied_rules(self) -> list[Rule]:
        """All rules currently fully observed (confidence-descending)."""
        return [
            self.ruleset.rules[i]
            for i, m in enumerate(self._missing)
            if m == 0
        ]

    def best_satisfied(self) -> Optional[Rule]:
        """Highest-confidence rule currently fully observed, if any.

        Equivalent to scanning :meth:`satisfied_rules` for the max-confidence
        rule (ties broken by support count, i.e. ruleset order), but O(log R)
        amortized: the satisfied-index heap is maintained incrementally by
        :meth:`add` and pruned of stale entries here.
        """
        heap = self._satisfied_heap
        missing = self._missing
        while heap and missing[heap[0]] != 0:
            heappop(heap)
        if not heap:
            return None
        return self.ruleset.rules[heap[0]]

    def observed_items(self) -> set[int]:
        """Distinct items currently in the window."""
        return set(self._present)

    def has_observed(self) -> bool:
        """True if any item is currently in the window (no set built)."""
        return bool(self._present)
