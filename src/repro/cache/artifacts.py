"""Content-addressed on-disk artifact cache.

Memoizes expensive fit artifacts (mined rule sets, learned probabilities)
across evaluation runs: an artifact is a JSON document stored under its
content key — ``<dir>/<key[:2]>/<key>.json`` — where the key is a stable
hash of everything that influenced the artifact (event-store fingerprint,
fold range, the fit-relevant slice of the predictor spec; see
:func:`repro.cache.fold_fit_key`).

Robustness rules:

- **Corruption is a miss, never a crash.**  A truncated or non-JSON file
  (killed worker, full disk) is treated as absent and deleted; the caller
  re-fits and overwrites it.
- **Writes are atomic.**  Artifacts are written to a same-directory temp
  file and ``os.replace``-d into place, so concurrent workers (the process
  pool) never observe half-written documents and last-writer-wins is safe —
  both writers hold identical content for a given key by construction.
- **Eviction is explicit.**  :meth:`ArtifactCache.prune` drops
  oldest-modified artifacts until the cache fits a byte budget.

Hit/miss/corrupt counts are recorded against the active
:mod:`repro.obs` registry (``cache.hits`` / ``cache.misses`` /
``cache.corrupt``) and mirrored on the instance for callers without a
registry installed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs import get_registry


class ArtifactCache:
    """A directory of content-addressed JSON artifacts.

    Safe to open from multiple processes at once; every operation is
    independent and atomic at the file level.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------ #
    # Keyed access
    # ------------------------------------------------------------------ #

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key`` (two-level fan-out by key prefix)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are lowercase hex digests, got {key!r}")
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The document stored under ``key``, or ``None`` on miss.

        A file that exists but does not parse as a JSON object counts as a
        miss (and is removed so the slot heals on the next ``put``).
        """
        path = self.path_for(key)
        obs = get_registry()
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict):
                raise ValueError("artifact root is not an object")
        except FileNotFoundError:
            self.misses += 1
            obs.counter("cache.misses")
            return None
        except (json.JSONDecodeError, ValueError, OSError):
            self.corrupt += 1
            self.misses += 1
            obs.counter("cache.corrupt")
            obs.counter("cache.misses")
            self._discard(path)
            return None
        self.hits += 1
        obs.counter("cache.hits")
        return doc

    def put(self, key: str, doc: dict) -> Path:
        """Atomically store ``doc`` under ``key``; returns the final path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        finally:
            self._discard(tmp)
        get_registry().counter("cache.writes")
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def _artifact_paths(self) -> list[Path]:
        return sorted(self.directory.glob("[0-9a-f][0-9a-f]/*.json"))

    def __len__(self) -> int:
        return len(self._artifact_paths())

    def size_bytes(self) -> int:
        """Total bytes currently held (corrupt/missing files count 0)."""
        total = 0
        for path in self._artifact_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-modified artifacts until under ``max_bytes``.

        Returns the number of artifacts removed.  Modification time is the
        eviction clock: re-``put`` refreshes it, so actively reused
        artifacts survive.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries: list[tuple[float, int, Path]] = []
        for path in self._artifact_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        entries.sort(key=lambda e: e[0])
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            self._discard(path)
            total -= size
            removed += 1
        if removed:
            get_registry().counter("cache.evicted", removed)
        return removed

    def clear(self) -> int:
        """Remove every artifact; returns the number removed."""
        paths = self._artifact_paths()
        for path in paths:
            self._discard(path)
        return len(paths)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return None

    def stats(self) -> dict[str, Any]:
        """Session counters plus current on-disk footprint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
            "bytes": self.size_bytes(),
        }
