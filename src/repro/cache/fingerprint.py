"""Stable content fingerprints for cache keys.

A cache key must change whenever anything that influenced the artifact
changed, and *only* then.  Two ingredients:

- :func:`store_fingerprint` — a SHA-256 digest over an
  :class:`~repro.ras.store.EventStore`'s columns (raw bytes plus dtype
  markers) and intern tables.  Two stores with identical events produce
  identical digests regardless of how they were constructed; any edit to
  any column or table changes the digest.
- :func:`combine_tokens` — canonical composition of named tokens into one
  key (sorted keys, JSON encoding, SHA-256), so key construction is
  order-insensitive and collision-resistant.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

import numpy as np

from repro.ras.store import EventStore

Token = Union[str, int, float, bool, None]


def store_fingerprint(events: EventStore) -> str:
    """Hex SHA-256 digest of a store's full content.

    Covers every column (with its dtype, so a re-typed column never
    collides) and every intern table (with separators, so table boundaries
    cannot alias).  Cost is one pass over the raw bytes — microseconds per
    megabyte, negligible next to a single Apriori run.
    """
    h = hashlib.sha256()
    columns = (
        ("times", events.times),
        ("severities", events.severities),
        ("facilities", events.facilities),
        ("jobs", events.jobs),
        ("location_ids", events.location_ids),
        ("entry_ids", events.entry_ids),
        ("subcat_ids", events.subcat_ids),
    )
    for name, col in columns:
        arr = np.ascontiguousarray(col)
        h.update(name.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(arr.tobytes())
        h.update(b"\x00")
    for table_name, table in (
        ("locations", events.location_table),
        ("entries", events.entry_table),
        ("subcats", events.subcat_table),
    ):
        h.update(table_name.encode("utf-8"))
        for s in table:
            h.update(s.encode("utf-8"))
            h.update(b"\x1f")
        h.update(b"\x00")
    return h.hexdigest()


def combine_tokens(**tokens: Token) -> str:
    """Hex SHA-256 digest of a named token set (canonical JSON, sorted keys)."""
    payload = json.dumps(tokens, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
