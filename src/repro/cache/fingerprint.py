"""Stable content fingerprints for cache keys.

A cache key must change whenever anything that influenced the artifact
changed, and *only* then.  Two ingredients:

- :func:`store_fingerprint` — a SHA-256 digest over an
  :class:`~repro.ras.store.EventStore`'s columns (raw bytes plus dtype
  markers) and intern tables.  Two stores with identical events produce
  identical digests regardless of how they were constructed; any edit to
  any column or table changes the digest.
- :func:`combine_tokens` — canonical composition of named tokens into one
  key (sorted keys, JSON encoding, SHA-256), so key construction is
  order-insensitive and collision-resistant.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

import numpy as np

from repro.ras.backend import COLUMN_NAMES, TABLE_NAMES
from repro.ras.store import EventStore

Token = Union[str, int, float, bool, None]


def store_fingerprint(events: EventStore) -> str:
    """Hex SHA-256 digest of a store's full content.

    Covers every column (with its dtype, so a re-typed column never
    collides) and every intern table (with separators, so table boundaries
    cannot alias).  Cost is one pass over the raw bytes — microseconds per
    megabyte, negligible next to a single Apriori run.

    The digest is backend-independent: columns are read through the
    schema-ordered accessors, so a memory-mapped columnar store and its
    in-memory twin hash to the same key and the artifact cache never forks
    on storage layout.
    """
    h = hashlib.sha256()
    for name in COLUMN_NAMES:
        arr = np.ascontiguousarray(events.column(name))
        h.update(name.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(arr.tobytes())
        h.update(b"\x00")
    for table_name in TABLE_NAMES:
        h.update(table_name.encode("utf-8"))
        for s in events.table(table_name).strings:
            h.update(s.encode("utf-8"))
            h.update(b"\x1f")
        h.update(b"\x00")
    return h.hexdigest()


def combine_tokens(**tokens: Token) -> str:
    """Hex SHA-256 digest of a named token set (canonical JSON, sorted keys)."""
    payload = json.dumps(tokens, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
