"""Content-addressed artifact caching for evaluation runs.

Public surface:

- :class:`ArtifactCache` — on-disk JSON store keyed by content hash,
  with atomic writes, corruption-as-miss semantics, and byte-budget
  pruning.
- :func:`store_fingerprint` — stable digest of an event store's content.
- :func:`combine_tokens` — canonical composition of named tokens.
- :func:`fold_fit_key` — the evaluation engine's cache key: one fitted
  artifact per (event-store content, training range, fit-relevant spec).
"""

from __future__ import annotations

from typing import Protocol

from repro.cache.artifacts import ArtifactCache
from repro.cache.fingerprint import Token, combine_tokens, store_fingerprint

#: Bumped when the cached learned-state payload layout changes, so stale
#: caches miss instead of deserializing garbage.
CACHE_VERSION = 1


class _FitHashable(Protocol):
    """Anything exposing a stable fit-relevant content hash.

    Structural, not nominal, so this package never imports the evaluation
    layer (:class:`repro.evaluation.spec.PredictorSpec` satisfies it).
    """

    def fit_token(self) -> str: ...


def fold_fit_key(fingerprint: str, start: int, end: int, spec: _FitHashable) -> str:
    """Cache key for a predictor fitted with fold ``[start, end)`` held out.

    Combines the event-store fingerprint, the held-out index range (the
    complement is the training set, so the range pins it exactly), the
    fit-relevant slice of the spec, and the payload version.  Parameters
    that only shape ``predict`` are excluded via ``spec.fit_token()``, so
    e.g. a rule set mined once serves every prediction-window sweep point.
    """
    return combine_tokens(
        store=fingerprint,
        holdout_start=start,
        holdout_end=end,
        spec=spec.fit_token(),
        version=CACHE_VERSION,
    )


__all__ = [
    "ArtifactCache",
    "CACHE_VERSION",
    "Token",
    "combine_tokens",
    "fold_fit_key",
    "store_fingerprint",
]
