"""The complete Phase-1 pipeline: categorize -> temporal -> spatial.

``PreprocessPipeline.run`` takes the raw record store and returns a
:class:`PreprocessResult` carrying the unique-event store plus the statistics
every report in the paper's §3.1 is built from.

An optional *event filter* hook runs after compression; the paper's future
work ("filtering out this ambiguity of failures and analyzing only those
failures which will impact user jobs", citing Oliner et al.) plugs in here —
see :func:`job_impacting_filter`.

Two execution strategies produce bit-identical results:

- **batch** — classify the whole store, then compress (the original path);
- **streaming** — run temporal compression chunk-by-chunk through
  :class:`~repro.preprocess.compression.IncrementalTemporalCompressor` on
  the *raw* store and classify only the survivors.  Valid because the
  classifier depends solely on each row's ENTRY_DATA string and the
  temporal keys never involve the subcategory column, so classification
  commutes with temporal compression.  This keeps the working set at one
  chunk + per-key state, which is what lets phase1 consume a columnar
  store far larger than RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.obs import get_registry
from repro.preprocess.compression import (
    DEFAULT_CHUNK_EVENTS,
    DEFAULT_THRESHOLD,
    CompressionStats,
    IncrementalTemporalCompressor,
    spatial_compress,
    temporal_compress,
)
from repro.ras.events import NO_JOB
from repro.ras.store import EventStore
from repro.taxonomy.classifier import TaxonomyClassifier

#: Signature of a post-compression event filter: returns a keep-mask.
EventFilter = Callable[[EventStore], np.ndarray]


@dataclass
class PreprocessResult:
    """Output of a full Phase-1 run."""

    events: EventStore
    raw_records: int
    temporal_stats: CompressionStats
    spatial_stats: CompressionStats
    filtered_out: int = 0

    @property
    def unique_events(self) -> int:
        return len(self.events)

    @property
    def overall_compression(self) -> float:
        """Fraction of raw records eliminated end to end."""
        if self.raw_records == 0:
            return 0.0
        return 1.0 - self.unique_events / self.raw_records


def job_impacting_filter(store: EventStore) -> np.ndarray:
    """Keep mask for events attributable to a user job.

    Implements the hook the paper leaves as future work: fatal events not
    associated with any job (JOB_ID absent) cannot abort a user job and may
    be excluded from prediction targets.  Non-fatal events always pass — they
    remain useful as precursors.
    """
    return (~store.fatal_mask()) | (store.jobs != NO_JOB)


class PreprocessPipeline:
    """Categorization + temporal compression + spatial compression."""

    def __init__(
        self,
        classifier: Optional[TaxonomyClassifier] = None,
        threshold: float = DEFAULT_THRESHOLD,
        temporal_key_mode: str = "job_location",
        event_filter: Optional[EventFilter] = None,
    ) -> None:
        self.classifier = classifier or TaxonomyClassifier()
        self.threshold = threshold
        self.temporal_key_mode = temporal_key_mode
        self.event_filter = event_filter

    def run(
        self, raw: EventStore, chunk_events: Optional[int] = None
    ) -> PreprocessResult:
        """Run all Phase-1 steps on a raw record store.

        ``chunk_events`` selects the execution strategy: ``None`` (default)
        streams automatically when ``raw`` sits on the columnar backend and
        runs batch otherwise; ``0`` forces batch; a positive count forces
        streaming with that chunk size.  Results are bit-identical either
        way.
        """
        if chunk_events is None:
            if raw.backend_kind == "columnar":
                return self.run_streaming(raw)
        elif chunk_events > 0:
            return self.run_streaming(raw, chunk_events=chunk_events)
        obs = get_registry()
        with obs.span("phase1.classify"):
            labeled = self.classifier.classify_store(raw)
        with obs.span("phase1.temporal"):
            after_temporal, t_stats = temporal_compress(
                labeled, self.threshold, key_mode=self.temporal_key_mode
            )
        return self._finish(len(raw), after_temporal, t_stats)

    def run_streaming(
        self, raw: EventStore, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> PreprocessResult:
        """Phase 1 with a working set of one chunk + per-key carried state.

        Temporal compression consumes ``raw`` chunk-by-chunk (zero-copy
        slices on the columnar backend); only the surviving representatives
        — orders of magnitude fewer rows — are materialized, classified,
        and spatially compressed.
        """
        obs = get_registry()
        with obs.span("phase1.temporal"):
            compressor = IncrementalTemporalCompressor(
                self.threshold, key_mode=self.temporal_key_mode
            )
            for chunk in raw.iter_chunks(chunk_events):
                compressor.push(chunk)
            rep_idx, t_stats = compressor.finish()
            survivors = raw.select(rep_idx)
        with obs.span("phase1.classify"):
            after_temporal = self.classifier.classify_store(survivors)
        return self._finish(len(raw), after_temporal, t_stats)

    def _finish(
        self,
        raw_records: int,
        after_temporal: EventStore,
        t_stats: CompressionStats,
    ) -> PreprocessResult:
        """Shared tail: spatial compression, filtering, stats, metrics."""
        obs = get_registry()
        with obs.span("phase1.spatial"):
            after_spatial, s_stats = spatial_compress(
                after_temporal, self.threshold
            )
        filtered_out = 0
        events = after_spatial
        if self.event_filter is not None:
            with obs.span("phase1.filter"):
                keep = self.event_filter(events)
                filtered_out = int(len(events) - np.count_nonzero(keep))
                events = events.select(keep)
        result = PreprocessResult(
            events=events,
            raw_records=raw_records,
            temporal_stats=t_stats,
            spatial_stats=s_stats,
            filtered_out=filtered_out,
        )
        obs.counter("preprocess.records_in", raw_records)
        obs.counter("preprocess.events_out", len(events))
        obs.counter(
            "preprocess.dropped",
            t_stats.input_records - t_stats.output_records,
            stage="temporal",
        )
        obs.counter(
            "preprocess.dropped",
            s_stats.input_records - s_stats.output_records,
            stage="spatial",
        )
        obs.counter("preprocess.filtered_out", filtered_out)
        obs.gauge("preprocess.compression_ratio", result.overall_compression)
        return result
