"""Compatibility helpers for the public Loghub/USENIX BG/L dump.

The production logs the paper uses were later published (Oliner & Stearley,
DSN'07; redistributed by the Loghub project as ``BGL.log``).  The dump's
line format is already handled by :mod:`repro.ras.logfile`'s LOGHUB dialect;
this module adds the dataset-specific knowledge:

- the dump's **alert category tags** (first token; ``-`` means non-alert)
  with their documented meanings and a mapping to our main categories, so a
  real log can be sanity-checked against the classifier;
- :func:`diagnose_store` — dataset statistics (tag histogram, severity mix,
  classification coverage) to run before feeding a real dump through the
  pipeline;
- :func:`synthesize_job_ids` — the public dump strips JOB_IDs, which both
  compression steps key on.  This reconstructs surrogate job ids by
  assigning each record to the machine-state epoch it falls into (epochs
  split at gaps with no events anywhere — a conservative stand-in
  documented by Liang et al.'s filtering study, which faced the same gap).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import OTHER_FALLBACK, TaxonomyClassifier

#: Alert category tags of the public BG/L dump with their documented
#: meaning and the main category they correspond to in our taxonomy.
ALERT_CATEGORIES: dict[str, tuple[str, MainCategory]] = {
    "KERNDTLB": ("data TLB error interrupt", MainCategory.KERNEL),
    "KERNSTOR": ("data storage interrupt", MainCategory.KERNEL),
    "KERNMNTF": ("lustre mount failure", MainCategory.IOSTREAM),
    "KERNTERM": ("rts abnormal termination", MainCategory.NETWORK),
    "KERNREC": ("error recovery", MainCategory.KERNEL),
    "KERNRTSP": ("rts panic", MainCategory.NETWORK),
    "KERNSOCK": ("socket closed", MainCategory.IOSTREAM),
    "KERNPOW": ("power problem", MainCategory.OTHER),
    "APPREAD": ("application read failure", MainCategory.APPLICATION),
    "APPSEV": ("application severe error", MainCategory.APPLICATION),
    "APPOUT": ("application output failure", MainCategory.APPLICATION),
    "APPBUSY": ("application busy resource", MainCategory.APPLICATION),
    "APPTO": ("application timeout", MainCategory.APPLICATION),
    "APPUNAV": ("application resource unavailable", MainCategory.APPLICATION),
    "MASABNL": ("bglmaster abnormal exit", MainCategory.OTHER),
    "MASNORM": ("bglmaster normal shutdown", MainCategory.OTHER),
    "MONNULL": ("monitor null value", MainCategory.OTHER),
    "MONPOW": ("monitor power issue", MainCategory.OTHER),
    "LINKDISC": ("link card discovery error", MainCategory.MIDPLANE),
    "LINKIAP": ("link card IAP failure", MainCategory.MIDPLANE),
    "LINKPAP": ("link card PAP failure", MainCategory.MIDPLANE),
    "LINKBLL": ("link card BLL failure", MainCategory.MIDPLANE),
}

#: Tag used by the dump for non-alert (informational) records.
NON_ALERT_TAG = "-"


def alert_main_category(tag: str) -> Optional[MainCategory]:
    """Main category of a dump alert tag (None for non-alert/unknown)."""
    entry = ALERT_CATEGORIES.get(tag.upper())
    return entry[1] if entry else None


def diagnose_store(
    store: EventStore, classifier: Optional[TaxonomyClassifier] = None
) -> dict:
    """Pre-flight statistics before running a real dump through Phase 1.

    Returns record/severity counts, the classifier's coverage (fraction of
    records whose ENTRY_DATA matched a known subcategory), and the job-id
    situation (the public dump has none).
    """
    classifier = classifier or TaxonomyClassifier()
    labeled = classifier.classify_store(store)
    counts = labeled.subcat_counts()
    classified = sum(v for k, v in counts.items() if k != OTHER_FALLBACK)
    n = len(store)
    return {
        "records": n,
        "span_days": store.span_seconds() / 86400.0 if n else 0.0,
        "severities": {
            sev.name: c for sev, c in store.severity_counts().items() if c
        },
        "classified_fraction": classified / n if n else 0.0,
        "distinct_messages": len(store.entry_table),
        "has_job_ids": bool(n) and bool(np.any(store.jobs >= 0)),
        "fatal_records": int(store.fatal_mask().sum()),
    }


def synthesize_job_ids(
    store: EventStore, idle_gap: float = 6 * 3600.0
) -> EventStore:
    """Reconstruct surrogate JOB_IDs for a dump that lacks them.

    Compression keys on JOB_ID; with none, records from different jobs can
    merge.  Heuristic: machine activity between two system-wide quiet gaps
    of at least ``idle_gap`` seconds belongs to one occupation epoch; every
    record in an epoch receives that epoch's surrogate id.  Coarser than
    true job ids (it can merge concurrent jobs) but conservative in the
    direction compression cares about: records far apart in time never share
    an id.
    """
    if idle_gap <= 0:
        raise ValueError("idle_gap must be > 0")
    n = len(store)
    if n == 0:
        return store
    gaps = np.diff(store.times)
    epoch_ids = np.zeros(n, dtype=np.int64)
    epoch_ids[1:] = np.cumsum(gaps >= idle_gap)
    return EventStore(
        store.times,
        store.severities,
        store.facilities,
        epoch_ids + 1,  # ids start at 1; NO_JOB (-1) stays meaningful
        store.location_ids,
        store.entry_ids,
        store.subcat_ids,
        store._locations,
        store._entries,
        store._subcats,
    )
