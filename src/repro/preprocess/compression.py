"""Temporal and spatial compression of RAS records (paper §3.1 steps 2-3).

Both compressions are instances of one operation: *group* records by a key,
*cluster* each group's records in time (a record joins the current cluster
when its gap to the previous record is at most the threshold), and keep one
*representative* per cluster.

- **Temporal compression** groups by (JOB_ID, LOCATION): duplicates produced
  by one polling agent re-reporting the same fault.
- **Spatial compression** groups by (JOB_ID, ENTRY_DATA): the same fault
  reported by many locations of the job's partition.

The paper uses a 300 s threshold for both, observing that larger thresholds
gain no further FAILURE compression while risking the merger of genuinely
distinct events.

The engine is fully vectorized: one ``lexsort`` over (key..., time), one pass
of boundary detection, and ``reduceat``-style reductions — no Python loop
over records, which matters on the 4-million-record full-scale log.

Representative choice: within a cluster the *earliest record of the highest
severity present* survives.  For clusters of true duplicates (identical
entries) this is simply the first report; for mixed clusters produced by the
paper-literal (JOB_ID, LOCATION) key it guarantees a FATAL record is never
shadowed by an INFO record that happened to arrive first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ras.store import EventStore
from repro.util.validation import check_positive

#: The paper's compression threshold, seconds.
DEFAULT_THRESHOLD: int = 300

#: Default rows per chunk for the incremental compressor.
DEFAULT_CHUNK_EVENTS: int = 262_144


@dataclass
class CompressionStats:
    """Bookkeeping for one compression pass."""

    input_records: int = 0
    output_records: int = 0
    clusters_merged: int = 0
    #: records removed per severity value (index = Severity int value).
    removed_by_severity: np.ndarray = field(
        default_factory=lambda: np.zeros(6, dtype=np.int64)
    )

    @property
    def removed(self) -> int:
        return self.input_records - self.output_records

    @property
    def compression_ratio(self) -> float:
        """Fraction of records removed (0.0 when the input was empty)."""
        if self.input_records == 0:
            return 0.0
        return self.removed / self.input_records


def _compress_by_keys(
    store: EventStore,
    keys: list[np.ndarray],
    threshold: float,
) -> tuple[EventStore, CompressionStats]:
    """Shared engine: cluster within key groups by time gap, keep one rep."""
    check_positive(threshold, "threshold")
    n = len(store)
    stats = CompressionStats(input_records=n)
    if n == 0:
        stats.output_records = 0
        return store, stats

    # lexsort: last key is primary; we want groups contiguous then time.
    order = np.lexsort([store.times, *keys])
    t = store.times[order]
    key_cols = [k[order] for k in keys]

    # New cluster starts where any key changes or the time gap exceeds the
    # threshold.
    new_cluster = np.ones(n, dtype=bool)
    if n > 1:
        same_key = np.ones(n - 1, dtype=bool)
        for k in key_cols:
            same_key &= k[1:] == k[:-1]
        small_gap = (t[1:] - t[:-1]) <= threshold
        new_cluster[1:] = ~(same_key & small_gap)
    cluster_id = np.cumsum(new_cluster) - 1
    n_clusters = int(cluster_id[-1]) + 1

    # Representative: earliest record of the cluster's max severity.
    sev = store.severities[order].astype(np.int64)
    starts = np.flatnonzero(new_cluster)
    max_sev = np.maximum.reduceat(sev, starts)
    is_max = sev == max_sev[cluster_id]
    # First max-severity row per cluster: rows are time-ordered within the
    # cluster, so take the first occurrence of each cluster id among max rows.
    max_rows = np.flatnonzero(is_max)
    _, first_idx = np.unique(cluster_id[max_rows], return_index=True)
    rep_sorted_pos = max_rows[first_idx]
    rep_original_idx = order[rep_sorted_pos]
    # Preserve global time order in the output.
    rep_original_idx.sort()

    kept_mask = np.zeros(n, dtype=bool)
    kept_mask[rep_original_idx] = True
    removed_sev = store.severities[~kept_mask]
    stats.removed_by_severity = np.bincount(
        removed_sev, minlength=6
    ).astype(np.int64)
    stats.output_records = n_clusters
    stats.clusters_merged = int(np.sum(np.diff(starts, append=n) > 1))
    return store.select(rep_original_idx), stats


def _temporal_keys(store: EventStore, key_mode: str) -> list[np.ndarray]:
    """The grouping key columns for a temporal-compression key mode."""
    if key_mode == "job_location":
        return [store.location_ids, store.jobs]
    if key_mode == "job_location_entry":
        return [store.entry_ids, store.location_ids, store.jobs]
    raise ValueError(f"unknown key_mode: {key_mode!r}")


def temporal_compress(
    store: EventStore,
    threshold: float = DEFAULT_THRESHOLD,
    key_mode: str = "job_location",
) -> tuple[EventStore, CompressionStats]:
    """Coalesce re-reports at a single location (paper step 2).

    Parameters
    ----------
    key_mode:
        ``"job_location"`` (paper-literal: identical JOB_ID and LOCATION) or
        ``"job_location_entry"`` (conservative variant that additionally
        requires identical ENTRY_DATA, so distinct event types at one
        location are never merged — used by the ablation bench).
    """
    return _compress_by_keys(store, _temporal_keys(store, key_mode), threshold)


@dataclass
class _OpenCluster:
    """An in-progress cluster that may continue into the next chunk."""

    last_time: int
    best_sev: int
    best_idx: int  # global row index of the current representative
    size: int


class IncrementalTemporalCompressor:
    """Chunk-at-a-time temporal compression, bit-identical to the batch pass.

    Feed contiguous, time-ordered chunks of one store via :meth:`push` (the
    chunks :meth:`EventStore.iter_chunks` yields), then call :meth:`finish`
    for the surviving global row indices and stats.  The only state carried
    across chunks is one :class:`_OpenCluster` per active (key) group —
    bounded by the number of distinct (JOB_ID, LOCATION) pairs, not by log
    length — so a 100M-event columnar store compresses within a fixed
    memory budget.

    Equivalence with :func:`temporal_compress` holds because chunks are
    contiguous slices of a globally time-sorted store: within a key group
    the global (time, row-index) order is exactly chunk order, so a cluster
    spanning a chunk boundary is reassembled by the gap test against the
    carried ``last_time``, and the representative (earliest record of the
    cluster's max severity) is the carried one unless the new fragment
    strictly raises the max.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        key_mode: str = "job_location",
    ) -> None:
        check_positive(threshold, "threshold")
        self.threshold = threshold
        self.key_mode = key_mode
        self._open: dict[tuple[int, ...], _OpenCluster] = {}
        self._done: list[_OpenCluster] = []
        self._rows = 0
        self._sev_in = np.zeros(6, dtype=np.int64)
        self._finished = False

    def push(self, chunk: EventStore) -> None:
        """Consume the next contiguous chunk (must follow the previous one)."""
        if self._finished:
            raise RuntimeError("compressor already finished")
        n = len(chunk)
        if n == 0:
            return
        keys = _temporal_keys(chunk, self.key_mode)
        order = np.lexsort([chunk.times, *keys])
        t = np.asarray(chunk.times)[order]
        key_cols = [np.asarray(k)[order] for k in keys]
        sev = np.asarray(chunk.severities)[order].astype(np.int64)

        new_cluster = np.ones(n, dtype=bool)
        if n > 1:
            same_key = np.ones(n - 1, dtype=bool)
            for k in key_cols:
                same_key &= k[1:] == k[:-1]
            small_gap = (t[1:] - t[:-1]) <= self.threshold
            new_cluster[1:] = ~(same_key & small_gap)
        starts = np.flatnonzero(new_cluster)
        ends = np.append(starts[1:], n)

        offset = self._rows
        for lo, hi in zip(starts, ends):
            lo = int(lo)
            hi = int(hi)
            key = tuple(int(k[lo]) for k in key_cols)
            first_t = int(t[lo])
            seg = sev[lo:hi]
            best = int(seg.max())
            # Earliest max-severity row; rows are (time, global idx)-ordered
            # within the cluster, same tie-break as the batch pass.
            rep = offset + int(order[lo + int(np.argmax(seg == best))])
            state = self._open.get(key)
            if state is not None and first_t - state.last_time <= self.threshold:
                if best > state.best_sev:
                    state.best_sev = best
                    state.best_idx = rep
                state.last_time = int(t[hi - 1])
                state.size += hi - lo
            else:
                if state is not None:
                    self._done.append(state)
                self._open[key] = _OpenCluster(
                    last_time=int(t[hi - 1]),
                    best_sev=best,
                    best_idx=rep,
                    size=hi - lo,
                )
        self._rows += n
        self._sev_in += np.bincount(
            np.asarray(chunk.severities), minlength=6
        ).astype(np.int64)[:6]

    def finish(self) -> tuple[np.ndarray, CompressionStats]:
        """Close all open clusters; returns (sorted global rep indices, stats)."""
        if not self._finished:
            self._done.extend(self._open.values())
            self._open.clear()
            self._finished = True
        stats = CompressionStats(input_records=self._rows)
        stats.output_records = len(self._done)
        stats.clusters_merged = sum(1 for c in self._done if c.size > 1)
        kept = np.zeros(6, dtype=np.int64)
        for c in self._done:
            kept[c.best_sev] += 1
        stats.removed_by_severity = self._sev_in - kept
        rep_idx = np.array(
            sorted(c.best_idx for c in self._done), dtype=np.int64
        )
        return rep_idx, stats


def temporal_compress_chunked(
    store: EventStore,
    threshold: float = DEFAULT_THRESHOLD,
    key_mode: str = "job_location",
    chunk_events: Optional[int] = DEFAULT_CHUNK_EVENTS,
) -> tuple[EventStore, CompressionStats]:
    """Temporal compression driven through the incremental engine.

    Result and stats are bit-identical to :func:`temporal_compress`; only
    the peak working set differs (one chunk plus per-key carried state
    instead of the whole store).
    """
    comp = IncrementalTemporalCompressor(threshold, key_mode=key_mode)
    chunk_rows = chunk_events or DEFAULT_CHUNK_EVENTS
    for chunk in store.iter_chunks(chunk_rows):
        comp.push(chunk)
    rep_idx, stats = comp.finish()
    return store.select(rep_idx), stats


def spatial_compress(
    store: EventStore,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[EventStore, CompressionStats]:
    """Drop cross-location duplicates (paper step 3).

    Records with the same ENTRY_DATA and JOB_ID within the threshold are the
    same fault reported by different locations of the partition; one
    representative survives.
    """
    keys = [store.entry_ids, store.jobs]
    return _compress_by_keys(store, keys, threshold)
