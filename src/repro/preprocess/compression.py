"""Temporal and spatial compression of RAS records (paper §3.1 steps 2-3).

Both compressions are instances of one operation: *group* records by a key,
*cluster* each group's records in time (a record joins the current cluster
when its gap to the previous record is at most the threshold), and keep one
*representative* per cluster.

- **Temporal compression** groups by (JOB_ID, LOCATION): duplicates produced
  by one polling agent re-reporting the same fault.
- **Spatial compression** groups by (JOB_ID, ENTRY_DATA): the same fault
  reported by many locations of the job's partition.

The paper uses a 300 s threshold for both, observing that larger thresholds
gain no further FAILURE compression while risking the merger of genuinely
distinct events.

The engine is fully vectorized: one ``lexsort`` over (key..., time), one pass
of boundary detection, and ``reduceat``-style reductions — no Python loop
over records, which matters on the 4-million-record full-scale log.

Representative choice: within a cluster the *earliest record of the highest
severity present* survives.  For clusters of true duplicates (identical
entries) this is simply the first report; for mixed clusters produced by the
paper-literal (JOB_ID, LOCATION) key it guarantees a FATAL record is never
shadowed by an INFO record that happened to arrive first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ras.store import EventStore
from repro.util.validation import check_positive

#: The paper's compression threshold, seconds.
DEFAULT_THRESHOLD: int = 300


@dataclass
class CompressionStats:
    """Bookkeeping for one compression pass."""

    input_records: int = 0
    output_records: int = 0
    clusters_merged: int = 0
    #: records removed per severity value (index = Severity int value).
    removed_by_severity: np.ndarray = field(
        default_factory=lambda: np.zeros(6, dtype=np.int64)
    )

    @property
    def removed(self) -> int:
        return self.input_records - self.output_records

    @property
    def compression_ratio(self) -> float:
        """Fraction of records removed (0.0 when the input was empty)."""
        if self.input_records == 0:
            return 0.0
        return self.removed / self.input_records


def _compress_by_keys(
    store: EventStore,
    keys: list[np.ndarray],
    threshold: float,
) -> tuple[EventStore, CompressionStats]:
    """Shared engine: cluster within key groups by time gap, keep one rep."""
    check_positive(threshold, "threshold")
    n = len(store)
    stats = CompressionStats(input_records=n)
    if n == 0:
        stats.output_records = 0
        return store, stats

    # lexsort: last key is primary; we want groups contiguous then time.
    order = np.lexsort([store.times, *keys])
    t = store.times[order]
    key_cols = [k[order] for k in keys]

    # New cluster starts where any key changes or the time gap exceeds the
    # threshold.
    new_cluster = np.ones(n, dtype=bool)
    if n > 1:
        same_key = np.ones(n - 1, dtype=bool)
        for k in key_cols:
            same_key &= k[1:] == k[:-1]
        small_gap = (t[1:] - t[:-1]) <= threshold
        new_cluster[1:] = ~(same_key & small_gap)
    cluster_id = np.cumsum(new_cluster) - 1
    n_clusters = int(cluster_id[-1]) + 1

    # Representative: earliest record of the cluster's max severity.
    sev = store.severities[order].astype(np.int64)
    starts = np.flatnonzero(new_cluster)
    max_sev = np.maximum.reduceat(sev, starts)
    is_max = sev == max_sev[cluster_id]
    # First max-severity row per cluster: rows are time-ordered within the
    # cluster, so take the first occurrence of each cluster id among max rows.
    max_rows = np.flatnonzero(is_max)
    _, first_idx = np.unique(cluster_id[max_rows], return_index=True)
    rep_sorted_pos = max_rows[first_idx]
    rep_original_idx = order[rep_sorted_pos]
    # Preserve global time order in the output.
    rep_original_idx.sort()

    kept_mask = np.zeros(n, dtype=bool)
    kept_mask[rep_original_idx] = True
    removed_sev = store.severities[~kept_mask]
    stats.removed_by_severity = np.bincount(
        removed_sev, minlength=6
    ).astype(np.int64)
    stats.output_records = n_clusters
    stats.clusters_merged = int(np.sum(np.diff(starts, append=n) > 1))
    return store.select(rep_original_idx), stats


def temporal_compress(
    store: EventStore,
    threshold: float = DEFAULT_THRESHOLD,
    key_mode: str = "job_location",
) -> tuple[EventStore, CompressionStats]:
    """Coalesce re-reports at a single location (paper step 2).

    Parameters
    ----------
    key_mode:
        ``"job_location"`` (paper-literal: identical JOB_ID and LOCATION) or
        ``"job_location_entry"`` (conservative variant that additionally
        requires identical ENTRY_DATA, so distinct event types at one
        location are never merged — used by the ablation bench).
    """
    if key_mode == "job_location":
        keys = [store.location_ids, store.jobs]
    elif key_mode == "job_location_entry":
        keys = [store.entry_ids, store.location_ids, store.jobs]
    else:
        raise ValueError(f"unknown key_mode: {key_mode!r}")
    return _compress_by_keys(store, keys, threshold)


def spatial_compress(
    store: EventStore,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[EventStore, CompressionStats]:
    """Drop cross-location duplicates (paper step 3).

    Records with the same ENTRY_DATA and JOB_ID within the threshold are the
    same fault reported by different locations of the partition; one
    representative survives.
    """
    keys = [store.entry_ids, store.jobs]
    return _compress_by_keys(store, keys, threshold)
