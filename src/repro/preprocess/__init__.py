"""Phase 1 — event preprocessing (paper §3.1).

Three steps turn the raw, massively redundant RAS repository into the unique
event stream the predictors learn from:

1. **categorization** — :class:`repro.taxonomy.TaxonomyClassifier`;
2. **temporal compression** at a single location
   (:func:`repro.preprocess.compression.temporal_compress`);
3. **spatial compression** across locations
   (:func:`repro.preprocess.compression.spatial_compress`).

:class:`repro.preprocess.pipeline.PreprocessPipeline` runs all three and
collects statistics; :mod:`repro.preprocess.summary` renders the paper's
Table 1 and Table 4.
"""

from repro.preprocess.compression import (
    DEFAULT_THRESHOLD,
    CompressionStats,
    spatial_compress,
    temporal_compress,
)
from repro.preprocess.pipeline import PreprocessPipeline, PreprocessResult
from repro.preprocess.summary import (
    category_fatal_counts,
    log_summary,
    severity_breakdown,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "CompressionStats",
    "temporal_compress",
    "spatial_compress",
    "PreprocessPipeline",
    "PreprocessResult",
    "category_fatal_counts",
    "log_summary",
    "severity_breakdown",
]
