"""Summary tables over raw and preprocessed logs (paper Tables 1 and 4).

These functions return plain dictionaries/lists so benchmarks and the CLI can
render them as text tables; nothing here depends on a plotting stack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ras.store import EventStore
from repro.taxonomy.categories import CATEGORY_ORDER, MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import format_epoch


def log_summary(store: EventStore, name: str = "") -> dict:
    """Paper Table-1 style summary of one log."""
    out = {
        "name": name,
        "records": len(store),
        "start": format_epoch(store.times[0]) if len(store) else "-",
        "end": format_epoch(store.times[-1]) if len(store) else "-",
        "span_days": store.span_seconds() / 86400.0 if len(store) else 0.0,
        "approx_size_mb": _approx_text_size_mb(store),
    }
    return out


def _approx_text_size_mb(store: EventStore) -> float:
    """Approximate on-disk text size of the log (sampled line length)."""
    if len(store) == 0:
        return 0.0
    # Average over the interned entry strings weighted by usage, plus the
    # fixed-ish prefix (epoch, date, location, timestamp, job, type,
    # facility, severity ~ 85 chars).
    counts = np.bincount(store.entry_ids, minlength=len(store.entry_table))
    lengths = np.array([len(e) for e in store.entry_table], dtype=np.int64)
    total_chars = int((counts * (lengths + 86)).sum())
    return total_chars / 1e6


def category_fatal_counts(
    events: EventStore, classifier: Optional[TaxonomyClassifier] = None
) -> dict[MainCategory, int]:
    """Paper Table-4 row: compressed *fatal* events per main category."""
    classifier = classifier or TaxonomyClassifier()
    fatal = events.fatal_events()
    counts: dict[MainCategory, int] = {cat: 0 for cat in CATEGORY_ORDER}
    if len(fatal) == 0:
        return counts
    cat_ids = classifier.main_category_ids(fatal)
    cats = list(MainCategory)
    binned = np.bincount(cat_ids, minlength=len(cats))
    for i, cat in enumerate(cats):
        counts[cat] = int(binned[i])
    return counts


def severity_breakdown(store: EventStore) -> dict[str, int]:
    """Record count per severity name (diagnostic summaries)."""
    return {sev.name: n for sev, n in store.severity_counts().items()}


def format_table4(
    counts_by_log: dict[str, dict[MainCategory, int]]
) -> str:
    """Render per-log category counts in the paper's Table-4 layout."""
    logs = list(counts_by_log)
    header = f"{'Main Category':<14}" + "".join(f"{name:>10}" for name in logs)
    lines = [header, "-" * len(header)]
    for cat in CATEGORY_ORDER:
        row = f"{cat.value.capitalize():<14}" + "".join(
            f"{counts_by_log[log][cat]:>10}" for log in logs
        )
        lines.append(row)
    totals = [sum(counts_by_log[log].values()) for log in logs]
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':<14}" + "".join(f"{t:>10}" for t in totals))
    return "\n".join(lines)
