"""Blue Gene/L location-code grammar.

Every RAS record carries a LOCATION naming the hardware element that reported
it.  We use a regular grammar modeled on the production codes::

    R<rr>                rack                      R00
    R<rr>-M<m>           midplane (0 or 1)         R00-M1
    R<rr>-M<m>-N<nn>     node card (00..)          R00-M1-N07
    R<rr>-M<m>-N<nn>-C<cc>   compute chip (00..)   R00-M1-N07-C21
    R<rr>-M<m>-N<nn>-I<i>    I/O node              R00-M1-N07-I02
    R<rr>-M<m>-L<l>      link card                 R00-M1-L2
    R<rr>-M<m>-S         service card              R00-M1-S
    SYSTEM               machine-wide (service node / CMCS itself)

The grammar round-trips (``format_location(*parse_location(s)) == s``) and is
exercised heavily by property tests.
"""

from __future__ import annotations

import enum
import re
from typing import Optional


class LocationKind(enum.Enum):
    """Hardware level a location code refers to."""

    SYSTEM = "system"
    RACK = "rack"
    MIDPLANE = "midplane"
    NODECARD = "nodecard"
    COMPUTE_CHIP = "compute_chip"
    IO_NODE = "io_node"
    LINKCARD = "linkcard"
    SERVICE_CARD = "service_card"


#: Location for machine-wide events (BGLMASTER, CMCS control, ...).
SYSTEM_LOCATION: str = "SYSTEM"

_LOCATION_RE = re.compile(
    r"^R(?P<rack>\d{2})"
    r"(?:-M(?P<midplane>[01])"
    r"(?:"
    r"-N(?P<nodecard>\d{2})(?:-C(?P<chip>\d{2})|-I(?P<ionode>\d{2}))?"
    r"|-L(?P<linkcard>\d)"
    r"|-(?P<servicecard>S)"
    r")?"
    r")?$"
)


class LocationError(ValueError):
    """Raised for syntactically invalid location codes."""


def parse_location(code: str) -> dict:
    """Parse a location code into its components.

    Returns a dict with ``kind`` (:class:`LocationKind`) and integer
    components ``rack``, ``midplane``, ``nodecard``, ``chip``, ``ionode``,
    ``linkcard`` (absent levels are ``None``).
    """
    if code == SYSTEM_LOCATION:
        return {
            "kind": LocationKind.SYSTEM,
            "rack": None,
            "midplane": None,
            "nodecard": None,
            "chip": None,
            "ionode": None,
            "linkcard": None,
        }
    m = _LOCATION_RE.match(code)
    if m is None:
        raise LocationError(f"invalid location code: {code!r}")
    g = m.groupdict()
    out = {
        "rack": int(g["rack"]),
        "midplane": int(g["midplane"]) if g["midplane"] is not None else None,
        "nodecard": int(g["nodecard"]) if g["nodecard"] is not None else None,
        "chip": int(g["chip"]) if g["chip"] is not None else None,
        "ionode": int(g["ionode"]) if g["ionode"] is not None else None,
        "linkcard": int(g["linkcard"]) if g["linkcard"] is not None else None,
    }
    if out["chip"] is not None:
        kind = LocationKind.COMPUTE_CHIP
    elif out["ionode"] is not None:
        kind = LocationKind.IO_NODE
    elif out["nodecard"] is not None:
        kind = LocationKind.NODECARD
    elif out["linkcard"] is not None:
        kind = LocationKind.LINKCARD
    elif g["servicecard"] is not None:
        kind = LocationKind.SERVICE_CARD
    elif out["midplane"] is not None:
        kind = LocationKind.MIDPLANE
    else:
        kind = LocationKind.RACK
    out["kind"] = kind
    return out


def format_location(
    kind: LocationKind,
    rack: Optional[int] = None,
    midplane: Optional[int] = None,
    nodecard: Optional[int] = None,
    chip: Optional[int] = None,
    ionode: Optional[int] = None,
    linkcard: Optional[int] = None,
) -> str:
    """Render a location code for the given hardware level.

    Only the components required for ``kind`` are consulted; missing required
    components raise :class:`LocationError`.
    """

    def need(value: Optional[int], name: str) -> int:
        if value is None:
            raise LocationError(f"{name} required for kind {kind.value}")
        return value

    if kind is LocationKind.SYSTEM:
        return SYSTEM_LOCATION
    r = need(rack, "rack")
    if kind is LocationKind.RACK:
        return f"R{r:02d}"
    m = need(midplane, "midplane")
    if m not in (0, 1):
        raise LocationError(f"midplane must be 0 or 1, got {m}")
    if kind is LocationKind.MIDPLANE:
        return f"R{r:02d}-M{m}"
    if kind is LocationKind.LINKCARD:
        return f"R{r:02d}-M{m}-L{need(linkcard, 'linkcard')}"
    if kind is LocationKind.SERVICE_CARD:
        return f"R{r:02d}-M{m}-S"
    n = need(nodecard, "nodecard")
    if kind is LocationKind.NODECARD:
        return f"R{r:02d}-M{m}-N{n:02d}"
    if kind is LocationKind.COMPUTE_CHIP:
        return f"R{r:02d}-M{m}-N{n:02d}-C{need(chip, 'chip'):02d}"
    if kind is LocationKind.IO_NODE:
        return f"R{r:02d}-M{m}-N{n:02d}-I{need(ionode, 'ionode'):02d}"
    raise LocationError(f"unhandled kind: {kind!r}")  # pragma: no cover


def location_kind(code: str) -> LocationKind:
    """The hardware level of a location code."""
    return parse_location(code)["kind"]


def parent_location(code: str) -> Optional[str]:
    """The enclosing hardware element's code (``None`` at SYSTEM/rack level).

    chip/I-O node → node card → midplane → rack; link/service card → midplane.
    """
    p = parse_location(code)
    kind = p["kind"]
    if kind in (LocationKind.SYSTEM,):
        return None
    if kind is LocationKind.RACK:
        return None
    if kind is LocationKind.MIDPLANE:
        return format_location(LocationKind.RACK, rack=p["rack"])
    if kind in (LocationKind.NODECARD, LocationKind.LINKCARD, LocationKind.SERVICE_CARD):
        return format_location(
            LocationKind.MIDPLANE, rack=p["rack"], midplane=p["midplane"]
        )
    # compute chip or I/O node
    return format_location(
        LocationKind.NODECARD,
        rack=p["rack"],
        midplane=p["midplane"],
        nodecard=p["nodecard"],
    )
