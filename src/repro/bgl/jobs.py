"""Job workload model and the time x location -> job lookup.

RAS records carry the JOB_ID of the job that detected the event, and both
compression steps key on it.  The workload model here fills the machine with
jobs the way the production schedulers at ANL/SDSC did: partitions are whole
midplanes (the BG/L allocation unit), arrivals form a Poisson process, and
durations are log-normal (heavy-tailed, as observed on production systems).

:class:`JobTrace` answers the two queries the CMCS simulator needs:

- ``job_at(midplane_index, time)`` — which job (if any) occupied a midplane
  at a given instant;
- ``partition_nodecards(job)`` — the node cards a job spans, from which
  co-reporting chips are drawn.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bgl.topology import Machine
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive

#: Job id used for "no job running".
IDLE: int = -1


@dataclass(frozen=True)
class Job:
    """One scheduled job occupying a set of midplanes for [start, end)."""

    job_id: int
    start: int
    end: int
    midplane_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"job {self.job_id}: end must be > start")
        if not self.midplane_indices:
            raise ValueError(f"job {self.job_id}: empty partition")

    @property
    def duration(self) -> int:
        return self.end - self.start


class JobTrace:
    """Queryable schedule of jobs over the machine's midplanes."""

    def __init__(self, machine: Machine, jobs: Sequence[Job]) -> None:
        self.machine = machine
        self.jobs = sorted(jobs, key=lambda j: j.start)
        self._by_id = {j.job_id: j for j in self.jobs}
        if len(self._by_id) != len(self.jobs):
            raise ValueError("duplicate job ids in trace")
        n_mid = len(machine.midplane_locations)
        # Per-midplane sorted interval lists for binary-search lookup.
        self._starts: list[list[int]] = [[] for _ in range(n_mid)]
        self._ends: list[list[int]] = [[] for _ in range(n_mid)]
        self._ids: list[list[int]] = [[] for _ in range(n_mid)]
        for job in self.jobs:
            for m in job.midplane_indices:
                if not 0 <= m < n_mid:
                    raise ValueError(f"job {job.job_id}: bad midplane index {m}")
                if self._starts[m] and job.start < self._ends[m][-1]:
                    raise ValueError(
                        f"job {job.job_id} overlaps a previous job on midplane {m}"
                    )
                self._starts[m].append(job.start)
                self._ends[m].append(job.end)
                self._ids[m].append(job.job_id)

    def __len__(self) -> int:
        return len(self.jobs)

    def job(self, job_id: int) -> Job:
        """The job with the given id."""
        return self._by_id[job_id]

    def job_at(self, midplane_index: int, time: float) -> int:
        """Job id occupying a midplane at ``time``, or :data:`IDLE`."""
        starts = self._starts[midplane_index]
        i = bisect.bisect_right(starts, time) - 1
        if i >= 0 and time < self._ends[midplane_index][i]:
            return self._ids[midplane_index][i]
        return IDLE

    def any_job_at(self, time: float) -> int:
        """Id of some job running at ``time`` (lowest midplane), or IDLE."""
        for m in range(len(self._starts)):
            jid = self.job_at(m, time)
            if jid != IDLE:
                return jid
        return IDLE

    def partition_nodecards(self, job_id: int) -> list[str]:
        """Node-card locations spanned by a job's partition."""
        job = self._by_id[job_id]
        cards: list[str] = []
        for m in job.midplane_indices:
            mloc = self.machine.midplane_locations[m]
            cards.extend(self.machine.nodecards_of_midplane(mloc))
        return cards

    def partition_chips(self, job_id: int) -> list[str]:
        """Compute-chip locations spanned by a job's partition."""
        chips: list[str] = []
        for card in self.partition_nodecards(job_id):
            chips.extend(self.machine.chips_of_nodecard(card))
        return chips

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of midplane-seconds occupied in [t0, t1)."""
        if t1 <= t0:
            raise ValueError("t1 must be > t0")
        total = (t1 - t0) * len(self._starts)
        busy = 0.0
        for job in self.jobs:
            overlap = min(job.end, t1) - max(job.start, t0)
            if overlap > 0:
                busy += overlap * len(job.midplane_indices)
        return busy / total


class JobWorkloadModel:
    """Generates a :class:`JobTrace` filling the machine with jobs.

    Parameters
    ----------
    mean_interarrival:
        Mean seconds between job submissions (Poisson arrivals).
    mean_duration / sigma_duration:
        Log-normal duration parameters (mean of the underlying normal is
        derived from ``mean_duration``; ``sigma_duration`` is the log-space
        standard deviation, ~1.0 gives the heavy tail seen in production).
    p_full_machine:
        Probability a job requests every midplane rather than a single one.
    """

    def __init__(
        self,
        machine: Machine,
        mean_interarrival: float = 1800.0,
        mean_duration: float = 4 * 3600.0,
        sigma_duration: float = 1.0,
        p_full_machine: float = 0.3,
        min_duration: float = 120.0,
    ) -> None:
        self.machine = machine
        self.mean_interarrival = check_positive(mean_interarrival, "mean_interarrival")
        self.mean_duration = check_positive(mean_duration, "mean_duration")
        self.sigma_duration = check_positive(sigma_duration, "sigma_duration")
        if not 0.0 <= p_full_machine <= 1.0:
            raise ValueError("p_full_machine must be in [0, 1]")
        self.p_full_machine = p_full_machine
        self.min_duration = check_positive(min_duration, "min_duration")

    def generate(self, t0: int, t1: int, seed: SeedLike = None) -> JobTrace:
        """Simulate submissions in [t0, t1); jobs that don't fit are dropped.

        A dropped job models a submission that waited in the queue past the
        end of the simulated horizon — the trace only needs *running* jobs.
        """
        if t1 <= t0:
            raise ValueError("t1 must be > t0")
        rng = as_generator(seed)
        n_mid = len(self.machine.midplane_locations)
        free_at = np.full(n_mid, float(t0))  # next instant each midplane is free
        jobs: list[Job] = []
        # Log-normal with E[X] = mean_duration: mu = ln(mean) - sigma^2/2.
        mu = np.log(self.mean_duration) - self.sigma_duration**2 / 2.0
        t = float(t0)
        job_id = 1
        while True:
            t += rng.exponential(self.mean_interarrival)
            if t >= t1:
                break
            want_full = n_mid > 1 and rng.random() < self.p_full_machine
            duration = max(
                self.min_duration, float(rng.lognormal(mu, self.sigma_duration))
            )
            if want_full:
                start = max(t, float(free_at.max()))
                midplanes = tuple(range(n_mid))
            else:
                m = int(np.argmin(free_at))
                start = max(t, float(free_at[m]))
                midplanes = (m,)
            end = start + duration
            if end > t1:
                continue  # would run past the horizon; treat as still queued
            for m in midplanes:
                free_at[m] = end
            jobs.append(
                Job(
                    job_id=job_id,
                    start=int(start),
                    end=int(end),
                    midplane_indices=midplanes,
                )
            )
            job_id += 1
        return JobTrace(self.machine, jobs)
