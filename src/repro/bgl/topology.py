"""Hardware tree of a Blue Gene/L machine.

A :class:`Machine` enumerates every hardware element of a configurable
system.  The defaults model the two single-rack systems of the paper:

- **ANL**: 1 rack = 2 midplanes x 16 node cards x 32 compute chips
  (1024 compute nodes / 2048 processors) with 32 I/O nodes (1 per node card).
- **SDSC**: same compute complement but I/O-rich — 128 I/O nodes
  (4 per node card).

The topology is consumed by the job allocator (partitions are sets of node
cards) and by the CMCS simulator (which chips co-report a job fault, which
link card serves a midplane, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.bgl.locations import LocationKind, format_location


@dataclass(frozen=True)
class MachineSpec:
    """Dimensions of a Blue Gene/L installation."""

    racks: int = 1
    midplanes_per_rack: int = 2
    nodecards_per_midplane: int = 16
    chips_per_nodecard: int = 32
    io_nodes_per_nodecard: int = 1
    linkcards_per_midplane: int = 4

    def __post_init__(self) -> None:
        for name in (
            "racks",
            "midplanes_per_rack",
            "nodecards_per_midplane",
            "chips_per_nodecard",
            "linkcards_per_midplane",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not 1 <= self.midplanes_per_rack <= 2:
            raise ValueError("midplanes_per_rack must be 1 or 2 (BG/L rack)")
        if self.io_nodes_per_nodecard < 0:
            raise ValueError("io_nodes_per_nodecard must be >= 0")

    @property
    def compute_nodes(self) -> int:
        """Total compute chips in the machine."""
        return (
            self.racks
            * self.midplanes_per_rack
            * self.nodecards_per_midplane
            * self.chips_per_nodecard
        )

    @property
    def io_nodes(self) -> int:
        """Total I/O nodes in the machine."""
        return (
            self.racks
            * self.midplanes_per_rack
            * self.nodecards_per_midplane
            * self.io_nodes_per_nodecard
        )

    @property
    def nodecards(self) -> int:
        """Total node cards in the machine."""
        return self.racks * self.midplanes_per_rack * self.nodecards_per_midplane


#: Spec of the ANL system (1024 compute nodes, 32 I/O nodes).
ANL_SPEC = MachineSpec(io_nodes_per_nodecard=1)

#: Spec of the SDSC system (1024 compute nodes, 128 I/O nodes — I/O rich).
SDSC_SPEC = MachineSpec(io_nodes_per_nodecard=4)


class Machine:
    """Enumerates the hardware elements of a machine and their locations.

    All location lists are materialized once (``cached_property``) — they are
    small (thousands of strings) and reused constantly by the generator.
    """

    def __init__(self, spec: MachineSpec = ANL_SPEC) -> None:
        self.spec = spec

    # -- enumeration ---------------------------------------------------- #

    @cached_property
    def midplane_locations(self) -> list[str]:
        """All midplane codes, rack-major order."""
        return [
            format_location(LocationKind.MIDPLANE, rack=r, midplane=m)
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
        ]

    @cached_property
    def nodecard_locations(self) -> list[str]:
        """All node-card codes, midplane-major order."""
        return [
            format_location(LocationKind.NODECARD, rack=r, midplane=m, nodecard=n)
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
            for n in range(self.spec.nodecards_per_midplane)
        ]

    @cached_property
    def chip_locations(self) -> list[str]:
        """All compute-chip codes, node-card-major order."""
        return [
            format_location(
                LocationKind.COMPUTE_CHIP, rack=r, midplane=m, nodecard=n, chip=c
            )
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
            for n in range(self.spec.nodecards_per_midplane)
            for c in range(self.spec.chips_per_nodecard)
        ]

    @cached_property
    def io_node_locations(self) -> list[str]:
        """All I/O-node codes."""
        return [
            format_location(
                LocationKind.IO_NODE, rack=r, midplane=m, nodecard=n, ionode=i
            )
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
            for n in range(self.spec.nodecards_per_midplane)
            for i in range(self.spec.io_nodes_per_nodecard)
        ]

    @cached_property
    def linkcard_locations(self) -> list[str]:
        """All link-card codes."""
        return [
            format_location(LocationKind.LINKCARD, rack=r, midplane=m, linkcard=l)
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
            for l in range(self.spec.linkcards_per_midplane)
        ]

    @cached_property
    def service_card_locations(self) -> list[str]:
        """All service-card codes (one per midplane)."""
        return [
            format_location(LocationKind.SERVICE_CARD, rack=r, midplane=m)
            for r in range(self.spec.racks)
            for m in range(self.spec.midplanes_per_rack)
        ]

    # -- navigation ----------------------------------------------------- #

    def chips_of_nodecard(self, nodecard_loc: str) -> list[str]:
        """Compute-chip codes under one node card."""
        return [
            f"{nodecard_loc}-C{c:02d}" for c in range(self.spec.chips_per_nodecard)
        ]

    def io_nodes_of_nodecard(self, nodecard_loc: str) -> list[str]:
        """I/O-node codes under one node card."""
        return [
            f"{nodecard_loc}-I{i:02d}" for i in range(self.spec.io_nodes_per_nodecard)
        ]

    def nodecards_of_midplane(self, midplane_loc: str) -> list[str]:
        """Node-card codes under one midplane."""
        return [
            f"{midplane_loc}-N{n:02d}" for n in range(self.spec.nodecards_per_midplane)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(compute={self.spec.compute_nodes}, "
            f"io={self.spec.io_nodes}, nodecards={self.spec.nodecards})"
        )
