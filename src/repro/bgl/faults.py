"""Temporal point-process primitives for fault injection.

The synthetic log generator needs three kinds of ground-truth processes, each
matching a phenomenon the paper's predictors exploit:

- :func:`poisson_times` — memoryless background arrivals (isolated faults and
  informational noise).
- :func:`burst_process` — a self-exciting cluster process: each event spawns
  a follow-up within a bounded lag with some probability.  This produces the
  temporal correlation among fatal events that the *statistical* predictor
  learns (paper Figure 2: "a significant number of failures happen in close
  proximity", dominated by network and I/O-stream failures).
- :func:`chain_instances` — occurrences of a causal precursor chain: a body
  of non-fatal events followed (with the chain's confidence) by a fatal head.
  This is exactly the structure the *rule-based* predictor mines.

All functions are deterministic given a Generator and return NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.validation import check_fraction, check_positive


def poisson_times(
    rng: np.random.Generator, rate: float, t0: float, t1: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [t0, t1).

    ``rate`` is events per second.  Implemented by drawing the count from a
    Poisson distribution and placing points uniformly — equivalent in law to
    summing exponential gaps, but fully vectorized.
    """
    if t1 < t0:
        raise ValueError("t1 must be >= t0")
    if rate < 0:
        raise ValueError("rate must be >= 0")
    span = t1 - t0
    n = rng.poisson(rate * span)
    times = t0 + rng.random(n) * span
    times.sort()
    return times


def thin_times(
    rng: np.random.Generator, times: np.ndarray, keep_prob: float
) -> np.ndarray:
    """Independently keep each time with probability ``keep_prob``."""
    check_fraction(keep_prob, "keep_prob")
    times = np.asarray(times, dtype=np.float64)
    mask = rng.random(times.size) < keep_prob
    return times[mask]


def burst_process(
    rng: np.random.Generator,
    t0: float,
    t1: float,
    seed_rate: float,
    p_follow: float,
    follow_lo: float,
    follow_hi: float,
    max_generation: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Self-exciting cluster process (a bounded-lag Hawkes variant).

    Seeds arrive Poisson(``seed_rate``); every event (seed or follower)
    independently spawns one follow-up with probability ``p_follow`` at a lag
    uniform in [``follow_lo``, ``follow_hi``).  Generations are capped at
    ``max_generation`` so a draw of ``p_follow`` close to 1 cannot run away.

    Returns ``(times, generation)`` sorted by time; ``generation`` is 0 for
    seeds, k for k-th generation followers.  The conditional probability
    P(another event within [follow_lo, follow_hi) | event) ~= ``p_follow``,
    which is the statistic the statistical predictor estimates.
    """
    check_fraction(p_follow, "p_follow")
    if follow_hi <= follow_lo:
        raise ValueError("follow_hi must be > follow_lo")
    if follow_lo < 0:
        raise ValueError("follow_lo must be >= 0")
    seeds = poisson_times(rng, seed_rate, t0, t1)
    all_times = [seeds]
    all_gen = [np.zeros(seeds.size, dtype=np.int32)]
    current = seeds
    gen = 0
    while current.size and gen < max_generation:
        gen += 1
        spawned_mask = rng.random(current.size) < p_follow
        parents = current[spawned_mask]
        lags = follow_lo + rng.random(parents.size) * (follow_hi - follow_lo)
        children = parents + lags
        children = children[children < t1]
        if children.size == 0:
            break
        all_times.append(children)
        all_gen.append(np.full(children.size, gen, dtype=np.int32))
        current = children
    times = np.concatenate(all_times)
    gens = np.concatenate(all_gen)
    order = np.argsort(times, kind="stable")
    return times[order], gens[order]


@dataclass(frozen=True)
class ChainInstance:
    """One occurrence of a causal chain.

    ``body_times[i]`` is the time of the i-th body (precursor) event;
    ``head_time`` is the time of the fatal head, or ``None`` when this
    occurrence did not escalate to a failure (which happens with probability
    ``1 - confidence`` and is what bounds the mined rule's confidence and the
    predictor's precision).
    """

    body_times: tuple[float, ...]
    head_time: Optional[float]


def chain_instances(
    rng: np.random.Generator,
    rate: float,
    t0: float,
    t1: float,
    body_len: int,
    confidence: float,
    body_span: float,
    head_lag_lo: float,
    head_lag_hi: float,
) -> list[ChainInstance]:
    """Sample occurrences of a precursor chain on [t0, t1).

    Each occurrence anchors at a Poisson(``rate``) time; its ``body_len``
    precursor events are spread uniformly over the preceding ``body_span``
    seconds (sorted); with probability ``confidence`` a head (fatal) event
    follows the *last* body event at a lag uniform in
    [``head_lag_lo``, ``head_lag_hi``).
    """
    check_positive(body_len, "body_len")
    check_fraction(confidence, "confidence")
    check_positive(body_span, "body_span")
    if head_lag_hi <= head_lag_lo:
        raise ValueError("head_lag_hi must be > head_lag_lo")
    if head_lag_lo < 0:
        raise ValueError("head_lag_lo must be >= 0")
    anchors = poisson_times(rng, rate, t0, t1)
    out: list[ChainInstance] = []
    for a in anchors:
        offsets = np.sort(rng.random(body_len)) * body_span
        body = tuple(float(a + off) for off in offsets)
        last = body[-1]
        if rng.random() < confidence:
            head = last + head_lag_lo + rng.random() * (head_lag_hi - head_lag_lo)
            if head >= t1:
                head_time: Optional[float] = None
            else:
                head_time = float(head)
        else:
            head_time = None
        out.append(ChainInstance(body_times=body, head_time=head_time))
    return out


def merge_sorted_times(*arrays: np.ndarray) -> np.ndarray:
    """Merge several (possibly unsorted) time arrays into one sorted array."""
    if not arrays:
        return np.empty(0, dtype=np.float64)
    merged = np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays])
    merged.sort()
    return merged
