"""CMCS polling/duplication simulator.

The Cluster Monitoring and Control System records events through per-chip
polling agents, which is why the raw repository is massively redundant
(paper §3.1): one application fault is reported once by *each* compute chip
of the job's partition (spatial duplicates — same ENTRY_DATA and JOB_ID,
different LOCATIONs), and each polling agent may re-report it on subsequent
polls (temporal duplicates — same JOB_ID and LOCATION).  All duplicates land
within a short span because the poll period is far below the paper's 300 s
compression threshold.

:class:`CmcsSimulator` turns a stream of ground-truth *unique* events into
that redundant raw record stream.  Phase 1's compressors must recover the
unique stream from it — which is tested as a round-trip property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from repro.bgl.jobs import JobTrace
from repro.bgl.locations import LocationKind, SYSTEM_LOCATION
from repro.bgl.topology import Machine
from repro.ras.events import NO_JOB
from repro.ras.store import EventStore
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive


class SubcategorySpec(Protocol):
    """What the simulator needs to know about one subcategory.

    A structural subset of ``repro.taxonomy.subcategories.Subcategory``;
    the taxonomy stays a layer above ``bgl``, so callers inject a resolver
    (normally ``repro.taxonomy.subcategories.by_name``) instead of the
    simulator importing it.
    """

    location_kind: LocationKind
    templates: Sequence[str]
    severity: int
    facility: int


#: Maps a subcategory name to its spec; raises KeyError for unknown names.
SubcategoryResolver = Callable[[str], SubcategorySpec]


@dataclass(frozen=True)
class GroundTruthEvent:
    """One unique event before CMCS duplication.

    ``location`` may pin the event to a specific hardware element; when
    ``None`` the simulator picks one consistent with the subcategory's
    hardware level (and the job's partition, if any).
    """

    time: int
    subcategory: str
    job_id: int = NO_JOB
    location: Optional[str] = None


@dataclass(frozen=True)
class DuplicationModel:
    """Redundancy knobs of the raw repository.

    ``mean_reporting_chips`` controls spatial duplication of job events (how
    many of the partition's chips report one fault); ``mean_repeats``
    controls temporal duplication at a single location (polling re-reports).
    ``jitter_span`` bounds how far duplicates spread in time — it must stay
    below the compression threshold (300 s) for Phase 1 to recover unique
    events, exactly as on the real machine.
    """

    mean_reporting_chips: float = 12.0
    max_reporting_chips: int = 128
    mean_repeats: float = 1.6
    max_repeats: int = 6
    jitter_span: float = 120.0

    def __post_init__(self) -> None:
        check_positive(self.mean_reporting_chips, "mean_reporting_chips")
        check_positive(self.mean_repeats, "mean_repeats")
        check_positive(self.jitter_span, "jitter_span")
        if self.max_reporting_chips < 1 or self.max_repeats < 1:
            raise ValueError("max_reporting_chips and max_repeats must be >= 1")

    def sample_chip_count(self, rng: np.random.Generator, available: int) -> int:
        """Number of chips co-reporting one job fault (>= 1)."""
        n = 1 + rng.geometric(min(1.0, 1.0 / self.mean_reporting_chips)) - 1
        return int(min(n if n >= 1 else 1, self.max_reporting_chips, available))

    def sample_repeats(self, rng: np.random.Generator) -> int:
        """Temporal re-reports at one location (>= 1)."""
        n = 1 + rng.poisson(self.mean_repeats - 1.0)
        return int(min(n, self.max_repeats))


class CmcsSimulator:
    """Expands ground-truth unique events into redundant raw records."""

    def __init__(
        self,
        machine: Machine,
        job_trace: Optional[JobTrace] = None,
        duplication: Optional[DuplicationModel] = None,
        seed: SeedLike = None,
        *,
        resolver: SubcategoryResolver,
    ) -> None:
        self.machine = machine
        self.job_trace = job_trace
        self.duplication = duplication or DuplicationModel()
        self.resolver = resolver
        self.rng = as_generator(seed)
        self._loc_intern: dict[str, int] = {}
        self._loc_table: list[str] = []
        self._entry_intern: dict[str, int] = {}
        self._entry_table: list[str] = []

    # -- location selection -------------------------------------------- #

    def _intern_loc(self, loc: str) -> int:
        idx = self._loc_intern.get(loc)
        if idx is None:
            idx = len(self._loc_table)
            self._loc_table.append(loc)
            self._loc_intern[loc] = idx
        return idx

    def _intern_entry(self, entry: str) -> int:
        idx = self._entry_intern.get(entry)
        if idx is None:
            idx = len(self._entry_table)
            self._entry_table.append(entry)
            self._entry_intern[entry] = idx
        return idx

    def _pick_location(self, sc: SubcategorySpec, job_id: int) -> str:
        """One location consistent with the subcategory's hardware level."""
        rng = self.rng
        kind = sc.location_kind
        if kind is LocationKind.SYSTEM:
            return SYSTEM_LOCATION
        if job_id != NO_JOB and self.job_trace is not None:
            if kind is LocationKind.COMPUTE_CHIP:
                chips = self.job_trace.partition_chips(job_id)
                return chips[int(rng.integers(len(chips)))]
            if kind is LocationKind.NODECARD:
                cards = self.job_trace.partition_nodecards(job_id)
                return cards[int(rng.integers(len(cards)))]
        pool = {
            LocationKind.COMPUTE_CHIP: self.machine.chip_locations,
            LocationKind.IO_NODE: self.machine.io_node_locations,
            LocationKind.NODECARD: self.machine.nodecard_locations,
            LocationKind.MIDPLANE: self.machine.midplane_locations,
            LocationKind.LINKCARD: self.machine.linkcard_locations,
            LocationKind.SERVICE_CARD: self.machine.service_card_locations,
            LocationKind.RACK: self.machine.midplane_locations,  # rack ~ midplane granularity
        }[kind]
        return pool[int(self.rng.integers(len(pool)))]

    def _co_reporting_locations(
        self, sc: SubcategorySpec, job_id: int, primary: str
    ) -> list[str]:
        """Locations that report the same fault (spatial duplicates).

        Only job-attached compute/I-O events fan out across the partition;
        hardware events are reported by their own element alone.
        """
        if job_id == NO_JOB or self.job_trace is None:
            return [primary]
        if sc.location_kind is LocationKind.COMPUTE_CHIP:
            chips = self.job_trace.partition_chips(job_id)
            k = self.duplication.sample_chip_count(self.rng, len(chips))
            if k <= 1:
                return [primary]
            picks = self.rng.choice(len(chips), size=k, replace=False)
            locs = {chips[int(i)] for i in picks}
            locs.add(primary)
            return sorted(locs)
        if sc.location_kind is LocationKind.IO_NODE:
            pool = self.machine.io_node_locations
            k = min(
                self.duplication.sample_chip_count(self.rng, len(pool)),
                max(1, len(pool) // 4),
            )
            if k <= 1:
                return [primary]
            picks = self.rng.choice(len(pool), size=k, replace=False)
            locs = {pool[int(i)] for i in picks}
            locs.add(primary)
            return sorted(locs)
        return [primary]

    # -- expansion ------------------------------------------------------ #

    def expand(self, ground_truth: Sequence[GroundTruthEvent]) -> EventStore:
        """Produce the redundant raw record store for a ground-truth stream.

        Every ground-truth event yields >= 1 records; all of an event's
        duplicates share its ENTRY_DATA and JOB_ID and fall within
        ``jitter_span`` seconds of the event time.
        """
        rng = self.rng
        dup = self.duplication
        times: list[int] = []
        sev: list[int] = []
        fac: list[int] = []
        jobs: list[int] = []
        loc_ids: list[int] = []
        entry_ids: list[int] = []
        for gt in ground_truth:
            sc = self.resolver(gt.subcategory)
            template = sc.templates[int(rng.integers(len(sc.templates)))]
            entry_id = self._intern_entry(template)
            primary = gt.location or self._pick_location(sc, gt.job_id)
            locations = self._co_reporting_locations(sc, gt.job_id, primary)
            # The detecting element reports first (and therefore survives
            # compression as the representative); co-reporters follow.
            if locations[0] != primary:
                locations = [primary] + [l for l in locations if l != primary]
            sev_val = int(sc.severity)
            fac_val = int(sc.facility)
            first = True
            for loc in locations:
                loc_id = self._intern_loc(loc)
                repeats = dup.sample_repeats(rng)
                for _ in range(repeats):
                    # The detecting element reports first, at the true event
                    # time; all other duplicates trail it within jitter_span.
                    jitter = 0 if first else int(rng.random() * dup.jitter_span)
                    first = False
                    times.append(gt.time + jitter)
                    sev.append(sev_val)
                    fac.append(fac_val)
                    jobs.append(gt.job_id)
                    loc_ids.append(loc_id)
                    entry_ids.append(entry_id)
        n = len(times)
        return EventStore.from_columns(
            np.asarray(times, dtype=np.int64),
            np.asarray(sev, dtype=np.int8),
            np.asarray(fac, dtype=np.int8),
            np.asarray(jobs, dtype=np.int64),
            np.asarray(loc_ids, dtype=np.int32),
            np.asarray(entry_ids, dtype=np.int32),
            np.full(n, -1, dtype=np.int32),
            list(self._loc_table),
            list(self._entry_table),
            [],
        )
