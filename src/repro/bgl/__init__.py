"""Blue Gene/L machine substrate.

The paper's pipeline exists because of how Blue Gene/L *produces* RAS data:
every compute chip of a job's partition runs a polling agent, so one fault
becomes many records; the machine is a strict hardware hierarchy (rack →
midplane → node card → compute chip, plus I/O nodes, link cards and service
cards) reflected in the LOCATION field; jobs span many chips.  This
subpackage models exactly those mechanisms:

- :mod:`repro.bgl.locations` — location-code grammar (parse/format/navigate).
- :mod:`repro.bgl.topology` — the hardware tree for a configurable machine
  (defaults match the single-rack ANL and SDSC systems).
- :mod:`repro.bgl.jobs` — job arrivals, partition allocation, and the
  time×location → job lookup the CMCS simulator needs.
- :mod:`repro.bgl.cmcs` — the CMCS polling/duplication simulator that turns
  unique ground-truth faults into the redundant raw log Phase 1 must clean.
- :mod:`repro.bgl.faults` — temporal point-process primitives (Poisson,
  burst/cluster, causal-chain) composed by :mod:`repro.synth`.
"""

from repro.bgl.locations import (
    LocationKind,
    SYSTEM_LOCATION,
    format_location,
    parse_location,
    parent_location,
    location_kind,
)
from repro.bgl.topology import Machine, MachineSpec
from repro.bgl.jobs import Job, JobTrace, JobWorkloadModel
from repro.bgl.cmcs import CmcsSimulator, DuplicationModel
from repro.bgl.faults import (
    poisson_times,
    burst_process,
    chain_instances,
    thin_times,
)

__all__ = [
    "LocationKind",
    "SYSTEM_LOCATION",
    "format_location",
    "parse_location",
    "parent_location",
    "location_kind",
    "Machine",
    "MachineSpec",
    "Job",
    "JobTrace",
    "JobWorkloadModel",
    "CmcsSimulator",
    "DuplicationModel",
    "poisson_times",
    "burst_process",
    "chain_instances",
    "thin_times",
]
