"""The serving-loop orchestrator: monitor, decide, refit, hot-swap.

:class:`LifecycleManager` owns one :class:`~repro.serve.DetectorPool` and
drives the full loop the subsystem exists for::

    feed chunk -> score drift -> (policy fires?) -> refit on the sliding
    window -> register snapshot (lineage: parent = serving model) ->
    pool.swap_model at the chunk barrier -> rebase the drift reference

Chunks are the swap barrier: every event inside a chunk is scored by the
model that was serving when the chunk arrived, and a swap takes effect
exactly at the chunk boundary — the same boundary a cold restart would
happen at, which is what makes the hot-swap equivalence testable.

The manager never touches wall clocks or ambient RNG: retrain seeds come
from the retrainer's spawned sequences and every decision is a pure
function of the event stream, so a replay of the same store reproduces the
same snapshots, swaps and warnings bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

from repro.lifecycle.drift import DriftMonitor, DriftSignal
from repro.lifecycle.retrain import RetrainPolicy, Retrainer
from repro.obs import get_registry
from repro.online.resolution import SessionStats
from repro.predictors.base import FailureWarning
from repro.ras.store import EventStore
from repro.serve.pool import DetectorPool
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SwapEvent:
    """One completed retrain + hot-swap."""

    at_event: int  # stream position (events fed so far) of the barrier
    reason: str  # "count" | "drift"
    snapshot_id: str
    parent: Optional[str]
    drift_score: float
    sessions_swapped: int
    #: Wall-clock seconds of retrain + swap at this barrier.  The chunk
    #: loop blocks on it, so this is the latency the incremental mining
    #: engine exists to shrink (benchmarked in bench_incremental_mining).
    retrain_seconds: float = 0.0


@dataclass
class LifecycleReport:
    """What one managed run did: traffic, swaps, final resolution stats."""

    events: int = 0
    warnings: int = 0
    swaps: list[SwapEvent] = field(default_factory=list)
    signals: list[DriftSignal] = field(default_factory=list)
    stats: Optional[SessionStats] = None

    @property
    def retrains(self) -> int:
        return len(self.swaps)


class LifecycleManager:
    """Continuous-learning wrapper around a serving pool.

    Parameters
    ----------
    pool:
        The serving pool; its persistent sessions are fed via
        :meth:`~repro.serve.DetectorPool.process_store` and swapped in
        place.
    monitor / policy / retrainer:
        The drift detector, the refit decision and the refit mechanism
        (see their modules).  The retrainer's registry receives one
        snapshot per swap, with ``parent`` pointing at the replaced model.
    serving_snapshot:
        Registry id of the initially serving model, if it came from the
        registry — the first retrain's lineage parent.
    """

    def __init__(
        self,
        pool: DetectorPool,
        monitor: DriftMonitor,
        policy: RetrainPolicy,
        retrainer: Retrainer,
        *,
        serving_snapshot: Optional[str] = None,
    ) -> None:
        self.pool = pool
        self.monitor = monitor
        self.policy = policy
        self.retrainer = retrainer
        self.serving_snapshot = serving_snapshot
        self.events_fed = 0

    def feed(self, chunk: EventStore) -> list[FailureWarning]:
        """Serve one chunk, then run the monitor/retrain/swap step.

        Returns the warnings the chunk raised (grouped by shard).  The
        swap, if any, lands *after* the chunk — the next chunk is the first
        traffic the new model sees.
        """
        warnings = self.pool.process_store(chunk)
        self.events_fed += len(chunk)
        self.monitor.observe_store(chunk)
        self.retrainer.extend(chunk)
        self.policy.observe_events(len(chunk))
        signal = self.monitor.evaluate(self.pool.combined_stats())
        decision = self.policy.decide(drifted=signal.drifted)
        if decision:
            self._retrain_and_swap(decision.reason or "count", signal)
        return warnings

    def _retrain_and_swap(self, reason: str, signal: DriftSignal) -> SwapEvent:
        obs = get_registry()
        t0 = perf_counter()
        with obs.span("lifecycle.swap", reason=reason):
            snapshot, predictor = self.retrainer.retrain(
                parent=self.serving_snapshot,
                note=f"auto-retrain ({reason}) at event {self.events_fed}",
            )
            sessions = self.pool.swap_model(predictor)
        seconds = perf_counter() - t0
        obs.observe("lifecycle.retrain_seconds", seconds)
        window = self.retrainer.window
        assert window is not None  # retrain() above would have raised
        self.monitor.rebase(window)
        self.policy.mark_retrained()
        event = SwapEvent(
            at_event=self.events_fed,
            reason=reason,
            snapshot_id=snapshot.snapshot_id,
            parent=self.serving_snapshot,
            drift_score=signal.score,
            sessions_swapped=sessions,
            retrain_seconds=seconds,
        )
        self.serving_snapshot = snapshot.snapshot_id
        self._last_swap = event
        return event

    def run(
        self,
        store: EventStore,
        *,
        chunk_events: int = 4096,
        finalize: bool = True,
        action_sink: Optional[Any] = None,
    ) -> LifecycleReport:
        """Drive a whole classified store through the managed loop.

        The store is cut into ``chunk_events``-sized chunks (the swap
        barriers); ``finalize`` resolves warnings still pending at end of
        stream.  ``action_sink`` is a duck-typed observer (in practice a
        ``repro.actions.ActionEngine`` — the actions layer sits above
        lifecycle, so only the CLI names the concrete type) that receives
        every chunk and its warnings; its settlement ledger then shows
        drift-triggered retrains as windowed-net recoveries.
        """
        check_positive(chunk_events, "chunk_events")
        report = LifecycleReport()
        swaps_before = self.policy.retrains
        for start in range(0, len(store), int(chunk_events)):
            chunk = store.select(slice(start, start + int(chunk_events)))
            warnings = self.feed(chunk)
            if action_sink is not None:
                action_sink.observe_store(chunk, list(warnings))
            report.events += len(chunk)
            report.warnings += len(warnings)
            if self.policy.retrains > swaps_before:
                swaps_before = self.policy.retrains
                report.swaps.append(self._last_swap)
            report.signals.append(self.monitor.evaluate())
        report.stats = (
            self.pool.finish() if finalize else self.pool.combined_stats()
        )
        return report
