"""Content-addressed, versioned model registry.

A production deployment retrains continuously (see :mod:`repro.lifecycle`),
so fitted models need the same discipline code gets: immutable versioned
snapshots, stable identity, lineage, and garbage collection.
:class:`ModelRegistry` provides exactly that on top of the conventions the
artifact cache established (:mod:`repro.cache`): snapshots are JSON
documents stored under their content hash with atomic same-directory
``os.replace`` writes, corruption reads as absence, and eviction is
explicit.

Layout under the registry root::

    snapshots/<id[:2]>/<id>.json   # manifest + full model document
    refs/latest                    # snapshot id of the newest save
    refs/<tag>                     # user-assigned names (atomic writes)

A snapshot **id** is the SHA-256 combination of the model document hash,
the training-store fingerprint, the spec's fit token and the parent id —
identical (model, provenance) pairs collide on purpose, so re-registering
the same fit is idempotent.  The **manifest** records provenance: the
:func:`~repro.cache.store_fingerprint` of the training store, the
:class:`~repro.evaluation.spec.PredictorSpec` (kind + params, fit token
included) when the model was spec-built, the lineage ``parent`` pointer,
and a registry-local monotonically increasing ``seq`` (no wall clock —
ordering must replay deterministically).

``refs`` resolve like git's: :meth:`ModelRegistry.resolve` accepts a full
snapshot id, a unique id prefix (>= 6 hex chars), a tag name, or
``"latest"``.  :meth:`ModelRegistry.prune` keeps the newest N snapshots
plus everything a ref points at (and the lineage chain of survivors stays
intact because parents are ids, not files).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.cache.fingerprint import combine_tokens
from repro.core.serialize import (
    SerializationError,
    model_from_dict,
    model_to_dict,
)
from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.spec import PredictorSpec, SpecError
from repro.meta.stacked import MetaLearner
from repro.obs import get_registry
from repro.predictors.base import Predictor

#: Schema version of the snapshot document (manifest + model).
SNAPSHOT_VERSION = 1

#: Minimum hex chars accepted for abbreviated snapshot-id resolution.
MIN_PREFIX = 6

_HEX = set("0123456789abcdef")


class RegistryError(ValueError):
    """Bad ref, malformed snapshot, or conflicting registry operation."""


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable registry entry (manifest only — the model stays on disk).

    ``spec`` is ``None`` for models imported from plain files without a
    declarative spec; ``fit_token`` is then also ``None``.
    """

    snapshot_id: str
    kind: str
    seq: int
    parent: Optional[str]
    store_fingerprint: Optional[str]
    spec: Optional[PredictorSpec]
    fit_token: Optional[str]
    train_events: Optional[int]
    note: str = ""

    def manifest(self) -> dict[str, Any]:
        """The JSON-ready manifest block persisted inside the snapshot."""
        return {
            "kind": self.kind,
            "seq": self.seq,
            "parent": self.parent,
            "store_fingerprint": self.store_fingerprint,
            "spec": self.spec.as_manifest() if self.spec else None,
            "fit_token": self.fit_token,
            "train_events": self.train_events,
            "note": self.note,
        }


def _snapshot_from_doc(snapshot_id: str, doc: dict) -> ModelSnapshot:
    try:
        manifest = doc["manifest"]
        spec_doc = manifest.get("spec")
        spec = PredictorSpec.from_dict(spec_doc) if spec_doc else None
        parent = manifest.get("parent")
        fingerprint = manifest.get("store_fingerprint")
        train_events = manifest.get("train_events")
        return ModelSnapshot(
            snapshot_id=snapshot_id,
            kind=str(manifest["kind"]),
            seq=int(manifest["seq"]),
            parent=str(parent) if parent else None,
            store_fingerprint=str(fingerprint) if fingerprint else None,
            spec=spec,
            fit_token=spec.fit_token() if spec else None,
            train_events=int(train_events) if train_events is not None else None,
            note=str(manifest.get("note", "")),
        )
    except (KeyError, TypeError, ValueError, SpecError) as exc:
        raise RegistryError(
            f"malformed snapshot manifest {snapshot_id[:12]}: {exc}"
        ) from exc


class ModelRegistry:
    """A directory of versioned predictor snapshots with git-like refs.

    Safe for concurrent writers at the file level: snapshot and ref writes
    go through same-directory temp files and ``os.replace`` (the artifact
    cache's atomicity convention), and ids are content-addressed so two
    processes registering the same fit converge on one file.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.snapshot_dir = self.root / "snapshots"
        self.ref_dir = self.root / "refs"
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        self.ref_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Paths and low-level IO
    # ------------------------------------------------------------------ #

    def _snapshot_path(self, snapshot_id: str) -> Path:
        if not snapshot_id or any(c not in _HEX for c in snapshot_id):
            raise RegistryError(
                f"snapshot ids are lowercase hex digests, got {snapshot_id!r}"
            )
        return self.snapshot_dir / snapshot_id[:2] / f"{snapshot_id}.json"

    def _ref_path(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise RegistryError(f"invalid ref name {name!r}")
        return self.ref_dir / name

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    def _read_doc(self, snapshot_id: str) -> Optional[dict]:
        try:
            with open(self._snapshot_path(snapshot_id), encoding="utf-8") as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict):
                raise ValueError("snapshot root is not an object")
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError, OSError):
            # Corruption-as-absence, the artifact-cache convention.
            get_registry().counter("lifecycle.registry_corrupt")
            return None
        return doc

    # ------------------------------------------------------------------ #
    # Enumeration and resolution
    # ------------------------------------------------------------------ #

    def snapshot_ids(self) -> list[str]:
        """Every stored snapshot id, sorted."""
        return sorted(
            p.stem for p in self.snapshot_dir.glob("[0-9a-f][0-9a-f]/*.json")
        )

    def list(self) -> list[ModelSnapshot]:
        """All snapshots, oldest first (by ``seq``, id as tie-break)."""
        out = []
        for snapshot_id in self.snapshot_ids():
            doc = self._read_doc(snapshot_id)
            if doc is not None:
                out.append(_snapshot_from_doc(snapshot_id, doc))
        out.sort(key=lambda s: (s.seq, s.snapshot_id))
        return out

    def tags(self) -> dict[str, str]:
        """``tag name -> snapshot id`` for every ref (including latest)."""
        out: dict[str, str] = {}
        for path in sorted(self.ref_dir.iterdir()):
            if not path.is_file() or path.name.startswith("."):
                continue
            try:
                out[path.name] = path.read_text(encoding="utf-8").strip()
            except OSError:
                continue
        return out

    def resolve(self, ref: str) -> str:
        """Snapshot id for a ref: tag, full id, or unique id prefix.

        Tags win over ids (like git); abbreviated ids must be at least
        :data:`MIN_PREFIX` chars and unambiguous.  :class:`RegistryError`
        if nothing matches.
        """
        if not ref:
            raise RegistryError("empty registry ref")
        ref_path = self.ref_dir / ref
        if "/" not in ref and not ref.startswith(".") and ref_path.is_file():
            target = ref_path.read_text(encoding="utf-8").strip()
            if self._read_doc(target) is None:
                raise RegistryError(
                    f"ref {ref!r} points at missing snapshot {target[:12]}"
                )
            return target
        if all(c in _HEX for c in ref) and len(ref) >= MIN_PREFIX:
            matches = [s for s in self.snapshot_ids() if s.startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise RegistryError(
                    f"ambiguous snapshot prefix {ref!r} "
                    f"({len(matches)} matches)"
                )
        known = ", ".join(sorted(self.tags())) or "none"
        raise RegistryError(
            f"unknown registry ref {ref!r} (tags: {known}; "
            f"snapshots: {len(self.snapshot_ids())})"
        )

    def get(self, ref: str) -> ModelSnapshot:
        """The manifest of the snapshot ``ref`` resolves to."""
        snapshot_id = self.resolve(ref)
        doc = self._read_doc(snapshot_id)
        if doc is None:
            raise RegistryError(f"snapshot {snapshot_id[:12]} is unreadable")
        return _snapshot_from_doc(snapshot_id, doc)

    def lineage(self, ref: str) -> list[ModelSnapshot]:
        """The snapshot and its ancestors, newest first, broken links cut."""
        out: list[ModelSnapshot] = []
        seen: set[str] = set()
        current: Optional[str] = self.resolve(ref)
        while current and current not in seen:
            seen.add(current)
            doc = self._read_doc(current)
            if doc is None:
                break
            snap = _snapshot_from_doc(current, doc)
            out.append(snap)
            current = snap.parent
        return out

    # ------------------------------------------------------------------ #
    # Save / load
    # ------------------------------------------------------------------ #

    def save(
        self,
        predictor: Union[ThreePhasePredictor, MetaLearner, Predictor],
        *,
        spec: Optional[PredictorSpec] = None,
        store_fingerprint: Optional[str] = None,
        parent: Optional[str] = None,
        train_events: Optional[int] = None,
        note: str = "",
        tags: tuple[str, ...] = (),
    ) -> ModelSnapshot:
        """Register a fitted predictor; returns the (possibly existing) snapshot.

        The id is the content hash of (model document, fingerprint, fit
        token, parent) — saving the same fit twice is a no-op that returns
        the existing snapshot.  ``refs/latest`` always moves to the saved
        snapshot; ``tags`` adds named refs on top.
        """
        model_doc = model_to_dict(predictor)
        parent_id = self.resolve(parent) if parent else None
        fit_token = spec.fit_token() if spec else None
        model_json = json.dumps(model_doc, sort_keys=True, separators=(",", ":"))
        snapshot_id = combine_tokens(
            model=model_json,
            store=store_fingerprint,
            fit=fit_token,
            parent=parent_id,
            version=SNAPSHOT_VERSION,
        )
        existing = self._read_doc(snapshot_id)
        if existing is not None:
            snap = _snapshot_from_doc(snapshot_id, existing)
        else:
            seq = max((s.seq for s in self.list()), default=0) + 1
            snap = ModelSnapshot(
                snapshot_id=snapshot_id,
                kind=str(model_doc["kind"]),
                seq=seq,
                parent=parent_id,
                store_fingerprint=store_fingerprint,
                spec=spec,
                fit_token=fit_token,
                train_events=train_events,
                note=note,
            )
            doc = {
                "snapshot_version": SNAPSHOT_VERSION,
                "manifest": snap.manifest(),
                "model": model_doc,
            }
            self._atomic_write(
                self._snapshot_path(snapshot_id),
                json.dumps(doc, sort_keys=True, separators=(",", ":")),
            )
            get_registry().counter("lifecycle.snapshots_saved")
        self._atomic_write(self._ref_path("latest"), snapshot_id + "\n")
        for tag in tags:
            self.tag(snapshot_id, tag)
        return snap

    def load(
        self, ref: str
    ) -> Union[ThreePhasePredictor, MetaLearner, Predictor]:
        """Rebuild the fitted predictor stored under ``ref``."""
        snapshot_id = self.resolve(ref)
        doc = self._read_doc(snapshot_id)
        if doc is None:
            raise RegistryError(f"snapshot {snapshot_id[:12]} is unreadable")
        model_doc = doc.get("model")
        if not isinstance(model_doc, dict):
            raise RegistryError(
                f"snapshot {snapshot_id[:12]} has no model document"
            )
        try:
            return model_from_dict(model_doc)
        except SerializationError as exc:
            raise RegistryError(
                f"snapshot {snapshot_id[:12]} failed to decode: {exc}"
            ) from exc

    def load_meta(self, ref: str) -> MetaLearner:
        """The fitted meta-learner under ``ref`` (three-phase unwrapped).

        The serving engine's swap path wants a :class:`MetaLearner`; kinds
        that do not embed one are a :class:`RegistryError`.
        """
        model = self.load(ref)
        if isinstance(model, ThreePhasePredictor):
            return model.meta
        if isinstance(model, MetaLearner):
            return model
        raise RegistryError(
            f"snapshot {self.resolve(ref)[:12]} holds a "
            f"{type(model).__name__}, not a servable meta-learner"
        )

    # ------------------------------------------------------------------ #
    # Refs and maintenance
    # ------------------------------------------------------------------ #

    def tag(self, ref: str, name: str) -> str:
        """Point ``refs/<name>`` at the snapshot ``ref`` resolves to."""
        if name == "latest":
            raise RegistryError("'latest' is registry-managed; pick another tag")
        snapshot_id = self.resolve(ref)
        self._atomic_write(self._ref_path(name), snapshot_id + "\n")
        return snapshot_id

    def prune(self, keep: int) -> int:
        """Drop all but the newest ``keep`` snapshots; refs are always kept.

        Returns the number removed.  "Newest" is by manifest ``seq``; every
        snapshot a ref points at survives regardless of age, so a pinned
        rollback target cannot be collected.
        """
        if keep < 0:
            raise RegistryError("keep must be >= 0")
        snapshots = self.list()
        protected = set(self.tags().values())
        keepers = {s.snapshot_id for s in snapshots[len(snapshots) - keep :]}
        removed = 0
        for snap in snapshots:
            if snap.snapshot_id in keepers or snap.snapshot_id in protected:
                continue
            try:
                self._snapshot_path(snap.snapshot_id).unlink()
                removed += 1
            except OSError:
                continue
        if removed:
            get_registry().counter("lifecycle.snapshots_pruned", removed)
        return removed
