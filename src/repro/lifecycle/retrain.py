"""Sliding-window retraining: when to refit and how to fit off the hot path.

:class:`RetrainPolicy` is the *decision*: refit every N events, refit when
the drift monitor fires, or both — with a cooldown so a persistent drift
signal cannot thrash the trainer.  :class:`Retrainer` is the *mechanism*:
it maintains a sliding window of recent classified events, fits a fresh
predictor from a declarative :class:`~repro.evaluation.spec.PredictorSpec`
(deterministically seeded via per-retrain child
:class:`~numpy.random.SeedSequence` spawning, the evaluation engine's
convention), optionally in a worker process and through the
content-addressed artifact cache, and registers the result in a
:class:`~repro.lifecycle.registry.ModelRegistry` with lineage back to the
model it replaces.

The fit travels across the process boundary as a learned-state document
(:func:`~repro.core.serialize.learned_state_to_dict`), the same payload the
evaluation engine memoizes — a worker never pickles a fitted predictor,
and a cached fit skips training entirely.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.cache import ArtifactCache, fold_fit_key, store_fingerprint
from repro.core.serialize import (
    SerializationError,
    apply_learned_state,
    incremental_miner_from_dict,
    incremental_miner_to_dict,
    learned_state_to_dict,
)
from repro.evaluation.engine import resolve_cache_dir, resolve_jobs
from repro.evaluation.incremental import (
    IncrementalFitter,
    is_incremental_enabled,
    supports_incremental,
)
from repro.evaluation.spec import PredictorSpec
from repro.lifecycle.registry import ModelRegistry, ModelSnapshot
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.ras.store import EventStore
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RetrainDecision:
    """Why (or why not) to retrain right now."""

    reason: Optional[str]  # "count" | "drift" | None

    def __bool__(self) -> bool:
        return self.reason is not None


class RetrainPolicy:
    """Count- and drift-triggered refits with a cooldown guard.

    Parameters
    ----------
    every_events:
        Refit after this many events since the last refit (``None`` — never
        by count).
    on_drift:
        Whether a drift signal triggers a refit.
    cooldown_events:
        Minimum events between refits regardless of trigger — a drift score
        that stays above threshold while the new window fills must not
        retrain on every chunk.
    """

    def __init__(
        self,
        every_events: Optional[int] = None,
        *,
        on_drift: bool = False,
        cooldown_events: int = 1024,
    ) -> None:
        if every_events is not None:
            check_positive(every_events, "every_events")
        if cooldown_events < 0:
            raise ValueError("cooldown_events must be >= 0")
        self.every_events = every_events
        self.on_drift = bool(on_drift)
        self.cooldown_events = int(cooldown_events)
        self.events_since_retrain = 0
        self.retrains = 0

    def observe_events(self, count: int) -> None:
        """Advance the event clock by ``count`` arrivals."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self.events_since_retrain += int(count)

    def decide(self, *, drifted: bool = False) -> RetrainDecision:
        """Should a refit happen now?  Drift outranks the count trigger."""
        if self.retrains and self.events_since_retrain < self.cooldown_events:
            return RetrainDecision(None)
        if self.on_drift and drifted:
            return RetrainDecision("drift")
        if (
            self.every_events is not None
            and self.events_since_retrain >= self.every_events
        ):
            return RetrainDecision("count")
        return RetrainDecision(None)

    def mark_retrained(self) -> None:
        """Reset the event clock after a refit."""
        self.events_since_retrain = 0
        self.retrains += 1


def _fit_state_in_worker(
    spec: PredictorSpec,
    window: EventStore,
    seed: Optional[np.random.SeedSequence],
) -> dict:
    """Fit in a worker process; ship the learned state back, not the model."""
    predictor = spec.build(seed=seed)
    predictor.fit(window)
    return learned_state_to_dict(predictor)


def fit_spec(
    spec: PredictorSpec,
    window: EventStore,
    *,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    seed: Optional[np.random.SeedSequence] = None,
    fitter: Optional[IncrementalFitter] = None,
) -> tuple[Predictor, bool]:
    """A predictor fitted on ``window``; returns ``(predictor, cache_hit)``.

    Mirrors the evaluation engine's fit path: consult the artifact cache
    under :func:`~repro.cache.fold_fit_key` (holdout range ``[0, 0)`` — the
    whole window is training data), fit on miss, memoize the learned state.
    ``jobs > 1`` runs the fit in a single worker process so a serving loop's
    event thread never blocks on mining.

    ``fitter`` (an :class:`~repro.evaluation.incremental.IncrementalFitter`)
    fits supported specs by delta against the fitter's maintained mining
    state instead — bit-identical output, so cache keys and payloads are
    unchanged.  The maintained state is in-process, which is exactly why an
    incremental fit is cheap enough to run on the caller's thread: it takes
    precedence over the worker-process path.
    """
    jobs = resolve_jobs(jobs)
    effective_dir = resolve_cache_dir(cache_dir)
    cache = ArtifactCache(effective_dir) if effective_dir else None
    predictor = spec.build(seed=seed)
    use_fitter = fitter is not None and supports_incremental(spec)
    key = ""
    if cache is not None:
        key = fold_fit_key(store_fingerprint(window), 0, 0, spec)
        doc = cache.get(key)
        if doc is not None:
            try:
                return apply_learned_state(predictor, doc), True
            except SerializationError:
                pass  # stale payload under our key: refit
    if use_fitter:
        assert fitter is not None
        predictor = fitter.fit_into(predictor, spec, window)
        state = None
    elif jobs > 1:
        with ProcessPoolExecutor(max_workers=1) as pool:
            state = pool.submit(_fit_state_in_worker, spec, window, seed).result()
        predictor = apply_learned_state(predictor, state)
    else:
        predictor.fit(window)
        state = None
    if cache is not None:
        try:
            cache.put(key, state if state is not None else learned_state_to_dict(predictor))
        except (OSError, SerializationError):
            pass  # caching is an optimization; never fail the retrain
    return predictor, False


class Retrainer:
    """Sliding-window refitter that registers every fit as a snapshot.

    Parameters
    ----------
    spec:
        The declarative recipe to refit (typically the serving model's own
        spec, recovered from its snapshot manifest).
    registry:
        Where fitted models are versioned; each retrain's snapshot carries
        a ``parent`` pointer to the model it replaces.
    window_events:
        Sliding-window size in events; :meth:`extend` keeps only the most
        recent ``window_events`` rows.
    seed:
        Root seed for seeded predictor kinds; retrain ``i`` uses the i-th
        spawned child sequence, so the stream of fits is a pure function of
        (seed, retrain index) — independent of wall time and worker count.
    incremental:
        Maintain mining state across retrains and refit by delta
        (bit-identical output; see :mod:`repro.mining.incremental`).
        ``None`` consults ``REPRO_INCREMENTAL``.  Only supported spec kinds
        use the maintained state; others fall back to the ordinary path.
    """

    def __init__(
        self,
        spec: PredictorSpec,
        registry: ModelRegistry,
        *,
        window_events: int = 50_000,
        jobs: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        seed: Optional[int] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        check_positive(window_events, "window_events")
        self.spec = spec
        self.registry = registry
        self.window_events = int(window_events)
        self.jobs = jobs
        self.cache_dir = cache_dir
        self._seed_root = (
            np.random.SeedSequence(seed) if seed is not None else None
        )
        self._window: Optional[EventStore] = None
        self.retrain_count = 0
        self.fitter: Optional[IncrementalFitter] = (
            IncrementalFitter()
            if is_incremental_enabled(incremental) and supports_incremental(spec)
            else None
        )

    # -- window maintenance -------------------------------------------- #

    @property
    def window(self) -> Optional[EventStore]:
        """The current sliding window (``None`` until events arrive)."""
        return self._window

    @property
    def window_size(self) -> int:
        return 0 if self._window is None else len(self._window)

    def extend(self, chunk: EventStore) -> None:
        """Append a classified chunk, trimming to the newest window rows."""
        if len(chunk) == 0:
            return
        merged = chunk if self._window is None else self._window.concat(chunk)
        if len(merged) > self.window_events:
            merged = merged.select(
                slice(len(merged) - self.window_events, len(merged))
            )
        self._window = merged

    # -- maintained mining state ---------------------------------------- #

    def fitter_state(self) -> Optional[dict]:
        """Versioned snapshot of the maintained mining state, if any.

        ``None`` when incremental fitting is off or no supported fit has
        happened yet.  The document goes through the serialization layer's
        versioned envelope (:func:`~repro.core.serialize.
        incremental_miner_to_dict`) so a daemon can persist it next to its
        model registry and restore O(delta) refits after a restart.
        """
        if self.fitter is None:
            return None
        miner = self.fitter.peek_miner(self.spec)
        if miner is None:
            return None
        return incremental_miner_to_dict(miner)

    def restore_fitter_state(self, doc: dict) -> None:
        """Restore a :meth:`fitter_state` snapshot into this retrainer."""
        if self.fitter is None:
            self.fitter = IncrementalFitter()
        self.fitter.install_miner(self.spec, incremental_miner_from_dict(doc))

    # -- fitting -------------------------------------------------------- #

    def retrain(
        self,
        *,
        parent: Optional[str] = None,
        note: str = "",
    ) -> tuple[ModelSnapshot, Predictor]:
        """Fit the spec on the current window and register the snapshot."""
        window = self._window
        if window is None or len(window) == 0:
            raise ValueError("retrainer window is empty; feed events first")
        seed = self._seed_root.spawn(1)[0] if self._seed_root else None
        obs = get_registry()
        with obs.span("lifecycle.retrain", spec=self.spec.kind):
            predictor, cache_hit = fit_spec(
                self.spec,
                window,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                seed=seed,
                fitter=self.fitter,
            )
            snapshot = self.registry.save(
                predictor,
                spec=self.spec,
                store_fingerprint=store_fingerprint(window),
                parent=parent,
                train_events=len(window),
                note=note,
            )
        self.retrain_count += 1
        obs.counter("lifecycle.retrains")
        obs.counter(
            "lifecycle.retrain_cache", hit="true" if cache_hit else "false"
        )
        return snapshot, predictor
