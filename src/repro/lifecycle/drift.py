"""Streaming drift detection against the training distribution.

Failure patterns in RAS logs evolve over months of operation (the premise
of the paper's own mining step), so a deployed predictor must notice when
the live stream stops resembling what it trained on.  :class:`DriftMonitor`
watches two complementary signals:

- **Input drift** — the distribution of event *subcategories* in a sliding
  window of recent events, compared against the training store's reference
  histogram with two classical statistics: the Population Stability Index
  (``PSI = sum((p_live - p_ref) * ln(p_live / p_ref))``) and Pearson's
  chi-square goodness-of-fit statistic.  PSI is scale-free (rule of thumb:
  < 0.1 stable, > 0.25 shifted) and is the thresholded signal; chi-square
  rides along for dashboards.  Both use add-half smoothing so labels absent
  on either side stay finite.
- **Output drift** — online precision over the most recently *resolved*
  warnings (:class:`PrecisionTracker`), fed from
  :class:`~repro.online.resolution.SessionStats` deltas.  Input drift says
  the world changed; a precision drop says the model stopped coping.

RAS taxonomies run to hundreds of subcategories while drift windows hold a
few thousand events, and PSI over that many sparse bins measures smoothing
noise, not shift.  The monitor therefore buckets: the reference's
``top_labels`` most common subcategories keep their own bins and the long
tail aggregates into :data:`OTHER_LABEL` — the standard "≤ 25 bins" PSI
practice, applied identically to both sides of the comparison.

Everything is pure counting — no RNG, no clock — so a replayed stream
produces bit-identical scores.  Each :meth:`DriftMonitor.evaluate` records
``lifecycle.drift_score`` / ``lifecycle.drift_chi2`` gauges against the
active :mod:`repro.obs` registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

import numpy as np

from repro.obs import get_registry
from repro.online.resolution import SessionStats
from repro.ras.store import UNCLASSIFIED, EventStore
from repro.util.validation import check_positive


#: Aggregate bin for subcategories outside the reference's top set.
OTHER_LABEL = "__other__"


def subcategory_counts(store: EventStore) -> dict[str, int]:
    """Event count per subcategory name (unclassified rows are skipped)."""
    return store.subcat_counts()


def _distribution(
    counts: Mapping[str, Union[int, float]], labels: list[str], smooth: float
) -> np.ndarray:
    """Smoothed probability vector of ``counts`` over ``labels``."""
    raw = np.array([float(counts.get(name, 0)) + smooth for name in labels])
    return raw / raw.sum()


def psi_score(
    reference: Mapping[str, Union[int, float]],
    live: Mapping[str, Union[int, float]],
    *,
    smooth: float = 0.5,
) -> float:
    """Population Stability Index between two label-count histograms."""
    labels = sorted(set(reference) | set(live))
    if not labels:
        return 0.0
    p = _distribution(reference, labels, smooth)
    q = _distribution(live, labels, smooth)
    return float(np.sum((q - p) * np.log(q / p)))


def chi_square_score(
    reference: Mapping[str, Union[int, float]],
    live: Mapping[str, Union[int, float]],
    *,
    smooth: float = 0.5,
) -> float:
    """Pearson chi-square statistic of ``live`` against ``reference``.

    Expected counts are the reference proportions scaled to the live window
    size; add-half smoothing keeps unseen labels finite.  The raw statistic
    (not a p-value) is reported — threshold it against the caller's own
    critical value if needed; the monitor thresholds PSI instead.
    """
    labels = sorted(set(reference) | set(live))
    n_live = float(sum(live.values()))
    if not labels or n_live <= 0:
        return 0.0
    p = _distribution(reference, labels, smooth)
    observed = np.array([float(live.get(name, 0)) for name in labels])
    expected = p * n_live
    return float(np.sum((observed - expected) ** 2 / expected))


@dataclass(frozen=True)
class DriftSignal:
    """One drift evaluation: scores plus the threshold verdict."""

    score: float  # PSI
    chi_square: float
    window_events: int
    drifted: bool
    precision: Optional[float] = None


class PrecisionTracker:
    """Online precision over the last ``window`` *resolved* warnings.

    Resolved means the horizon verdict is in: a hit or a false alarm.
    Feed it :class:`SessionStats` snapshots (cumulative counters); the
    tracker diffs against the previous snapshot, so it composes with any
    resolver without hooking its internals.
    """

    def __init__(self, window: int = 256) -> None:
        check_positive(window, "window")
        self._outcomes: deque[int] = deque(maxlen=int(window))
        self._seen_hits = 0
        self._seen_false = 0

    def observe_stats(self, stats: SessionStats) -> None:
        """Absorb a cumulative stats snapshot (monotone counters)."""
        self.observe_resolutions(
            stats.hits - self._seen_hits,
            stats.false_alarms - self._seen_false,
        )

    def observe_resolutions(self, hits: int, false_alarms: int) -> None:
        """Record ``hits`` then ``false_alarms`` newly resolved warnings."""
        if hits < 0 or false_alarms < 0:
            raise ValueError("resolution deltas must be non-negative")
        self._seen_hits += hits
        self._seen_false += false_alarms
        self._outcomes.extend([1] * hits)
        self._outcomes.extend([0] * false_alarms)

    @property
    def resolved(self) -> int:
        """Resolved warnings currently inside the window."""
        return len(self._outcomes)

    def precision(self) -> Optional[float]:
        """Window precision, or ``None`` before anything resolved."""
        if not self._outcomes:
            return None
        return sum(self._outcomes) / len(self._outcomes)


class DriftMonitor:
    """Sliding-window subcategory-distribution drift against a reference.

    Parameters
    ----------
    reference:
        The training store (its subcategory histogram becomes the reference
        distribution) or a pre-computed ``label -> count`` mapping.
    window:
        Live-window size in events.  The monitor stays silent (``drifted``
        False) until the window has filled once — a half-empty histogram
        compared against a full reference is noise, not signal.
    threshold:
        PSI level at or above which :meth:`evaluate` reports drift.
    top_labels:
        Bin budget: the reference's most common subcategories (count, then
        name, for determinism) keep their own bins; the rest — on both the
        reference and live sides — aggregate into :data:`OTHER_LABEL`.
        ``None`` disables bucketing (full label space).
    precision_window:
        Size of the embedded :class:`PrecisionTracker` ring.
    """

    def __init__(
        self,
        reference: Union[EventStore, Mapping[str, int]],
        *,
        window: int = 4096,
        threshold: float = 0.25,
        top_labels: Optional[int] = 10,
        precision_window: int = 256,
    ) -> None:
        check_positive(window, "window")
        check_positive(threshold, "threshold")
        if top_labels is not None:
            check_positive(top_labels, "top_labels")
        self.window = int(window)
        self.threshold = float(threshold)
        self.top_labels = top_labels
        self.precision = PrecisionTracker(precision_window)
        self._live: deque[str] = deque(maxlen=self.window)
        self._counts: dict[str, int] = {}
        self.events_seen = 0
        self._keep: Optional[frozenset[str]] = None
        self.reference: dict[str, int] = {}
        self._set_reference(reference)

    def _set_reference(
        self, reference: Union[EventStore, Mapping[str, int]]
    ) -> None:
        if isinstance(reference, EventStore):
            reference = subcategory_counts(reference)
        counts = {k: int(v) for k, v in reference.items() if v > 0}
        if not counts:
            raise ValueError("reference histogram is empty")
        if self.top_labels is not None and len(counts) > self.top_labels:
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            self._keep = frozenset(k for k, _ in ranked[: self.top_labels])
            bucketed: dict[str, int] = {}
            for name, n in counts.items():
                bucketed[self._bin(name)] = bucketed.get(self._bin(name), 0) + n
            counts = bucketed
        else:
            self._keep = None
        self.reference = counts

    def _bin(self, label: str) -> str:
        """The histogram bin a subcategory label lands in."""
        if self._keep is not None and label not in self._keep:
            return OTHER_LABEL
        return label

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #

    def observe(self, label: str) -> None:
        """Push one event's subcategory label into the live window."""
        label = self._bin(label)
        live = self._live
        counts = self._counts
        if len(live) == live.maxlen:
            evicted = live.popleft()
            remaining = counts[evicted] - 1
            if remaining:
                counts[evicted] = remaining
            else:
                del counts[evicted]
        live.append(label)
        counts[label] = counts.get(label, 0) + 1
        self.events_seen += 1

    def observe_labels(self, labels: Iterable[str]) -> None:
        """Push a batch of labels (stream order)."""
        for label in labels:
            self.observe(label)

    def observe_store(self, store: EventStore) -> None:
        """Push a classified store chunk (unclassified rows are skipped).

        The chunk's label *ids* are translated through its own intern table,
        so chunks from differently-built stores feed the same histogram.
        """
        ids = store.subcat_ids
        mask = ids != UNCLASSIFIED
        if not mask.any():
            return
        table = store.subcat_table
        self.observe_labels(table[i] for i in ids[mask].tolist())

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    @property
    def window_full(self) -> bool:
        return len(self._live) >= self.window

    def live_counts(self) -> dict[str, int]:
        """The live window's current histogram (copy)."""
        return dict(self._counts)

    def score(self) -> float:
        """Current PSI of the live window against the reference."""
        return psi_score(self.reference, self._counts)

    def evaluate(self, stats: Optional[SessionStats] = None) -> DriftSignal:
        """Score the window, update precision, and record the gauges.

        ``drifted`` is only raised once the live window has filled; the
        score itself is always computed so dashboards see warm-up too.
        """
        if stats is not None:
            self.precision.observe_stats(stats)
        score = self.score()
        chi2 = chi_square_score(self.reference, self._counts)
        signal = DriftSignal(
            score=score,
            chi_square=chi2,
            window_events=len(self._live),
            drifted=self.window_full and score >= self.threshold,
            precision=self.precision.precision(),
        )
        obs = get_registry()
        obs.gauge("lifecycle.drift_score", score)
        obs.gauge("lifecycle.drift_chi2", chi2)
        if signal.precision is not None:
            obs.gauge("lifecycle.live_precision", signal.precision)
        return signal

    def rebase(self, reference: Union[EventStore, Mapping[str, int]]) -> None:
        """Replace the reference (after retraining) and clear the window.

        The retrained model's training window *is* the new normal; keeping
        the old reference would re-fire drift forever.  The top-label bin
        set is recomputed from the new reference.
        """
        self._set_reference(reference)
        self._live.clear()
        self._counts.clear()
