"""Model lifecycle: versioned registry, drift detection, hot-swap retraining.

The subsystem closes the loop the serving engine left open: a deployed
failure predictor ages as the workload shifts, and this package notices
(:mod:`repro.lifecycle.drift`), refits (:mod:`repro.lifecycle.retrain`),
versions (:mod:`repro.lifecycle.registry`) and swaps the replacement into
the live pool without dropping pending warnings
(:meth:`repro.serve.DetectorPool.swap_model`,
:class:`repro.lifecycle.manager.LifecycleManager`).

See ``docs/lifecycle.md`` for the registry layout, the drift math and the
swap-barrier equivalence argument.
"""

from repro.lifecycle.drift import (
    OTHER_LABEL,
    DriftMonitor,
    DriftSignal,
    PrecisionTracker,
    chi_square_score,
    psi_score,
    subcategory_counts,
)
from repro.lifecycle.manager import LifecycleManager, LifecycleReport, SwapEvent
from repro.lifecycle.registry import (
    ModelRegistry,
    ModelSnapshot,
    RegistryError,
)
from repro.lifecycle.retrain import (
    RetrainDecision,
    Retrainer,
    RetrainPolicy,
    fit_spec,
)

__all__ = [
    "OTHER_LABEL",
    "DriftMonitor",
    "DriftSignal",
    "LifecycleManager",
    "LifecycleReport",
    "ModelRegistry",
    "ModelSnapshot",
    "PrecisionTracker",
    "RegistryError",
    "RetrainDecision",
    "RetrainPolicy",
    "Retrainer",
    "SwapEvent",
    "chi_square_score",
    "fit_spec",
    "psi_score",
    "subcategory_counts",
]
