"""Calibrated system profiles (ANL and SDSC).

A :class:`SystemProfile` bundles every knob of the synthetic log generator.
The two factory functions return profiles calibrated so the full pipeline
reproduces the paper's reported numbers:

- per-category compressed fatal counts = paper Table 4 (exact by
  construction, up to compression edge effects);
- statistical predictor precision/recall ~ Table 5 (via the burst process's
  spawn probability and fan-out);
- rule precision/recall bands and their trends vs the prediction window ~
  Figure 4 (via chain confidences, instance geometry and body-item noise);
- meta-learner curves ~ Figure 5 (the chain/burst overlap knob
  ``chain_burst_anchor_fraction`` sets how much the two base predictors'
  coverages intersect);
- no-precursor fatal fraction inside the paper's stated ranges (via the
  chain/burst/orphan budget split and the background noise level — the real
  preprocessed logs average only tens of unique events per day, so look-back
  windows are frequently *empty*);
- raw record volume ~ Table 1 (via the duplication model: one job fault is
  reported by on the order of a hundred chip/polling duplicates, which is
  why the raw ANL log has 4.17 M records but only ~10^4 unique fatal events).

Scaling: ``LogGenerator(profile, scale=s)`` simulates ``s * days`` with the
same rates and probabilities, so all *ratio* metrics are scale-invariant
while counts shrink linearly — tests run at small scales, benches at larger
ones, and ``scale=1`` reproduces the paper-scale log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.bgl.cmcs import DuplicationModel
from repro.bgl.topology import ANL_SPEC, SDSC_SPEC, MachineSpec
from repro.synth.chains import ChainTemplate, default_chain_templates
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import by_name
from repro.util.timeutil import MINUTE
from repro.util.validation import check_fraction, check_positive

_APP = MainCategory.APPLICATION
_IO = MainCategory.IOSTREAM
_KRN = MainCategory.KERNEL
_MEM = MainCategory.MEMORY
_MID = MainCategory.MIDPLANE
_NET = MainCategory.NETWORK
_NC = MainCategory.NODECARD
_OTH = MainCategory.OTHER


@dataclass(frozen=True)
class NoiseSpec:
    """Background rate of one non-fatal subcategory (unique events/day)."""

    subcategory: str
    rate_per_day: float

    def __post_init__(self) -> None:
        if by_name(self.subcategory).is_fatal:
            raise ValueError(f"noise subcategory {self.subcategory} is fatal")
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be >= 0")


@dataclass(frozen=True)
class BurstConfig:
    """Parameters of the clustered-failure (storm) process.

    Failure storms are sequences of network/iostream fatal events with
    member-to-member lags uniform in ``lag`` seconds; storm sizes are
    ``2 + Poisson(mean_cluster_size - 2)`` (a storm of one would be an
    orphan).  Every member except the last is followed by another failure
    within the statistical band, so the per-member follow-up rate — what the
    statistical predictor's precision measures — is ``(k-1)/k`` averaged
    over sizes, diluted at the log level by the non-storm network/iostream
    failures (chain heads and orphans) that trigger the predictor but have
    no followers.  Burst-quota events of *other* categories attach to storms
    as leaves, modeling the paper's observation that network/I-O failures
    *dominate* — but do not exhaust — the close-proximity failures.
    """

    mean_cluster_size: float = 6.0
    max_cluster_size: int = 40
    lag: tuple[float, float] = (6 * MINUTE, 45 * MINUTE)

    def __post_init__(self) -> None:
        if self.mean_cluster_size < 2.0:
            raise ValueError("mean_cluster_size must be >= 2")
        if self.max_cluster_size < 2:
            raise ValueError("max_cluster_size must be >= 2")
        lo, hi = self.lag
        if not 0 < lo < hi:
            raise ValueError("lag must satisfy 0 < lo < hi")


@dataclass(frozen=True)
class WorkloadConfig:
    """Job workload knobs (see :class:`repro.bgl.jobs.JobWorkloadModel`)."""

    mean_interarrival: float = 1800.0
    mean_duration: float = 4 * 3600.0
    sigma_duration: float = 1.0
    p_full_machine: float = 0.3


@dataclass(frozen=True)
class SystemProfile:
    """Complete parameterization of one synthetic Blue Gene/L system."""

    name: str
    machine: MachineSpec
    start_epoch: int
    days: float
    #: Full-scale per-category compressed fatal budget (paper Table 4).
    fatal_budget: Mapping[MainCategory, int]
    #: Fraction of each category's budget produced by precursor chains.
    chain_fraction: Mapping[MainCategory, float]
    #: Fraction of each category's budget produced as burst members.
    burst_fraction: Mapping[MainCategory, float]
    chains: Sequence[ChainTemplate]
    burst: BurstConfig
    noise: Sequence[NoiseSpec]
    duplication: DuplicationModel
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Fraction of chain instances anchored shortly after a burst member
    #: rather than at a uniform time.  Anchored instances' heads are covered
    #: by *both* base predictors — the coverage overlap Figure 5 implies.
    chain_burst_anchor_fraction: float = 0.0
    #: Diurnal modulation of background noise: rate(t) follows
    #: ``1 + diurnal_amplitude * sin(2*pi*(t mod day)/day)``, peaking six
    #: hours into each UTC day.  Production logs show exactly this daytime
    #: swell in informational traffic; 0 disables it.
    diurnal_amplitude: float = 0.0
    #: Body-span multiplier for chain instances that do NOT escalate to a
    #: head.  Values > 1 make non-escalating precursor patterns more
    #: diffuse, so at small prediction windows only the tight, escalating
    #: patterns complete — producing Figure 4/5's high precision at 5 min
    #: that erodes as the window grows.
    headless_span_factor: float = 2.0
    #: Weights for choosing the concrete fatal subcategory of burst/orphan
    #: events within a category (subcategory name -> weight); categories not
    #: listed use uniform weights over their fatal subcategories.
    fatal_subcat_weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.days, "days")
        check_fraction(self.chain_burst_anchor_fraction, "chain_burst_anchor_fraction")
        check_fraction(self.diurnal_amplitude, "diurnal_amplitude")
        for cat in MainCategory:
            cf = self.chain_fraction.get(cat, 0.0)
            bf = self.burst_fraction.get(cat, 0.0)
            check_fraction(cf, f"chain_fraction[{cat.value}]")
            check_fraction(bf, f"burst_fraction[{cat.value}]")
            if cf + bf > 1.0:
                raise ValueError(
                    f"chain_fraction + burst_fraction > 1 for {cat.value}"
                )
            if self.fatal_budget.get(cat, 0) < 0:
                raise ValueError(f"negative budget for {cat.value}")

    @property
    def total_fatal_budget(self) -> int:
        return sum(self.fatal_budget.values())


#: Epochs of the paper's log start dates (UTC midnight).
_ANL_START = 1106265600  # 2005-01-21
_SDSC_START = 1102291200  # 2004-12-06


def anl_profile() -> SystemProfile:
    """The ANL Blue Gene/L profile (1 rack, 32 I/O nodes, 15-month log).

    Calibration targets: Table 4 ANL column; Table 5 ANL (P 0.52 / R 0.49);
    Figure 4 left (rule P 0.7-0.9, R rising 0.22-0.55, best rule window
    15 min); Figure 5 left (meta P 0.88->0.65, R 0.64->0.78).
    """
    return SystemProfile(
        name="ANL",
        machine=ANL_SPEC,
        start_epoch=_ANL_START,
        days=462.0,
        fatal_budget={
            _APP: 762, _IO: 1173, _KRN: 224, _MEM: 52,
            _MID: 102, _NET: 482, _NC: 20, _OTH: 8,
        },
        chain_fraction={
            _APP: 0.68, _IO: 0.36, _KRN: 0.75, _MEM: 0.80,
            _MID: 0.85, _NET: 0.33, _NC: 0.80, _OTH: 0.75,
        },
        burst_fraction={
            _APP: 0.24, _IO: 0.52, _KRN: 0.14, _MEM: 0.12,
            _MID: 0.0, _NET: 0.52, _NC: 0.0, _OTH: 0.0,
        },
        chains=default_chain_templates(
            confidence_scale=1.08,
            body_span=7 * MINUTE,
            head_lag=(30.0, 120.0),
            weight_overrides={
                "coredump-load": 1.2,
                "ddr-socket": 4.0,
                "ciodio-sockwrite": 3.0,
                "fileread-stream": 3.0,
            },
        ),
        burst=BurstConfig(mean_cluster_size=8.0),
        noise=_noise_rates(high_scale=0.38, body_scale=1.2),
        duplication=DuplicationModel(
            mean_reporting_chips=128.0,
            max_reporting_chips=512,
            mean_repeats=2.0,
            jitter_span=120.0,
        ),
        workload=WorkloadConfig(),
        chain_burst_anchor_fraction=0.85,
        diurnal_amplitude=0.3,
        headless_span_factor=2.2,
        fatal_subcat_weights={
            "socketReadFailure": 2.0,
            "streamReadFailure": 1.5,
            "torusFailure": 1.8,
            "rtsFailure": 1.5,
            "loadProgramFailure": 2.0,
        },
    )


def sdsc_profile() -> SystemProfile:
    """The SDSC Blue Gene/L profile (I/O-rich rack, 14.5-month log).

    Calibration targets: Table 4 SDSC column; Table 5 SDSC (P 0.28 /
    R 0.31); Figure 4 right (best rule window 25 min); Figure 5 right
    (meta P 0.99->0.89, R ~ 0.65).  SDSC differs from ANL in: higher
    chain confidences (more high-confidence rules, per the paper's
    discussion), wider chain geometry (best rule-generation window 25 min),
    weaker bursts (lower temporal correlation), and an order of magnitude
    less log volume.
    """
    return SystemProfile(
        name="SDSC",
        machine=SDSC_SPEC,
        start_epoch=_SDSC_START,
        days=442.0,
        fatal_budget={
            _APP: 587, _IO: 905, _KRN: 182, _MEM: 25,
            _MID: 97, _NET: 366, _NC: 17, _OTH: 3,
        },
        chain_fraction={
            _APP: 0.68, _IO: 0.42, _KRN: 0.75, _MEM: 0.70,
            _MID: 0.75, _NET: 0.36, _NC: 0.70, _OTH: 0.67,
        },
        burst_fraction={
            _APP: 0.10, _IO: 0.24, _KRN: 0.06, _MEM: 0.0,
            _MID: 0.0, _NET: 0.24, _NC: 0.0, _OTH: 0.0,
        },
        chains=default_chain_templates(
            confidence_scale=1.45,
            body_span=14 * MINUTE,
            head_lag=(60.0, 240.0),
        ),
        burst=BurstConfig(mean_cluster_size=4.0),
        noise=_noise_rates(high_scale=0.22, body_scale=0.5),
        duplication=DuplicationModel(
            mean_reporting_chips=24.0,
            max_reporting_chips=256,
            mean_repeats=1.6,
            jitter_span=120.0,
        ),
        workload=WorkloadConfig(mean_interarrival=2400.0),
        chain_burst_anchor_fraction=0.60,
        headless_span_factor=2.0,
        fatal_subcat_weights={
            "socketReadFailure": 4.0,
            "streamWriteFailure": 2.0,
            "torusFailure": 3.0,
            "loginFailure": 2.0,
        },
    )


def _noise_rates(high_scale: float, body_scale: float) -> tuple[NoiseSpec, ...]:
    """Background noise catalog.

    The *high* group are informational subcategories that never participate
    in chain bodies — pure volume and window-occupancy pressure.  The *body*
    group are multi-item-body precursors occurring alone at low rates: their
    coincidental co-occurrence is what erodes rule precision as the
    prediction window grows (Figure 4's declining trend).  Single-item-body
    precursors (``coredumpCreated``, ``nodeMapFileError``, ...) deliberately
    have **no** background rate: any solo occurrence would fire the mined
    rule unconditionally, which would disconnect realized precision from the
    planted chain confidence.

    Total unique non-fatal rate at ``high_scale=body_scale=1`` is ~42/day —
    matching the post-compression density of the real logs, where the paper
    finds 31-66 % of failures have a completely empty look-back window.
    """
    high = {
        "timerInterruptInfo": 7.0,
        "debugInterruptInfo": 3.5,
        "kernelStartInfo": 2.5,
        "kernelShutdownInfo": 2.5,
        "torusConnectionErrorInfo": 2.0,
        "appChildKillInfo": 2.0,
        "appReadError": 1.2,
        "appArgumentError": 0.8,
        "syscallError": 1.6,
        "supervisorModeError": 0.8,
        "contextSwitchError": 0.8,
        "l1CacheError": 2.0,
        "dmaError": 1.6,
        "prefetchBufferError": 1.2,
        "nodecardAssemblyWarning": 0.8,
        "nodecardClockError": 0.4,
        "nodecardInitInfo": 1.2,
        "midplaneSwitchError": 0.6,
        "serviceCardError": 0.6,
        "tempSensorWarning": 1.2,
        "clockCardError": 0.4,
        "monitorCheckInfo": 1.5,
        "CMCSControlInfo": 1.2,
        "linkcardServiceWarning": 0.8,
    }
    body = {
        "ddrErrorCorrectionInfo": 0.5,
        "maskInfo": 0.4,
        "ciodRestartInfo": 0.4,
        "midplaneStartInfo": 0.4,
        "controlNetworkInfo": 0.5,
        "nodecardVPDMismatch": 0.3,
        "nodecardFunctionalityWarning": 0.4,
        "midplaneLinkcardRestartWarning": 0.3,
        "nodecardAssemblySevereDiscovery": 0.15,
        "nodecardDiscoveryError": 0.3,
        "endServiceWarning": 0.4,
        "BGLMasterRestartInfo": 0.3,
        "watchdogTimerWarning": 0.4,
        "kernelAssertError": 0.3,
        "interruptVectorError": 0.3,
        "kernelModeError": 0.4,
        "sramParityError": 0.4,
        "l2CacheError": 0.4,
        "ddrSingleSymbolInfo": 0.4,
        "scrubCorrectionInfo": 0.4,
        "l3CacheError": 0.3,
        "ciodIoWarning": 0.5,
        "socketCloseError": 0.4,
        "fileReadError": 0.4,
        "torusSenderError": 0.4,
        "torusReceiverError": 0.3,
        "memoryLeakWarning": 0.3,
        "pageAllocationError": 0.3,
        "appExitWarning": 0.4,
        "appSignalError": 0.3,
        "nodecardTempWarning": 0.3,
        "nodecardPowerError": 0.2,
        "fanSpeedWarning": 0.4,
        "powerSupplyError": 0.3,
        "midplaneServiceWarning": 0.3,
    }
    specs = [
        NoiseSpec(name, rate * high_scale) for name, rate in high.items()
    ] + [
        NoiseSpec(name, rate * body_scale) for name, rate in body.items()
    ]
    return tuple(specs)


_PROFILES = {"ANL": anl_profile, "SDSC": sdsc_profile}


def profile_by_name(name: str) -> SystemProfile:
    """Look up a built-in profile by (case-insensitive) name."""
    try:
        return _PROFILES[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
