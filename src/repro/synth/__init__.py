"""Synthetic Blue Gene/L RAS log generation.

The paper's experiments run on proprietary production logs; this subpackage
generates statistically faithful substitutes (see DESIGN.md §2 for the
substitution argument).  The generator plants exactly the structures the
three-phase predictor exploits:

- **causal chains** (:mod:`repro.synth.chains`) — non-fatal precursor
  patterns escalating to fatal events with a configured confidence, modeled
  on the paper's Figure-3 rules;
- **failure bursts** — temporally clustered network/I-O-stream fatal events
  (the statistical predictor's signal);
- **orphan fatals** — failures with no precursors (the rule method's recall
  ceiling);
- **background noise** — high-rate informational records providing log
  volume and false-match pressure;

and the CMCS duplication layer turns the unique ground truth into the
redundant raw log that Phase 1 must compress.

Profiles :func:`repro.synth.profiles.anl_profile` and
:func:`repro.synth.profiles.sdsc_profile` are calibrated so the pipeline's
measured results land on the paper's reported numbers (Tables 4-5,
Figures 2-5); ``scale`` shortens the simulated span proportionally.
"""

from repro.synth.chains import ChainTemplate, default_chain_templates
from repro.synth.generator import GeneratedLog, LogGenerator
from repro.synth.profiles import (
    NoiseSpec,
    SystemProfile,
    anl_profile,
    sdsc_profile,
    profile_by_name,
)
from repro.synth.streaming import StreamSummary, stream_generate

__all__ = [
    "ChainTemplate",
    "default_chain_templates",
    "GeneratedLog",
    "LogGenerator",
    "NoiseSpec",
    "SystemProfile",
    "anl_profile",
    "sdsc_profile",
    "profile_by_name",
    "StreamSummary",
    "stream_generate",
]
