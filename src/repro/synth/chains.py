"""Causal precursor chain templates.

Each :class:`ChainTemplate` is one recurring failure mode: a *body* of
non-fatal precursor subcategories that escalates to a fatal *head* with the
chain's *confidence*.  The first eleven templates transcribe the association
rules the paper exhibits in Figure 3 (body, head and confidence); the rest
extend coverage to every fatal category so that each Table-4 row has
rule-discoverable structure.

Timing of one chain instance: the body events spread over ``body_span``
seconds (in template order), and when the instance escalates the head
follows the last body event after a lag uniform in ``head_lag``.  The
geometry drives two of the paper's observed trends:

- **body_span** makes the rule-generation-window sweep (Step 5) non-trivial:
  a window shorter than ``body_span + head_lag`` truncates bodies and weakens
  the mined rules (the paper lands on 15 min for ANL, 25 min for SDSC);
- **short head lags** with **long body spans** produce Figure 4's shape: at a
  small prediction window only tightly-clustered bodies complete — rarely,
  but when they do the head follows almost immediately (high precision, low
  recall); a large window completes every body (recall rises) while
  admitting more coincidental matches (precision erodes).

Template *weights* decide how each category's chain quota distributes.  They
are deliberately top-heavy: only patterns whose head count clears the mining
support threshold (0.04 of all fatals) can be rediscovered as rules, exactly
the support/coverage trade-off the paper discusses when justifying its
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.taxonomy.subcategories import by_name
from repro.util.timeutil import MINUTE
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ChainTemplate:
    """One precursor -> failure pattern the generator plants.

    Attributes
    ----------
    key:
        Short unique identifier (profiles override weights by key).
    body:
        Ordered non-fatal subcategory names (the precursors).
    head:
        Fatal subcategory name this chain escalates to.
    confidence:
        P(head occurs | body occurs) — directly bounds the rule predictor's
        realized precision on this pattern.
    body_span:
        Seconds over which the body events spread.
    head_lag:
        (lo, hi) seconds between the last body event and the head.
    weight:
        Relative share of its head-category's chain quota.
    anchorable:
        Whether instances may be anchored inside failure storms (the
        coverage-overlap mechanism).  Marquee Figure-3 patterns with very
        high confidence are not anchorable: storm proximity would place
        their precursors inside foreign failures' event-set windows and
        dilute the mined confidence below the published value.
    """

    key: str
    body: tuple[str, ...]
    head: str
    confidence: float
    body_span: float = 10 * MINUTE
    head_lag: tuple[float, float] = (30.0, 240.0)
    weight: float = 1.0
    anchorable: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("chain key must be non-empty")
        if not self.body:
            raise ValueError("chain body must be non-empty")
        check_fraction(self.confidence, "confidence")
        check_positive(self.body_span, "body_span")
        check_positive(self.weight, "weight")
        lo, hi = self.head_lag
        if not 0 < lo < hi:
            raise ValueError("head_lag must satisfy 0 < lo < hi")
        for name in self.body:
            sc = by_name(name)
            if sc.is_fatal:
                raise ValueError(f"body item {name} must be non-fatal")
        if not by_name(self.head).is_fatal:
            raise ValueError(f"head {self.head} must be fatal")

    @property
    def max_extent(self) -> float:
        """Largest body-start to head distance an instance can span."""
        return self.body_span + self.head_lag[1]


#: (key, body, head, confidence, weight, anchorable) of every template;
#: geometry comes from the factory arguments.  The first eleven transcribe
#: Figure 3.
_SPECS: tuple[tuple[str, tuple[str, ...], str, float, float, bool], ...] = (
    # -- Figure 3 transcriptions ---------------------------------------- #
    ("nodemap-file", ("nodeMapFileError",), "nodeMapCreateFailure", 1.0, 2.0, False),
    ("nodemap-bad", ("nodeMapError",), "nodeMapCreateFailure", 0.947, 0.5, False),
    ("ctlnet-conn", ("controlNetworkNMCSError",), "nodeConnectionFailure", 0.708, 0.6, False),
    ("ddr-socket", ("ddrErrorCorrectionInfo", "maskInfo"), "socketReadFailure", 0.698, 3.0, False),
    ("ciod-rtslink",
     ("ciodRestartInfo", "midplaneStartInfo", "controlNetworkInfo"),
     "rtsLinkFailure", 0.697, 0.7, True),
    ("nodecard-linkcard-a",
     ("nodecardVPDMismatch", "nodecardAssemblySevereDiscovery",
      "nodecardFunctionalityWarning"),
     "linkcardFailure", 0.636, 1.5, True),
    ("nodecard-linkcard-b",
     ("nodecardVPDMismatch", "nodecardFunctionalityWarning",
      "midplaneLinkcardRestartWarning"),
     "linkcardFailure", 0.600, 1.0, True),
    ("coredump-load", ("coredumpCreated",), "loadProgramFailure", 0.583, 4.0, False),
    ("mpstart-cache",
     ("midplaneStartInfo", "controlNetworkInfo", "BGLMasterRestartInfo"),
     "cacheFailure", 0.556, 1.0, True),
    ("nodecard-linkcard-c",
     ("nodecardDiscoveryError", "nodecardFunctionalityWarning",
      "endServiceWarning", "midplaneLinkcardRestartWarning"),
     "linkcardFailure", 0.545, 0.8, True),
    # -- coverage of the remaining fatal categories --------------------- #
    ("watchdog-panic", ("watchdogTimerWarning", "kernelAssertError"),
     "kernelPanicFailure", 0.80, 8.0, False),
    ("tlb-dataaddr", ("tlbMissError",), "dataAddressFailure", 0.70, 1.0, True),
    ("align", ("memoryAlignmentError",), "alignmentFailure", 0.65, 0.6, True),
    ("irq-mcheck", ("interruptVectorError", "kernelModeError"),
     "machineCheckFailure", 0.72, 0.8, True),
    ("sram-parity", ("sramParityError", "l2CacheError"), "parityFailure",
     0.75, 1.0, True),
    ("ddr-edram", ("ddrSingleSymbolInfo", "scrubCorrectionInfo"),
     "edramFailure", 0.62, 1.0, True),
    ("ddr-dataread", ("ddrErrorCorrectionInfo", "l3CacheError"),
     "dataReadFailure", 0.70, 1.0, True),
    ("ciodio-sockwrite", ("ciodIoWarning", "socketCloseError"),
     "socketWriteFailure", 0.85, 2.0, False),
    ("fileread-stream", ("fileReadError", "ciodIoWarning"),
     "streamReadFailure", 0.80, 2.0, False),
    ("torus-sendrecv", ("torusSenderError", "torusReceiverError"),
     "torusFailure", 0.80, 6.0, False),
    ("memleak-oom", ("memoryLeakWarning", "pageAllocationError"),
     "appOutOfMemoryFailure", 0.75, 0.5, True),
    ("appexit-login", ("appExitWarning", "appSignalError"), "loginFailure",
     0.70, 0.5, True),
    ("nc-temp-fail", ("nodecardTempWarning", "nodecardPowerError"),
     "nodecardFailure", 0.65, 1.0, True),
    ("fan-bulkpower", ("fanSpeedWarning", "powerSupplyError"),
     "bulkPowerFailure", 0.60, 1.0, True),
    ("endsvc-ciodsignal", ("endServiceWarning", "midplaneServiceWarning"),
     "ciodSignalFailure", 0.66, 1.0, True),
)


def default_chain_templates(
    confidence_scale: float = 1.0,
    body_span: float = 10 * MINUTE,
    head_lag: tuple[float, float] = (30.0, 240.0),
    weight_overrides: Optional[Mapping[str, float]] = None,
) -> list[ChainTemplate]:
    """Build the template catalog with profile-specific geometry.

    ``confidence_scale`` multiplies every confidence (clipped to 1.0): the
    SDSC profile uses > 1 because the paper observes SDSC yields more
    high-confidence rules than ANL.  ``weight_overrides`` adjusts quota
    shares by template key.
    """
    overrides = dict(weight_overrides or {})
    templates: list[ChainTemplate] = []
    for key, body, head, conf, weight, anchorable in _SPECS:
        templates.append(
            ChainTemplate(
                key=key,
                body=body,
                head=head,
                confidence=min(1.0, conf * confidence_scale),
                body_span=body_span,
                head_lag=head_lag,
                weight=overrides.pop(key, weight),
                anchorable=anchorable,
            )
        )
    if overrides:
        raise KeyError(f"unknown template keys in overrides: {sorted(overrides)}")
    return templates


def template_by_key(templates: list[ChainTemplate], key: str) -> ChainTemplate:
    """Look one template up by key."""
    for tpl in templates:
        if tpl.key == key:
            return tpl
    raise KeyError(f"no template with key {key!r}")
