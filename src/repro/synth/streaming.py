"""Streaming synthetic-log generation straight to columnar storage.

``LogGenerator.generate()`` materializes its whole log in RAM, which caps
synthetic scale at available memory.  :func:`stream_generate` lifts that cap
by composing the log from independent *segments*: each segment is generated
in memory (one ``LogGenerator`` run), time-shifted to start right after the
previous segment ended, appended chunk-by-chunk to a
:class:`~repro.ras.columnar.ColumnarWriter`, and dropped before the next one
is built.  Peak memory is one segment regardless of how many segments the
final store holds — the generation-side counterpart of the columnar
backend's read-side memory bound.

Determinism: segment seeds are spawned from the master seed via
``numpy.random.SeedSequence``, so the output store is a pure function of
``(profile, segments, scale, noise_multiplier, seed)`` — independent of
chunk size.  The resulting store is bit-identical (same
``store_fingerprint``) to concatenating the same time-shifted segments with
:meth:`EventStore.concat` in memory: the writer interns each segment's
string tables in table order, exactly as ``concat`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.ras.columnar import DEFAULT_CHUNK_EVENTS, ColumnarWriter
from repro.synth.generator import LogGenerator
from repro.synth.profiles import SystemProfile
from repro.util.validation import check_positive


@dataclass(frozen=True)
class StreamSummary:
    """What one :func:`stream_generate` run wrote."""

    path: Path
    segments: int
    rows: int
    t0: int
    t1: int

    @property
    def span_seconds(self) -> int:
        return self.t1 - self.t0


def stream_generate(
    profile: SystemProfile,
    path: Union[str, Path],
    *,
    segments: int = 10,
    scale: float = 0.02,
    noise_multiplier: float = 1.0,
    seed: int = 0,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> StreamSummary:
    """Generate ``segments`` independent log segments into a columnar store.

    Each segment simulates ``scale`` of the profile's span with its own
    spawned seed; segment *i+1* is shifted to begin one second after
    segment *i*'s last record, so the store reads as one continuous,
    time-sorted stream ``segments`` times longer than a single generation.

    Returns a :class:`StreamSummary`; open the result with
    :func:`repro.ras.columnar.open_store`.
    """
    check_positive(segments, "segments")
    check_positive(chunk_events, "chunk_events")
    children = np.random.SeedSequence(seed).spawn(segments)
    rows = 0
    t0 = None
    last_time = None
    with ColumnarWriter(path) as writer:
        for child in children:
            gen = LogGenerator(
                profile,
                scale=scale,
                noise_multiplier=noise_multiplier,
                seed=child,
            )
            raw = gen.generate().raw
            offset = 0 if last_time is None else last_time + 1 - gen.t0
            shifted = raw.time_shifted(offset)
            for chunk in shifted.iter_chunks(chunk_events):
                writer.append(chunk)
            if len(shifted):
                if t0 is None:
                    t0 = int(shifted.times[0])
                last_time = int(shifted.times[-1])
            rows += len(shifted)
            del raw, shifted, gen  # one segment resident at a time
    return StreamSummary(
        path=Path(path),
        segments=segments,
        rows=rows,
        t0=t0 if t0 is not None else 0,
        t1=last_time if last_time is not None else 0,
    )
