"""End-to-end synthetic RAS log generation.

``LogGenerator.generate()`` produces, for one :class:`SystemProfile`:

1. a **job trace** (the machine's workload over the simulated span);
2. a **ground-truth unique event stream** composed of chain instances,
   burst members, orphan fatals and background noise, with per-category
   fatal counts hitting the profile's (scaled) Table-4 budget exactly;
3. the **raw record store** — the ground truth expanded through the CMCS
   duplication simulator, which is what the Phase-1 pipeline consumes.

Budget accounting per category ``c``::

    budget(c) = round(table4[c] * scale)
    chains(c) = round(budget * chain_fraction[c])      # precursor-bearing
    bursts(c) = round(budget * burst_fraction[c])      # temporally clustered
    orphans(c) = budget - chains(c) - bursts(c)        # isolated, no signal

Burst quota that the branching process cannot place (e.g. quotas exhausted
mid-chain) is returned to the orphan pool, so category totals stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bgl.cmcs import CmcsSimulator, GroundTruthEvent
from repro.bgl.jobs import IDLE, JobTrace, JobWorkloadModel
from repro.bgl.locations import LocationKind
from repro.bgl.topology import Machine
from repro.ras.events import NO_JOB
from repro.ras.store import EventStore
from repro.synth.profiles import SystemProfile
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import by_category, by_name
from repro.util.rng import SeedLike, as_generator, spawn_child
from repro.util.timeutil import DAY

_NETIO = (MainCategory.NETWORK, MainCategory.IOSTREAM)


@dataclass
class GeneratedLog:
    """Everything one generation run produced."""

    profile: SystemProfile
    scale: float
    t0: int
    t1: int
    ground_truth: list[GroundTruthEvent]
    raw: EventStore
    job_trace: JobTrace

    @property
    def n_unique(self) -> int:
        return len(self.ground_truth)

    @property
    def n_raw(self) -> int:
        return len(self.raw)

    def ground_truth_fatal_counts(self) -> dict[MainCategory, int]:
        """Planted fatal events per main category (the Table-4 target)."""
        counts: dict[MainCategory, int] = {c: 0 for c in MainCategory}
        for gt in self.ground_truth:
            sc = by_name(gt.subcategory)
            if sc.is_fatal:
                counts[sc.category] += 1
        return counts


class LogGenerator:
    """Synthesizes one system's RAS log from a profile.

    Parameters
    ----------
    scale:
        Fraction of the profile's full span to simulate (rates unchanged).
    noise_multiplier:
        Scales background noise rates only — fatal structure is unaffected,
        so benches that do not need log *volume* can run much faster.
    seed:
        Master seed; every subsystem draws from an independent child stream.
    """

    def __init__(
        self,
        profile: SystemProfile,
        scale: float = 1.0,
        noise_multiplier: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be >= 0")
        self.profile = profile
        self.scale = float(scale)
        self.noise_multiplier = float(noise_multiplier)
        self.rng = as_generator(seed)
        self.t0 = int(profile.start_epoch)
        self.t1 = int(profile.start_epoch + profile.days * scale * DAY)

    # ------------------------------------------------------------------ #
    # Budget arithmetic
    # ------------------------------------------------------------------ #

    def budgets(self) -> dict[MainCategory, int]:
        """Scaled per-category fatal budgets."""
        return {
            cat: int(round(self.profile.fatal_budget.get(cat, 0) * self.scale))
            for cat in MainCategory
        }

    @staticmethod
    def _split(budget: int, fraction: float) -> int:
        return int(round(budget * fraction))

    # ------------------------------------------------------------------ #
    # Component processes
    # ------------------------------------------------------------------ #

    def _gen_chains(
        self,
        rng: np.random.Generator,
        quotas: dict[MainCategory, int],
        burst_times: Optional[np.ndarray] = None,
    ) -> list[GroundTruthEvent]:
        """Chain instances; plants exactly ``quotas[cat]`` heads per category.

        A ``chain_burst_anchor_fraction`` share of instances is anchored
        1-3 minutes after a randomly chosen burst member (when any exist),
        so those instances' heads fall inside the statistical predictor's
        horizon as well — the coverage overlap of the two base methods.
        """
        events: list[GroundTruthEvent] = []
        templates = list(self.profile.chains)
        anchor_frac = self.profile.chain_burst_anchor_fraction
        if burst_times is None or len(burst_times) == 0:
            anchor_frac = 0.0
        for cat, quota in quotas.items():
            if quota <= 0:
                continue
            cat_templates = [
                tpl for tpl in templates if by_name(tpl.head).category is cat
            ]
            if not cat_templates:
                raise ValueError(
                    f"profile {self.profile.name}: no chain template with a "
                    f"{cat.value} head but chain quota {quota}"
                )
            weights = np.array([tpl.weight for tpl in cat_templates])
            shares = _largest_remainder(quota * weights / weights.sum())
            for tpl, n_heads in zip(cat_templates, shares):
                if n_heads == 0:
                    continue
                n_inst = max(
                    int(n_heads),
                    int(round(n_heads / tpl.confidence)) if tpl.confidence else int(n_heads),
                )
                horizon = self.t1 - self.t0 - tpl.max_extent
                if horizon <= 0:
                    raise ValueError(
                        "simulated span too short for chain extent; "
                        "increase scale"
                    )
                anchors = self.t0 + rng.random(n_inst) * horizon
                with_head = np.zeros(n_inst, dtype=bool)
                with_head[rng.choice(n_inst, size=int(n_heads), replace=False)] = True
                if anchor_frac > 0.0 and tpl.anchorable:
                    # Only escalating instances anchor to bursts: the overlap
                    # mechanism concerns failures covered by both methods.
                    anchored = (rng.random(n_inst) < anchor_frac) & with_head
                    n_anchored = int(np.count_nonzero(anchored))
                    if n_anchored:
                        # Without replacement where possible: two instances of
                        # one template anchored to the same burst member would
                        # produce same-ENTRY_DATA heads within the spatial
                        # compression threshold and be merged away.
                        if n_anchored <= len(burst_times):
                            idx = rng.choice(
                                len(burst_times), size=n_anchored, replace=False
                            )
                        else:
                            idx = rng.integers(len(burst_times), size=n_anchored)
                        picks = burst_times[idx]
                        offsets = 60.0 + rng.random(n_anchored) * 120.0
                        candidate = picks + offsets
                        # Keep anchored instances inside the horizon.
                        candidate = np.clip(candidate, self.t0, self.t0 + horizon)
                        anchors[anchored] = candidate
                lag_lo, lag_hi = tpl.head_lag
                hl_factor = max(1.0, self.profile.headless_span_factor)
                for a, has_head in zip(anchors, with_head):
                    span = tpl.body_span if has_head else tpl.body_span * hl_factor
                    offsets = np.sort(rng.random(len(tpl.body))) * span
                    last = a
                    for item, off in zip(tpl.body, offsets):
                        t = int(a + off)
                        last = max(last, t)
                        events.append(GroundTruthEvent(time=t, subcategory=item))
                    if has_head:
                        head_t = int(last + lag_lo + rng.random() * (lag_hi - lag_lo))
                        events.append(
                            GroundTruthEvent(time=head_t, subcategory=tpl.head)
                        )
        return events

    def _gen_bursts(
        self, rng: np.random.Generator, quotas: dict[MainCategory, int]
    ) -> tuple[list[GroundTruthEvent], dict[MainCategory, int]]:
        """Failure storms; returns events + unplaced quota.

        Network/iostream quota forms storm skeletons (sequential members
        separated by the configured lag); other-category burst quota attaches
        to random skeleton members as leaves.  Storm sizes are drawn as
        ``2 + Poisson(mean - 2)``, truncated by the remaining quota, so the
        per-member follow-up probability is controlled and the cluster-count
        variance stays low even at small scales.
        """
        cfg = self.profile.burst
        remaining = dict(quotas)
        events: list[tuple[int, MainCategory]] = []
        lag_lo, lag_hi = cfg.lag
        netio_times: list[int] = []

        def pick_netio() -> Optional[MainCategory]:
            cats = [c for c in _NETIO if remaining.get(c, 0) > 0]
            if not cats:
                return None
            weights = np.array([remaining[c] for c in cats], dtype=np.float64)
            cat = cats[int(rng.choice(len(cats), p=weights / weights.sum()))]
            remaining[cat] -= 1
            return cat

        while sum(remaining.get(c, 0) for c in _NETIO) > 0:
            size = 2 + int(rng.poisson(max(0.0, cfg.mean_cluster_size - 2.0)))
            size = min(size, cfg.max_cluster_size)
            t = int(self.t0 + rng.random() * (self.t1 - self.t0))
            for _ in range(size):
                cat = pick_netio()
                if cat is None or t >= self.t1:
                    break
                events.append((t, cat))
                netio_times.append(t)
                t += int(lag_lo + rng.random() * (lag_hi - lag_lo))

        # Other-category burst quota: leaves hanging off storm members.
        for cat in MainCategory:
            if cat in _NETIO:
                continue
            quota = remaining.get(cat, 0)
            placed = 0
            for _ in range(quota):
                if not netio_times:
                    break
                parent = netio_times[int(rng.integers(len(netio_times)))]
                t = int(parent + lag_lo + rng.random() * (lag_hi - lag_lo))
                if t >= self.t1:
                    continue
                events.append((t, cat))
                placed += 1
            remaining[cat] = quota - placed

        out = [
            GroundTruthEvent(time=t, subcategory=self._pick_fatal_subcat(rng, cat))
            for t, cat in events
        ]
        return out, remaining

    def _pick_fatal_subcat(
        self, rng: np.random.Generator, cat: MainCategory
    ) -> str:
        """A concrete fatal subcategory of ``cat``, per profile weights."""
        fatal = [sc.name for sc in by_category(cat) if sc.is_fatal]
        if not fatal:
            raise ValueError(f"category {cat.value} has no fatal subcategories")
        weights = np.array(
            [self.profile.fatal_subcat_weights.get(n, 1.0) for n in fatal]
        )
        return fatal[int(rng.choice(len(fatal), p=weights / weights.sum()))]

    def _gen_orphans(
        self, rng: np.random.Generator, quotas: dict[MainCategory, int]
    ) -> list[GroundTruthEvent]:
        """Isolated fatal events with neither precursors nor followers."""
        events: list[GroundTruthEvent] = []
        for cat, quota in quotas.items():
            for _ in range(max(0, quota)):
                t = int(self.t0 + rng.random() * (self.t1 - self.t0))
                events.append(
                    GroundTruthEvent(
                        time=t, subcategory=self._pick_fatal_subcat(rng, cat)
                    )
                )
        return events

    def _noise_times(self, rng: np.random.Generator, lam: float) -> np.ndarray:
        """Poisson(lam) arrival times, optionally diurnally modulated.

        Modulation uses thinning: candidates drawn at the peak-compatible
        rate are accepted with probability proportional to the day-cycle
        intensity ``1 + a*sin(2*pi*hour_of_day/24)``, preserving the
        expected total count.
        """
        a = self.profile.diurnal_amplitude
        span = self.t1 - self.t0
        if a <= 0.0:
            n = int(rng.poisson(lam))
            return self.t0 + rng.random(n) * span
        n_candidates = int(rng.poisson(lam * (1.0 + a)))
        times = self.t0 + rng.random(n_candidates) * span
        phase = 2.0 * np.pi * ((times % DAY) / DAY)
        accept = rng.random(n_candidates) * (1.0 + a) <= 1.0 + a * np.sin(phase)
        return times[accept]

    def _gen_noise(self, rng: np.random.Generator) -> list[GroundTruthEvent]:
        """Background non-fatal events at profile rates."""
        events: list[GroundTruthEvent] = []
        span_days = (self.t1 - self.t0) / DAY
        for spec in self.profile.noise:
            lam = spec.rate_per_day * span_days * self.noise_multiplier
            if lam <= 0:
                continue
            times = self._noise_times(rng, lam)
            events.extend(
                GroundTruthEvent(time=int(t), subcategory=spec.subcategory)
                for t in times
            )
        return events

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def generate(self) -> GeneratedLog:
        """Run all processes and expand through the CMCS simulator."""
        rng_jobs, rng_chain, rng_burst, rng_orphan, rng_noise, rng_cmcs, rng_attach = (
            spawn_child(self.rng, streams=7)
        )
        machine = Machine(self.profile.machine)
        wl = self.profile.workload
        trace = JobWorkloadModel(
            machine,
            mean_interarrival=wl.mean_interarrival,
            mean_duration=wl.mean_duration,
            sigma_duration=wl.sigma_duration,
            p_full_machine=wl.p_full_machine,
        ).generate(self.t0, self.t1, seed=rng_jobs)

        budgets = self.budgets()
        chain_q = {
            c: self._split(budgets[c], self.profile.chain_fraction.get(c, 0.0))
            for c in MainCategory
        }
        burst_q = {
            c: self._split(budgets[c], self.profile.burst_fraction.get(c, 0.0))
            for c in MainCategory
        }
        burst_events, unplaced = self._gen_bursts(rng_burst, burst_q)
        burst_times = np.array([e.time for e in burst_events], dtype=np.float64)
        events = self._gen_chains(rng_chain, chain_q, burst_times)
        events.extend(burst_events)
        orphan_q = {
            c: budgets[c] - chain_q[c] - (burst_q[c] - unplaced.get(c, 0))
            for c in MainCategory
        }
        events.extend(self._gen_orphans(rng_orphan, orphan_q))
        events.extend(self._gen_noise(rng_noise))

        events = self._attach_jobs(rng_attach, events, trace)
        events.sort(key=lambda e: e.time)

        cmcs = CmcsSimulator(
            machine,
            job_trace=trace,
            duplication=self.profile.duplication,
            seed=rng_cmcs,
            resolver=by_name,
        )
        raw = cmcs.expand(events)
        return GeneratedLog(
            profile=self.profile,
            scale=self.scale,
            t0=self.t0,
            t1=self.t1,
            ground_truth=events,
            raw=raw,
            job_trace=trace,
        )

    def _attach_jobs(
        self,
        rng: np.random.Generator,
        events: list[GroundTruthEvent],
        trace: JobTrace,
    ) -> list[GroundTruthEvent]:
        """Attach JOB_IDs to compute/I-O level events when a job is running."""
        out: list[GroundTruthEvent] = []
        for gt in events:
            sc = by_name(gt.subcategory)
            if sc.location_kind in (LocationKind.COMPUTE_CHIP, LocationKind.IO_NODE):
                jid = trace.any_job_at(gt.time)
                job = jid if jid != IDLE else NO_JOB
            else:
                job = NO_JOB
            out.append(
                GroundTruthEvent(
                    time=gt.time,
                    subcategory=gt.subcategory,
                    job_id=job,
                    location=gt.location,
                )
            )
        return out


def _largest_remainder(shares: np.ndarray) -> np.ndarray:
    """Round non-negative shares to integers preserving the total."""
    floor = np.floor(shares).astype(np.int64)
    deficit = int(round(shares.sum())) - int(floor.sum())
    if deficit > 0:
        order = np.argsort(-(shares - floor))
        floor[order[:deficit]] += 1
    return floor
