"""Heap-based causal warning resolution (the serving hot path).

The original :class:`~repro.online.detector.OnlineSession` rebuilt its whole
pending deque on every arrival (once in ``_expire`` and again in the fatal
coverage scan), which is O(P) per event — quadratic wall time once a warning
backlog builds up.  :class:`WarningResolver` keeps the same causal semantics
with O(log P) amortized work per event:

- an **expiry heap** keyed on ``horizon_end`` pops warnings the moment their
  horizon has fully elapsed (hit or false alarm decided right there);
- an **activation heap** keyed on ``horizon_start`` moves warnings into the
  *active interval index* exactly when their horizon opens, so a coverage
  query never scans warnings whose horizon has not started;
- a **coverage epoch** counter marks hits in O(1): a warning is a hit iff at
  least one failure was observed while it was active, i.e. iff the epoch
  advanced between its activation and its expiry;
- an **issue heap** (lazy deletion) answers "earliest issue time among the
  active, covering warnings" — the lead-time anchor — in O(log P) amortized.

Every state transition increments :attr:`WarningResolver.resolution_ops`;
the regression suite asserts total ops stay linear in stream length, so a
reintroduced per-event rebuild fails loudly rather than just slowly.

Semantics are bit-identical to the deque implementation (enforced by
``tests/online/test_resolution.py`` against a reference copy, including ties
at horizon boundaries): a warning whose ``horizon_end`` equals the current
time is still live, and a failure at exactly ``horizon_start`` counts as
covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Optional

from repro.predictors.base import FailureWarning


@dataclass
class SessionStats:
    """Operator-facing counters of causal warning resolution."""

    events: int = 0
    failures: int = 0
    warnings: int = 0
    #: Warnings whose horizon contained >= 1 failure.
    hits: int = 0
    #: Warnings whose horizon fully elapsed without a failure.
    false_alarms: int = 0
    #: Failures covered by >= 1 active warning when they occurred.
    caught_failures: int = 0
    missed_failures: int = 0
    #: Lead seconds (warning issue -> failure) of caught failures.
    lead_seconds: list[float] = field(default_factory=list)

    @property
    def precision_so_far(self) -> float:
        """Precision over *resolved* warnings (hits + expired misses)."""
        resolved = self.hits + self.false_alarms
        return 1.0 if resolved == 0 else self.hits / resolved

    @property
    def recall_so_far(self) -> float:
        return 1.0 if self.failures == 0 else self.caught_failures / self.failures

    @property
    def mean_lead(self) -> float:
        if not self.lead_seconds:
            return float("nan")
        return sum(self.lead_seconds) / len(self.lead_seconds)

    def merge(self, other: "SessionStats") -> "SessionStats":
        """Accumulate ``other`` into this instance (pool aggregation)."""
        self.events += other.events
        self.failures += other.failures
        self.warnings += other.warnings
        self.hits += other.hits
        self.false_alarms += other.false_alarms
        self.caught_failures += other.caught_failures
        self.missed_failures += other.missed_failures
        self.lead_seconds.extend(other.lead_seconds)
        return self


class _PendingWarning:
    """Mutable resolution state of one unresolved warning."""

    __slots__ = ("warning", "active", "activation_epoch")

    def __init__(self, warning: FailureWarning) -> None:
        self.warning = warning
        self.active = False
        self.activation_epoch = -1


class WarningResolver:
    """Causal hit/false-alarm resolution over a pending-warning set.

    Drive it strictly forward: :meth:`advance` to the event's time, then
    :meth:`observe_failure` if the event is fatal, then :meth:`add` for each
    warning the event raised.  ``stats`` accumulates the operator counters;
    :meth:`finalize` resolves everything still outstanding.

    The resolver is detector-agnostic on purpose — the serving engine, the
    online session and the throughput benchmarks all share this one
    implementation.
    """

    #: now-value used by :meth:`finalize` (later than any plausible horizon).
    END_OF_TIME = 2**62

    def __init__(self, stats: Optional[SessionStats] = None) -> None:
        self.stats = stats if stats is not None else SessionStats()
        #: seq -> entry, for every unresolved (pending or active) warning.
        self._entries: dict[int, _PendingWarning] = {}
        self._start_heap: list[tuple[int, int]] = []  # (horizon_start, seq)
        self._end_heap: list[tuple[int, int]] = []  # (horizon_end, seq)
        self._issue_heap: list[tuple[int, int]] = []  # (issued_at, seq), lazy
        self._coverage_epoch = 0
        self._seq = 0
        #: Cumulative heap/dict transitions — the resolution work counter.
        self.resolution_ops = 0

    @property
    def pending_count(self) -> int:
        """Unresolved warnings (horizon not yet fully elapsed)."""
        return len(self._entries)

    def pending_warnings(self) -> list[FailureWarning]:
        """The unresolved warnings, in issue order (enqueue sequence).

        A diagnostic accessor — the lifecycle hot-swap barrier reports how
        much old-model work is still in flight at swap time.  O(P) copy;
        not for per-event use (RL008 applies to callers, not to this
        snapshot method).
        """
        return [
            self._entries[seq].warning for seq in sorted(self._entries)
        ]

    def advance(self, now: int) -> None:
        """Activate and expire warnings against the clock at ``now``."""
        entries = self._entries
        ops = 0
        start_heap = self._start_heap
        while start_heap and start_heap[0][0] <= now:
            _, seq = heappop(start_heap)
            entry = entries[seq]
            entry.active = True
            entry.activation_epoch = self._coverage_epoch
            heappush(self._issue_heap, (entry.warning.issued_at, seq))
            ops += 2
        end_heap = self._end_heap
        stats = self.stats
        epoch = self._coverage_epoch
        while end_heap and end_heap[0][0] < now:
            _, seq = heappop(end_heap)
            entry = entries.pop(seq)
            if entry.active and epoch > entry.activation_epoch:
                stats.hits += 1
            else:
                stats.false_alarms += 1
            ops += 2
        self.resolution_ops += ops

    def observe_failure(self, now: int) -> bool:
        """Record a failure at ``now``; returns True if it was covered.

        Call after :meth:`advance(now) <advance>`: every entry still in the
        active index then satisfies ``horizon_start <= now <= horizon_end``,
        so coverage is simply "is the active index non-empty", and the
        earliest covering issue time is the issue-heap top (stale tops —
        expired warnings — are discarded lazily).
        """
        stats = self.stats
        stats.failures += 1
        issue_heap = self._issue_heap
        entries = self._entries
        while issue_heap and issue_heap[0][1] not in entries:
            heappop(issue_heap)
            self.resolution_ops += 1
        self._coverage_epoch += 1
        if not issue_heap:
            stats.missed_failures += 1
            return False
        stats.caught_failures += 1
        stats.lead_seconds.append(now - issue_heap[0][0])
        return True

    def add(self, warning: FailureWarning) -> None:
        """Enqueue a freshly raised warning for resolution."""
        seq = self._seq
        self._seq = seq + 1
        self._entries[seq] = _PendingWarning(warning)
        heappush(self._start_heap, (warning.horizon_start, seq))
        heappush(self._end_heap, (warning.horizon_end, seq))
        self.stats.warnings += 1
        self.resolution_ops += 2

    def finalize(self) -> SessionStats:
        """Resolve every outstanding warning (end of shift); returns stats."""
        self.advance(self.END_OF_TIME)
        return self.stats
