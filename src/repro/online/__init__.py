"""Online deployment surface (paper §3.3 discussion).

The paper argues the meta-learner is cheap enough "to deploy ... as an
online prediction engine" — rule matching is trivial and only an hour of
history must be retained.  The batch predictors in :mod:`repro.predictors`
and :mod:`repro.meta` process whole stores; this subpackage provides the
event-at-a-time counterpart a monitoring daemon would embed:

- :class:`repro.online.detector.OnlineDetector` — feed classified events one
  by one (or in column batches via ``feed_batch``/``feed_store``); warnings
  are returned the moment they are raised.  Its output is bit-identical to
  :meth:`repro.meta.stacked.MetaLearner.predict` on the same stream
  (tested), so offline evaluation transfers to deployment.
- :class:`repro.online.detector.OnlineSession` — bookkeeping wrapper that
  also resolves warnings against observed failures in real time, maintaining
  the operator-facing counters (hits, false alarms, misses, lead times).
- :class:`repro.online.resolution.WarningResolver` — the heap-based
  resolution core (O(log P) amortized per event in the pending count P),
  shared by the session and the :mod:`repro.serve` engine.

For serving many independent streams from one fitted model, see
:mod:`repro.serve` (sharded detector pool, throughput accounting).
"""

from repro.online.detector import OnlineDetector, OnlineSession
from repro.online.resolution import SessionStats, WarningResolver

__all__ = ["OnlineDetector", "OnlineSession", "SessionStats", "WarningResolver"]
