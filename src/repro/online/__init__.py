"""Online deployment surface (paper §3.3 discussion).

The paper argues the meta-learner is cheap enough "to deploy ... as an
online prediction engine" — rule matching is trivial and only an hour of
history must be retained.  The batch predictors in :mod:`repro.predictors`
and :mod:`repro.meta` process whole stores; this subpackage provides the
event-at-a-time counterpart a monitoring daemon would embed:

- :class:`repro.online.detector.OnlineDetector` — feed classified events one
  by one; warnings are returned the moment they are raised.  Its output is
  bit-identical to :meth:`repro.meta.stacked.MetaLearner.predict` on the
  same stream (tested), so offline evaluation transfers to deployment.
- :class:`repro.online.detector.OnlineSession` — bookkeeping wrapper that
  also resolves warnings against observed failures in real time, maintaining
  the operator-facing counters (hits, false alarms, misses, lead times).
"""

from repro.online.detector import OnlineDetector, OnlineSession, SessionStats

__all__ = ["OnlineDetector", "OnlineSession", "SessionStats"]
