"""Event-at-a-time failure detection (the daemon-facing API).

:class:`OnlineDetector` wraps a fitted :class:`~repro.meta.stacked.MetaLearner`
(or its :class:`~repro.meta.stacked.MetaStream`) behind a feed interface that
accepts raw :class:`~repro.ras.events.RasEvent` objects: each event is
classified on arrival and pushed through the dispatch state machine, and any
warnings raised by it are returned immediately.  :meth:`OnlineDetector.feed_batch`
and :meth:`OnlineDetector.feed_store` are the columnar fast paths — same
warnings, amortized dispatch (see ``docs/serving.md``).

:class:`OnlineSession` adds real-time *resolution*: it matches warnings
against the failures that subsequently arrive, expiring horizons as the
clock advances, and maintains the counters an operator dashboard would show
(caught/missed failures, false alarms, lead times).  Resolution is causal —
a warning is only counted as a false alarm once its horizon has fully
elapsed without a failure — and runs on the heap-based
:class:`~repro.online.resolution.WarningResolver` (O(log P) amortized per
event in the pending-warning count P).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.meta.stacked import MetaLearner, MetaStream
from repro.online.resolution import SessionStats, WarningResolver
from repro.predictors.base import FailureWarning
from repro.ras.events import RasEvent
from repro.ras.store import UNCLASSIFIED, EventStore
from repro.taxonomy.classifier import TaxonomyClassifier

__all__ = ["OnlineDetector", "OnlineSession", "SessionStats"]


class OnlineDetector:
    """Streaming front end of a fitted meta-learner.

    Feed events in time order with :meth:`feed`; each call returns the
    warnings that event raised.  Output over a stream equals
    ``meta.predict(store)`` over the equivalent store (same dispatch state
    machine underneath).  :meth:`feed_batch` accepts whole column batches in
    the classifier's label space; :meth:`feed_store` replays a classified
    :class:`~repro.ras.store.EventStore` directly.
    """

    def __init__(self, meta: MetaLearner) -> None:
        if not meta.is_fitted:
            raise ValueError("MetaLearner must be fitted before going online")
        self.meta = meta
        self.classifier: TaxonomyClassifier = meta.statistical.classifier
        self._stream: MetaStream = meta.stream()
        self._label_index = {
            name: i for i, name in enumerate(self.classifier.label_names)
        }
        #: Label id -> main category, hoisted for the batch path.
        self._category_table = [
            self.classifier.category_of_label(name)
            for name in self.classifier.label_names
        ]
        self.events_seen = 0

    @property
    def dispatch_counts(self) -> dict[str, int]:
        """Warnings emitted per base method so far."""
        return dict(self._stream.dispatch_counts)

    def feed(self, event: RasEvent) -> list[FailureWarning]:
        """Classify and process one incoming RAS event."""
        label = event.subcategory or self.classifier.classify(event.entry_data)
        subcat_id = self._label_index.get(label)
        if subcat_id is None:
            # Unknown labels are treated as the classifier's fallback bucket.
            subcat_id = self._label_index[self.classifier.label_names[-1]]
            label = self.classifier.label_names[-1]
        category = self.classifier.category_of_label(label)
        is_fatal = event.is_fatal
        self.events_seen += 1
        return self._stream.step(event.time, subcat_id, is_fatal, category)

    def feed_batch(
        self,
        times: np.ndarray,
        subcat_ids: np.ndarray,
        fatal_mask: np.ndarray,
        categories=None,
    ) -> list[FailureWarning]:
        """Process a column batch; returns all warnings it raised, in order.

        ``subcat_ids`` must be in the *classifier's* label space (use
        :meth:`feed_store` for raw stores, which remaps the store's label
        table first).  ``categories`` is the label-indexed category table and
        defaults to the classifier's own; output is element-for-element
        identical to calling :meth:`feed` per event.
        """
        if categories is None:
            categories = self._category_table
        warnings = self._stream.step_batch(
            times, subcat_ids, fatal_mask, categories
        )
        self.events_seen += len(times)
        return warnings

    def label_ids_for(self, store: EventStore) -> np.ndarray:
        """Map a classified store's subcategory column to classifier label ids.

        Labels the classifier never saw fall back to its catch-all bucket —
        the same policy :meth:`feed` applies per event, vectorized over the
        store's (small) label table instead of per row.
        """
        if len(store) and bool(np.any(store.subcat_ids == UNCLASSIFIED)):
            raise ValueError(
                "store has unclassified rows; run the Phase-1 pipeline first"
            )
        fallback = self._label_index[self.classifier.label_names[-1]]
        remap = np.array(
            [self._label_index.get(name, fallback) for name in store.subcat_table]
            or [fallback],
            dtype=np.int64,
        )
        return remap[store.subcat_ids]

    def feed_store(
        self, store: EventStore, chunk_events: Optional[int] = None
    ) -> list[FailureWarning]:
        """Replay a whole classified store through the batch path.

        ``chunk_events`` bounds the working set: the store is consumed in
        contiguous zero-copy slices of at most that many rows (the batch
        path is per-event equivalent, so any chunking yields the identical
        warning stream).  ``None`` feeds the store as one batch.
        """
        if len(store) == 0:
            return []
        if chunk_events is None:
            return self.feed_batch(
                store.times, self.label_ids_for(store), store.fatal_mask()
            )
        warnings: list[FailureWarning] = []
        for chunk in store.iter_chunks(chunk_events):
            warnings.extend(
                self.feed_batch(
                    chunk.times, self.label_ids_for(chunk), chunk.fatal_mask()
                )
            )
        return warnings


class OnlineSession:
    """Detector plus causal warning resolution.

    ``process`` returns the warnings raised by the event; resolution state
    is read off :attr:`stats` at any time.  A warning becomes a *hit* the
    first time a failure lands in its horizon and a *false alarm* when an
    event arrives after its horizon with no failure having landed.
    :meth:`process_store` is the batched equivalent — identical stats,
    columnar feed.
    """

    def __init__(self, meta: MetaLearner) -> None:
        self.detector = OnlineDetector(meta)
        self.resolver = WarningResolver()

    def swap_model(self, meta: MetaLearner) -> None:
        """Install a new fitted model at a warning-safe barrier.

        Call *between* events (every per-event/per-batch entry point is
        atomic, so any inter-event point is a barrier).  The detector is
        rebuilt from scratch — the new model starts from empty window state,
        exactly as a cold restart would — while the resolver keeps running,
        so warnings the old model issued still resolve against the events
        that follow.  The emitted warning stream is therefore identical,
        element for element, to stopping this session at the barrier and
        cold-starting the new model on the remaining stream (tested in
        ``tests/lifecycle/test_swap.py``).
        """
        events_seen = self.detector.events_seen
        self.detector = OnlineDetector(meta)
        self.detector.events_seen = events_seen

    @property
    def stats(self) -> SessionStats:
        """The resolver's operator-facing counters."""
        return self.resolver.stats

    @property
    def pending_count(self) -> int:
        """Warnings whose horizon has not fully elapsed yet."""
        return self.resolver.pending_count

    def process(self, event: RasEvent) -> list[FailureWarning]:
        """Feed one event; resolve outstanding warnings against it."""
        resolver = self.resolver
        resolver.advance(event.time)
        resolver.stats.events += 1
        if event.is_fatal:
            resolver.observe_failure(event.time)
        raised = self.detector.feed(event)
        for w in raised:
            resolver.add(w)
        return raised

    def process_store(
        self, store: EventStore, chunk_events: Optional[int] = None
    ) -> list[FailureWarning]:
        """Feed a whole classified store through the batched path.

        Detection runs once over the columns (:meth:`OnlineDetector.feed_store`);
        resolution then replays the merged event/warning timeline.  A warning
        issued at time ``t`` never covers events at ``t`` (horizons start
        strictly later), so enqueueing each warning just before the first
        event after its issue time reproduces the per-event interleaving
        exactly — :attr:`stats` comes out identical to calling
        :meth:`process` per event.

        With ``chunk_events`` the store is processed in contiguous slices
        of at most that many rows, bounding the working set for columnar
        stores.  Boundary warnings enqueue at the end of their chunk rather
        than mid-merge, which is observationally identical: a warning's
        horizon opens strictly after its issue time, so it is inert for any
        same-timestamp event either way.
        """
        if chunk_events is not None:
            chunked: list[FailureWarning] = []
            for chunk in store.iter_chunks(chunk_events):
                chunked.extend(self.process_store(chunk))
            return chunked
        warnings = self.detector.feed_store(store)
        resolver = self.resolver
        stats = resolver.stats
        advance = resolver.advance
        observe_failure = resolver.observe_failure
        add = resolver.add
        times = store.times.tolist()
        fatal_list = store.fatal_mask().tolist()
        wi = 0
        n_warnings = len(warnings)
        for t, is_fatal in zip(times, fatal_list):
            while wi < n_warnings and warnings[wi].issued_at < t:
                add(warnings[wi])
                wi += 1
            advance(t)
            stats.events += 1
            if is_fatal:
                observe_failure(t)
        while wi < n_warnings:
            add(warnings[wi])
            wi += 1
        return warnings

    def finish(self) -> SessionStats:
        """Resolve every outstanding warning (end of shift) and return stats."""
        return self.resolver.finalize()
