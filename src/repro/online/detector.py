"""Event-at-a-time failure detection (the daemon-facing API).

:class:`OnlineDetector` wraps a fitted :class:`~repro.meta.stacked.MetaLearner`
(or its :class:`~repro.meta.stacked.MetaStream`) behind a feed interface that
accepts raw :class:`~repro.ras.events.RasEvent` objects: each event is
classified on arrival and pushed through the dispatch state machine, and any
warnings raised by it are returned immediately.

:class:`OnlineSession` adds real-time *resolution*: it matches warnings
against the failures that subsequently arrive, expiring horizons as the
clock advances, and maintains the counters an operator dashboard would show
(caught/missed failures, false alarms, lead times).  Resolution is causal —
a warning is only counted as a false alarm once its horizon has fully
elapsed without a failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.meta.stacked import MetaLearner, MetaStream
from repro.predictors.base import FailureWarning
from repro.ras.events import RasEvent
from repro.taxonomy.classifier import TaxonomyClassifier


class OnlineDetector:
    """Streaming front end of a fitted meta-learner.

    Feed events in time order with :meth:`feed`; each call returns the
    warnings that event raised.  Output over a stream equals
    ``meta.predict(store)`` over the equivalent store (same dispatch state
    machine underneath).
    """

    def __init__(self, meta: MetaLearner) -> None:
        if not meta.is_fitted:
            raise ValueError("MetaLearner must be fitted before going online")
        self.meta = meta
        self.classifier: TaxonomyClassifier = meta.statistical.classifier
        self._stream: MetaStream = meta.stream()
        self._label_index = {
            name: i for i, name in enumerate(self.classifier.label_names)
        }
        self.events_seen = 0

    @property
    def dispatch_counts(self) -> dict[str, int]:
        """Warnings emitted per base method so far."""
        return dict(self._stream.dispatch_counts)

    def feed(self, event: RasEvent) -> list[FailureWarning]:
        """Classify and process one incoming RAS event."""
        label = event.subcategory or self.classifier.classify(event.entry_data)
        subcat_id = self._label_index.get(label)
        if subcat_id is None:
            # Unknown labels are treated as the classifier's fallback bucket.
            subcat_id = self._label_index[self.classifier.label_names[-1]]
            label = self.classifier.label_names[-1]
        category = self.classifier.category_of_label(label)
        is_fatal = event.is_fatal
        self.events_seen += 1
        return self._stream.step(event.time, subcat_id, is_fatal, category)


@dataclass
class SessionStats:
    """Operator-facing counters of an :class:`OnlineSession`."""

    events: int = 0
    failures: int = 0
    warnings: int = 0
    #: Warnings whose horizon contained >= 1 failure.
    hits: int = 0
    #: Warnings whose horizon fully elapsed without a failure.
    false_alarms: int = 0
    #: Failures covered by >= 1 active warning when they occurred.
    caught_failures: int = 0
    missed_failures: int = 0
    #: Lead seconds (warning issue -> failure) of caught failures.
    lead_seconds: list[float] = field(default_factory=list)

    @property
    def precision_so_far(self) -> float:
        """Precision over *resolved* warnings (hits + expired misses)."""
        resolved = self.hits + self.false_alarms
        return 1.0 if resolved == 0 else self.hits / resolved

    @property
    def recall_so_far(self) -> float:
        return 1.0 if self.failures == 0 else self.caught_failures / self.failures

    @property
    def mean_lead(self) -> float:
        if not self.lead_seconds:
            return float("nan")
        return sum(self.lead_seconds) / len(self.lead_seconds)


class OnlineSession:
    """Detector plus causal warning resolution.

    ``process`` returns the warnings raised by the event; resolution state
    is read off :attr:`stats` at any time.  A warning becomes a *hit* the
    first time a failure lands in its horizon and a *false alarm* when an
    event arrives after its horizon with no failure having landed.
    """

    def __init__(self, meta: MetaLearner) -> None:
        self.detector = OnlineDetector(meta)
        self.stats = SessionStats()
        #: Unresolved warnings, ordered by horizon end.
        self._pending: deque[tuple[FailureWarning, bool]] = deque()

    def _expire(self, now: int) -> None:
        keep: deque[tuple[FailureWarning, bool]] = deque()
        for warning, hit in self._pending:
            if warning.horizon_end < now:
                if hit:
                    self.stats.hits += 1
                else:
                    self.stats.false_alarms += 1
            else:
                keep.append((warning, hit))
        self._pending = keep

    def process(self, event: RasEvent) -> list[FailureWarning]:
        """Feed one event; resolve outstanding warnings against it."""
        self._expire(event.time)
        self.stats.events += 1

        if event.is_fatal:
            self.stats.failures += 1
            covered = False
            earliest_issue: Optional[int] = None
            updated: deque[tuple[FailureWarning, bool]] = deque()
            for warning, hit in self._pending:
                if warning.covers(event.time):
                    hit = True
                    covered = True
                    if earliest_issue is None or warning.issued_at < earliest_issue:
                        earliest_issue = warning.issued_at
                updated.append((warning, hit))
            self._pending = updated
            if covered:
                self.stats.caught_failures += 1
                assert earliest_issue is not None
                self.stats.lead_seconds.append(event.time - earliest_issue)
            else:
                self.stats.missed_failures += 1

        raised = self.detector.feed(event)
        for w in raised:
            self.stats.warnings += 1
            self._pending.append((w, False))
        return raised

    def finish(self) -> SessionStats:
        """Resolve every outstanding warning (end of shift) and return stats."""
        self._expire(now=2**62)
        return self.stats
