"""Command-line interface (``bgl-predict``).

Subcommands mirror the pipeline stages:

- ``generate``   — synthesize a raw RAS log for a profile;
- ``preprocess`` — run Phase 1 on a log file and report compression stats;
- ``mine``       — mine association rules from a preprocessed log;
- ``evaluate``   — cross-validate a predictor (statistical / rule / meta);
- ``sweep``      — prediction-window sweep (Figures 4-5 style output).
"""

from repro.cli.main import main

__all__ = ["main"]
