"""``bgl-predict`` entry point and subcommand implementations."""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.core.serialize import load_model, save_model
from repro.evaluation.crossval import cross_validate
from repro.evaluation.spec import PredictorSpec
from repro.obs import MetricsRegistry, get_registry, to_json, use
from repro.evaluation.sweep import format_sweep, sweep
from repro.predictors.rulebased import RuleBasedPredictor
from repro.preprocess.summary import (
    category_fatal_counts,
    format_table4,
    log_summary,
    severity_breakdown,
)
from repro.ras.columnar import is_columnar_dir, open_store
from repro.ras.logfile import LogDialect, iter_log_lines, read_log, write_log
from repro.synth.generator import LogGenerator
from repro.synth.profiles import profile_by_name
from repro.util.timeutil import MINUTE


class _CliError(Exception):
    """Operator-facing CLI error; caught in :func:`main` -> exit code 2."""


def _add_emit_metrics_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics/span JSON snapshot to PATH "
             "(see docs/observability.md)",
    )


def _add_common_predictor_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--rule-window", type=float, default=15.0,
        help="rule-generation window, minutes (default 15)",
    )
    p.add_argument(
        "--prediction-window", type=float, default=30.0,
        help="prediction window, minutes (default 30)",
    )
    p.add_argument("--min-support", type=float, default=0.04)
    p.add_argument("--min-confidence", type=float, default=0.2)
    p.add_argument("--folds", type=int, default=10, help="CV folds (default 10)")


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for fold evaluation "
             "(default: $REPRO_JOBS, else serial)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed cache for fitted artifacts; repeat runs "
             "over the same log reuse mined rules "
             "(default: $REPRO_CACHE_DIR, else off)",
    )
    p.add_argument(
        "--incremental", action="store_true", default=None,
        help="maintain mining state across fits so overlapping training "
             "windows pay only the delta (serial backend; bit-identical "
             "results; default: $REPRO_INCREMENTAL, else off)",
    )


def _add_store_input_args(p: argparse.ArgumentParser) -> None:
    """Unified event-source flags: positional log file OR ``--store DIR``.

    The positional also auto-detects columnar store directories, so either
    spelling works; ``--store`` exists to make scripts explicit about what
    they expect (it refuses anything that is not a columnar store).
    """
    p.add_argument(
        "log", nargs="?", default=None,
        help="raw log file, or a columnar store directory (auto-detected)",
    )
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="columnar event-store directory to read instead of a log file",
    )
    p.add_argument(
        "--store-backend", choices=["memory", "columnar"], default=None,
        help="in-process store representation for loaded logs "
             "(default: $REPRO_STORE_BACKEND, else memory); columnar spills "
             "sorted stores to disk-backed memory maps",
    )


def _add_action_args(p: argparse.ArgumentParser) -> None:
    """Prediction-to-action flags shared by serve-replay and serve-daemon."""
    p.add_argument(
        "--policy", default=None,
        choices=["cost-aware", "checkpoint", "migrate", "quarantine", "never"],
        help="act on warnings through repro.actions and settle a ledger "
             "(default: off; see docs/actions.md for the policy catalog)",
    )
    p.add_argument(
        "--checkpoint-cost", type=float, default=120.0, metavar="SECONDS",
        help="seconds one proactive checkpoint stalls a job (default 120)",
    )
    p.add_argument(
        "--migration-cost", type=float, default=180.0, metavar="SECONDS",
        help="seconds migrating a job off a midplane costs (default 180)",
    )
    p.add_argument(
        "--restart-cost", type=float, default=300.0, metavar="SECONDS",
        help="seconds a failed job pays to restart (default 300)",
    )
    p.add_argument(
        "--action-seed", type=int, default=0, metavar="N",
        help="seed for stochastic action policies; stamped into the ledger "
             "(default 0)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bgl-predict",
        description="Three-phase meta-learning failure predictor for Blue Gene/L",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a raw RAS log")
    g.add_argument("--profile", default="ANL", help="ANL or SDSC")
    g.add_argument("--scale", type=float, default=0.1)
    g.add_argument("--noise", type=float, default=1.0, help="noise multiplier")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", "-o", default=None, help="log file to write")
    g.add_argument(
        "--dialect", choices=["repro", "loghub"], default="repro",
        help="output line format",
    )
    g.add_argument(
        "--store", metavar="DIR", default=None,
        help="stream the log into a columnar store directory instead of "
             "a text file (out-of-core; combine with --segments)",
    )
    g.add_argument(
        "--segments", type=int, default=1, metavar="N",
        help="with --store: concatenate N independently-seeded generations, "
             "each time-shifted past the last; peak memory stays one "
             "segment (default 1)",
    )

    p = sub.add_parser("preprocess", help="run Phase 1 on a log file")
    _add_store_input_args(p)
    p.add_argument("--output", "-o", help="write the unique-event log here")
    p.add_argument("--threshold", type=float, default=300.0)

    m = sub.add_parser("mine", help="mine association rules")
    _add_store_input_args(m)
    m.add_argument("--rule-window", type=float, default=15.0, help="minutes")
    m.add_argument("--min-support", type=float, default=0.04)
    m.add_argument("--min-confidence", type=float, default=0.2)
    m.add_argument("--miner", choices=["apriori", "fpgrowth"], default="apriori")
    m.add_argument("--top", type=int, default=20, help="rules to print")

    e = sub.add_parser("evaluate", help="cross-validate a predictor")
    _add_store_input_args(e)
    e.add_argument(
        "--method", choices=["statistical", "rule", "meta"], default="meta"
    )
    _add_common_predictor_args(e)
    _add_engine_args(e)

    s = sub.add_parser("sweep", help="prediction-window sweep")
    _add_store_input_args(s)
    s.add_argument(
        "--method", choices=["statistical", "rule", "meta"], default="meta"
    )
    s.add_argument(
        "--windows", default="5,10,15,20,30,40,50,60",
        help="comma-separated minutes",
    )
    s.add_argument(
        "--sweep-param", choices=["prediction_window", "rule_window"],
        default="prediction_window",
        help="which window the grid varies (default prediction_window)",
    )
    _add_common_predictor_args(s)
    _add_engine_args(s)

    t = sub.add_parser(
        "train", help="train the three-phase predictor and save the model"
    )
    _add_store_input_args(t)
    t.add_argument("--model", "-m", required=True, help="model JSON to write")
    _add_common_predictor_args(t)

    w = sub.add_parser(
        "watch", help="stream a log through a trained model (online mode)"
    )
    _add_store_input_args(w)
    w.add_argument("--model", "-m", required=True, help="model JSON to load")
    w.add_argument(
        "--quiet", action="store_true",
        help="suppress per-warning lines; print the summary only",
    )

    v = sub.add_parser(
        "serve-replay",
        help="replay a log through the sharded serving engine (throughput mode)",
    )
    _add_store_input_args(v)
    v.add_argument(
        "--model", "-m", default=None,
        help="model JSON to load (or use --registry)",
    )
    v.add_argument(
        "--shards", type=int, default=4,
        help="detector shards in the pool (default 4)",
    )
    v.add_argument(
        "--key", choices=["midplane", "job"], default="midplane",
        help="stream partition key (default midplane)",
    )
    v.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for shard replay "
             "(default: $REPRO_JOBS, else serial)",
    )
    v.add_argument(
        "--incremental", action="store_true", default=None,
        help="lifecycle mode: maintain mining state across retrains so "
             "sliding windows pay only the delta (bit-identical snapshots; "
             "default: $REPRO_INCREMENTAL, else off)",
    )
    v.add_argument(
        "--registry", default=None, metavar="DIR",
        help="model registry directory; serves --model-ref instead of "
             "--model and receives retrained snapshots",
    )
    v.add_argument(
        "--model-ref", default="latest", metavar="REF",
        help="registry ref to serve: tag, snapshot id, or id prefix "
             "(default latest)",
    )
    v.add_argument(
        "--retrain-every", type=int, default=None, metavar="N",
        help="lifecycle mode: refit the model every N events "
             "(requires --registry)",
    )
    v.add_argument(
        "--drift-threshold", type=float, default=None, metavar="PSI",
        help="lifecycle mode: refit when the windowed subcategory PSI "
             "reaches this level (requires --registry; see docs/lifecycle.md)",
    )
    v.add_argument(
        "--drift-window", type=int, default=1024, metavar="N",
        help="drift monitor's live window in events; the stream's first "
             "window also seeds the reference histogram (default 1024)",
    )
    v.add_argument(
        "--retrain-window", type=int, default=50_000, metavar="N",
        help="sliding training window for refits, in events (default 50000)",
    )
    v.add_argument(
        "--chunk", type=int, default=2048, metavar="N",
        help="serving chunk in events: the hot-swap barrier granularity in "
             "lifecycle mode, and the streaming-replay chunk when the input "
             "is a columnar store (default 2048)",
    )
    _add_action_args(v)

    d = sub.add_parser(
        "serve-daemon",
        help="run the live ingestion daemon (NDJSON line protocol + "
             "/metrics and /health)",
    )
    d.add_argument(
        "--model", "-m", default=None,
        help="model JSON to load (or use --registry)",
    )
    d.add_argument("--host", default="127.0.0.1", help="bind address")
    d.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: OS-assigned, printed at startup)",
    )
    d.add_argument(
        "--queue-bound", type=int, default=4096, metavar="N",
        help="per-stream ingest queue bound; a full queue answers BUSY "
             "(default 4096)",
    )
    d.add_argument(
        "--shards", type=int, default=4,
        help="detector shards per stream pool (default 4)",
    )
    d.add_argument(
        "--key", choices=["midplane", "job"], default="midplane",
        help="shard partition key (default midplane)",
    )
    d.add_argument(
        "--chunk", type=int, default=512, metavar="N",
        help="worker feed chunk in events; in lifecycle mode also the "
             "hot-swap barrier granularity (default 512)",
    )
    d.add_argument(
        "--max-streams", type=int, default=64, metavar="N",
        help="refuse new stream ids beyond this count (default 64)",
    )
    d.add_argument(
        "--state", default=None, metavar="PATH",
        help="resolved-counter state file: restored at startup (if present) "
             "and rewritten after a clean drain — a kill/restart cycle "
             "loses no resolved warnings",
    )
    d.add_argument(
        "--registry", default=None, metavar="DIR",
        help="model registry directory; serves --model-ref instead of "
             "--model and receives retrained snapshots",
    )
    d.add_argument(
        "--model-ref", default="latest", metavar="REF",
        help="registry ref to serve (default latest)",
    )
    d.add_argument(
        "--retrain-every", type=int, default=None, metavar="N",
        help="lifecycle mode: refit each stream's model every N events "
             "(requires --registry)",
    )
    d.add_argument(
        "--drift-threshold", type=float, default=None, metavar="PSI",
        help="lifecycle mode: refit when the windowed subcategory PSI "
             "reaches this level (requires --registry)",
    )
    d.add_argument(
        "--drift-window", type=int, default=1024, metavar="N",
        help="drift monitor window in events; each stream's first window "
             "seeds its reference histogram (default 1024)",
    )
    d.add_argument(
        "--retrain-window", type=int, default=50_000, metavar="N",
        help="sliding training window for refits, in events (default 50000)",
    )
    d.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for lifecycle refits "
             "(default: $REPRO_JOBS, else serial)",
    )
    d.add_argument(
        "--incremental", action="store_true", default=None,
        help="maintain mining state across lifecycle retrains so sliding "
             "windows pay only the delta (bit-identical snapshots; "
             "default: $REPRO_INCREMENTAL, else off)",
    )
    d.add_argument(
        "--store", metavar="DIR", default=None,
        help="archive every accepted event to a columnar store directory "
             "(append-only; resumes across restarts; replayable with "
             "'serve-replay DIR')",
    )
    _add_action_args(d)

    em = sub.add_parser(
        "emit",
        help="drive a log at a running serve-daemon as synthetic load",
    )
    _add_store_input_args(em)
    em.add_argument("--host", default="127.0.0.1", help="daemon address")
    em.add_argument("--port", type=int, required=True, help="daemon port")
    em.add_argument(
        "--streams", type=int, default=3,
        help="concurrent stream ids to emit on (default 3)",
    )
    em.add_argument(
        "--batch", type=int, default=256, metavar="N",
        help="events per wire batch frame (default 256)",
    )
    em.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help="replay the log K times, each copy time-shifted past the "
             "last (default 1)",
    )
    em.add_argument(
        "--retry-delay", type=float, default=0.02, metavar="SEC",
        help="backoff before resending after BUSY (default 0.02)",
    )
    em.add_argument(
        "--max-retries", type=int, default=200, metavar="N",
        help="consecutive BUSY retries before giving up (default 200)",
    )
    em.add_argument(
        "--drain", action="store_true",
        help="ask the daemon to drain and exit once the load is delivered",
    )

    mo = sub.add_parser(
        "model", help="manage the versioned model registry (save/load/list)"
    )
    mo_sub = mo.add_subparsers(dest="model_command", required=True)
    ms = mo_sub.add_parser(
        "save", help="register a model JSON file as a snapshot"
    )
    ms.add_argument("model_json", help="model JSON written by 'train'")
    ms.add_argument("--registry", required=True, metavar="DIR")
    ms.add_argument(
        "--tag", action="append", default=[], metavar="NAME",
        help="named ref(s) to point at the snapshot (repeatable)",
    )
    ms.add_argument("--note", default="", help="free-form provenance note")
    ms.add_argument(
        "--parent", default=None, metavar="REF",
        help="lineage parent (tag, id, or prefix)",
    )
    ml = mo_sub.add_parser(
        "load", help="export a registry snapshot back to a model JSON file"
    )
    ml.add_argument("ref", help="tag, snapshot id, or unique id prefix")
    ml.add_argument("--registry", required=True, metavar="DIR")
    ml.add_argument("--output", "-o", required=True, help="model JSON to write")
    mls = mo_sub.add_parser("list", help="list snapshots, tags and lineage")
    mls.add_argument("--registry", required=True, metavar="DIR")

    st = sub.add_parser(
        "store", help="inspect and convert columnar event stores"
    )
    st_sub = st.add_subparsers(dest="store_command", required=True)
    si = st_sub.add_parser(
        "info", help="print a columnar store's manifest summary"
    )
    si.add_argument("path", help="columnar store directory")
    si.add_argument(
        "--fingerprint", action="store_true",
        help="also compute the content fingerprint (reads every column)",
    )
    sc = st_sub.add_parser(
        "convert",
        help="convert between text logs and columnar stores (streaming)",
    )
    sc.add_argument("src", help="source: log file or columnar store directory")
    sc.add_argument("dst", help="destination path")
    sc.add_argument(
        "--to", choices=["log", "columnar"], default=None,
        help="destination format (default: the opposite of the source; "
             "columnar->columnar re-compacts and re-sorts a store)",
    )
    sc.add_argument(
        "--chunk", type=int, default=65536, metavar="N",
        help="events per streamed write chunk (default 65536)",
    )
    sc.add_argument(
        "--dialect", choices=["repro", "loghub"], default="repro",
        help="line format when writing a log (default repro)",
    )

    r = sub.add_parser(
        "report", help="full study report: CDF, rules, sweeps, comparison"
    )
    _add_store_input_args(r)
    r.add_argument(
        "--windows", default="5,15,30,60", help="sweep minutes"
    )
    _add_common_predictor_args(r)
    _add_engine_args(r)

    x = sub.add_parser(
        "export", help="write experiment series (sweep/CDF/categories) as CSV"
    )
    _add_store_input_args(x)
    x.add_argument("--outdir", "-o", required=True, help="directory for CSVs")
    x.add_argument(
        "--method", choices=["statistical", "rule", "meta"], default="meta"
    )
    x.add_argument("--windows", default="5,10,15,20,30,40,50,60")
    _add_common_predictor_args(x)
    _add_engine_args(x)

    # Every subcommand can export its observability snapshot.
    for subparser in sub.choices.values():
        _add_emit_metrics_arg(subparser)
    return parser


def _input_path(args: argparse.Namespace) -> str:
    """The one event source named by ``LOG`` or ``--store`` (exactly one)."""
    log = getattr(args, "log", None)
    store = getattr(args, "store", None)
    if (log is None) == (store is None):
        raise _CliError("provide exactly one event source: LOG or --store DIR")
    if store is not None:
        if not is_columnar_dir(store):
            raise _CliError(f"--store {store} is not a columnar store directory")
        return store
    return log


def _load_raw(args: argparse.Namespace):
    """Open the command's event source as a raw :class:`EventStore`.

    Columnar store directories (from ``--store`` or auto-detected from the
    positional) open memory-mapped; anything else is parsed as a text log.
    """
    path = _input_path(args)
    if is_columnar_dir(path):
        from repro.ras.columnar import StoreDirError

        try:
            return open_store(path)
        except StoreDirError as exc:
            raise _CliError(f"cannot open store {path}: {exc}") from exc
    if not os.path.isfile(path):
        raise _CliError(f"no such log file or store directory: {path}")
    return read_log(path, errors="skip")


def _load_events(args: argparse.Namespace):
    raw = _load_raw(args)
    pipeline = ThreePhasePredictor(
        PredictorConfig(
            compression_threshold=getattr(args, "threshold", 300.0)
        )
    )
    result = pipeline.preprocess(raw)
    return raw, result


def _make_spec(
    method: str, args: argparse.Namespace, window_min: float
) -> PredictorSpec:
    """The declarative predictor spec the CLI flags describe."""
    rw = args.rule_window * MINUTE
    w = window_min * MINUTE
    if method == "statistical":
        return PredictorSpec.statistical(window=w, lead=0.0)
    if method == "rule":
        return PredictorSpec.rule(
            rule_window=rw,
            prediction_window=w,
            min_support=args.min_support,
            min_confidence=args.min_confidence,
        )
    return PredictorSpec.meta(
        prediction_window=w,
        rule_window=rw,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
    )


def cmd_generate(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.profile)
    if (args.output is None) == (args.store is None):
        raise _CliError(
            "provide exactly one destination: --output FILE or --store DIR"
        )
    t0 = time.monotonic()
    if args.store is not None:
        from repro.synth.streaming import stream_generate

        summary = stream_generate(
            profile,
            args.store,
            segments=args.segments,
            scale=args.scale,
            noise_multiplier=args.noise,
            seed=args.seed,
        )
        print(
            f"{profile.name} scale={args.scale} x{summary.segments} "
            f"segment(s): {summary.rows} raw records streamed to "
            f"{summary.path} "
            f"(span {summary.span_seconds / 86_400:.1f} days, "
            f"{time.monotonic() - t0:.1f}s)"
        )
        return 0
    log = LogGenerator(
        profile, scale=args.scale, noise_multiplier=args.noise, seed=args.seed
    ).generate()
    dialect = LogDialect(args.dialect)
    n = write_log(log.raw, args.output, dialect=dialect)
    print(
        f"{profile.name} scale={args.scale}: {log.n_unique} unique events, "
        f"{n} raw records written to {args.output} "
        f"({time.monotonic() - t0:.1f}s)"
    )
    return 0


def cmd_preprocess(args: argparse.Namespace) -> int:
    raw, result = _load_events(args)
    print("raw log:")
    for k, v in log_summary(raw, _input_path(args)).items():
        print(f"  {k}: {v}")
    print("severities:", severity_breakdown(raw))
    print(
        f"temporal compression: {result.temporal_stats.input_records} -> "
        f"{result.temporal_stats.output_records} records"
    )
    print(
        f"spatial compression:  {result.spatial_stats.input_records} -> "
        f"{result.spatial_stats.output_records} records"
    )
    print(
        f"unique events: {result.unique_events} "
        f"(overall compression {result.overall_compression:.2%})"
    )
    counts = category_fatal_counts(result.events)
    print(format_table4({"log": counts}))
    if args.output:
        write_log(result.events, args.output)
        print(f"unique-event log written to {args.output}")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    _, result = _load_events(args)
    predictor = RuleBasedPredictor(
        rule_window=args.rule_window * MINUTE,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        miner=args.miner,
    ).fit(result.events)
    assert predictor.ruleset is not None
    print(
        f"{len(predictor.ruleset)} rules "
        f"(no-precursor fraction {predictor.no_precursor_fraction:.2%}):"
    )
    print(predictor.ruleset.format_rules(limit=args.top))
    return 0


def _print_metrics_section() -> None:
    """Compact observability summary appended to evaluation reports."""
    from repro.obs import summarize_histogram

    registry = get_registry()
    if not registry.enabled:
        return
    lines: list[str] = []
    samples = registry.histograms.get("crossval.fold_seconds")
    if samples:
        s = summarize_histogram(samples)
        lines.append(
            f"  per-fold wall time: mean={s['mean']:.3f}s "
            f"p90={s['p90']:.3f}s max={s['max']:.3f}s"
        )
    rule = registry.counters.get("meta.dispatch{method=rule}", 0)
    stat = registry.counters.get("meta.dispatch{method=statistical}", 0)
    if rule or stat:
        lines.append(f"  meta dispatch: rule={rule} statistical={stat}")
    compression = registry.gauges.get("preprocess.compression_ratio")
    if compression is not None:
        lines.append(f"  phase-1 compression: {compression:.2%}")
    kept = registry.counters.get("mining.rules_kept")
    if kept is not None:
        lines.append(f"  rules kept (across fits): {kept:g}")
    tasks = registry.counters.get("engine.tasks")
    if tasks:
        jobs = registry.gauges.get("engine.jobs", 1)
        lines.append(f"  engine: {tasks:g} fold tasks, jobs={jobs:g}")
    hits = registry.counters.get("engine.cache_hits", 0)
    cache_misses = registry.counters.get("engine.cache_misses", 0)
    if hits or cache_misses:
        lines.append(f"  artifact cache: {hits:g} hits / {cache_misses:g} misses")
    drift = registry.gauges.get("lifecycle.drift_score")
    if drift is not None:
        lines.append(f"  drift score (PSI): {drift:.4f}")
    precision = registry.gauges.get("lifecycle.live_precision")
    if precision is not None:
        lines.append(f"  live precision (window): {precision:.2f}")
    retrains = registry.counters.get("lifecycle.retrains")
    if retrains:
        lines.append(f"  retrains: {retrains:g}")
    swap_samples = registry.histograms.get("serve.swap_seconds")
    if swap_samples:
        s = summarize_histogram(swap_samples)
        lines.append(
            f"  hot swaps: {len(swap_samples)} "
            f"(mean={s['mean'] * 1000:.2f}ms max={s['max'] * 1000:.2f}ms)"
        )
    if lines:
        print("metrics:")
        print("\n".join(lines))


def cmd_evaluate(args: argparse.Namespace) -> int:
    _, result = _load_events(args)
    spec = _make_spec(args.method, args, args.prediction_window)
    cv = cross_validate(
        spec, result.events, k=args.folds,
        jobs=args.jobs, cache_dir=args.cache_dir,
        incremental=args.incremental,
    )
    s = cv.summary()
    print(
        f"{args.method} ({args.folds}-fold CV, W={args.prediction_window:g} min): "
        f"precision={s['precision']:.4f} recall={s['recall']:.4f} "
        f"({s['warnings']} warnings / {s['fatals']} failures)"
    )
    _print_metrics_section()
    return 0


def _sweep_grid(
    args: argparse.Namespace, windows: list[float]
) -> list[tuple[float, PredictorSpec]]:
    """(window, spec) grid for the CLI's sweep-style commands.

    The statistical predictor's only window *is* its prediction horizon, so
    for it the grid always varies ``window``; the other methods vary
    ``--sweep-param`` (prediction_window by default).
    """
    spec = _make_spec(args.method, args, args.prediction_window)
    if args.method == "statistical":
        param = "window"
    else:
        param = getattr(args, "sweep_param", "prediction_window")
    return spec.grid(param, windows)


def cmd_sweep(args: argparse.Namespace) -> int:
    _, result = _load_events(args)
    windows = [float(x) * MINUTE for x in args.windows.split(",")]
    points = sweep(
        _sweep_grid(args, windows),
        result.events,
        k=args.folds,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        incremental=args.incremental,
    )
    param = "window" if args.method == "statistical" else args.sweep_param
    print(format_sweep(points, title=f"{args.method} {param} sweep"))
    _print_metrics_section()
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    _, result = _load_events(args)
    predictor = ThreePhasePredictor(
        PredictorConfig(
            rule_window=args.rule_window * MINUTE,
            prediction_window=args.prediction_window * MINUTE,
            min_support=args.min_support,
            min_confidence=args.min_confidence,
        )
    )
    predictor.fit(result.events)
    save_model(predictor, args.model)
    print(
        f"model written to {args.model}: {predictor.report.rules_mined} rules, "
        f"triggers={list(predictor.report.trigger_categories)}"
    )
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.online.detector import OnlineSession
    from repro.util.timeutil import format_epoch

    model = load_model(args.model)
    meta = model.meta if isinstance(model, ThreePhasePredictor) else model
    _, result = _load_events(args)
    session = OnlineSession(meta)
    for ev in result.events:
        for w in session.process(ev):
            if not args.quiet:
                print(
                    f"[{format_epoch(w.issued_at)}] WARNING "
                    f"conf={w.confidence:.2f} "
                    f"horizon={(w.horizon_end - w.issued_at) // 60}min "
                    f"| {w.detail[:60]}"
                )
    stats = session.finish()
    print(
        f"watch summary: {stats.events} events, {stats.failures} failures, "
        f"{stats.warnings} warnings "
        f"(precision {stats.precision_so_far:.2f}, "
        f"recall {stats.recall_so_far:.2f})"
    )
    return 0


def _fail(message: str) -> int:
    """Print a one-line operator-facing error (no traceback); exit code 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _build_action_engine(args, *, ledger=None, labels=None, view=None):
    """One ActionEngine from the shared --policy/--*-cost flags.

    Raises ValueError on bad prices / an unknown policy name; callers
    convert that to the one-line CLI error.
    """
    from repro.actions import ActionEngine, CostModel, build_policy

    cost = CostModel(
        checkpoint_cost=args.checkpoint_cost,
        migration_cost=args.migration_cost,
        restart_cost=args.restart_cost,
    )
    return ActionEngine(
        build_policy(args.policy),
        cost,
        view=view,
        seed=args.action_seed,
        ledger=ledger,
        labels=labels,
    )


def _print_ledger(ledger, indent: str = "") -> None:
    """Operator-facing summary of one settled action ledger."""
    taken = " ".join(
        f"{kind}={ledger.taken.get(kind, 0)}"
        for kind in ("checkpoint", "migrate", "quarantine")
    )
    outcomes = " ".join(
        f"{o}={ledger.outcomes.get(o, 0)}"
        for o in ("hit", "false_alarm", "redundant", "late")
    )
    print(
        f"{indent}actions ({ledger.policy}, seed {ledger.seed}): {taken}\n"
        f"{indent}  settled: {outcomes}\n"
        f"{indent}  node-seconds: saved={ledger.saved_node_seconds:,.0f} "
        f"cost={ledger.cost_node_seconds:,.0f} "
        f"net={ledger.net_node_seconds:,.0f}\n"
        f"{indent}  reactive loss (no action): {ledger.reactive_loss:,.0f} "
        f"over {ledger.jobs_hit} job kill(s)"
    )


def cmd_serve_replay(args: argparse.Namespace) -> int:
    from repro.lifecycle import ModelRegistry, RegistryError
    from repro.serve import DetectorPool

    lifecycle_mode = (
        args.retrain_every is not None or args.drift_threshold is not None
    )
    if args.model is None and args.registry is None:
        return _fail("provide a model: --model FILE or --registry DIR")
    if lifecycle_mode and args.registry is None:
        return _fail(
            "--retrain-every/--drift-threshold need --registry "
            "(retrained snapshots must be registered somewhere)"
        )

    model_registry = None
    snapshot = None
    try:
        if args.registry is not None:
            model_registry = ModelRegistry(args.registry)
            snapshot = model_registry.get(args.model_ref)
            meta = model_registry.load_meta(args.model_ref)
        else:
            model = load_model(args.model)
            meta = model.meta if isinstance(model, ThreePhasePredictor) else model
    except (RegistryError, FileNotFoundError) as exc:
        return _fail(str(exc))

    raw, result = _load_events(args)
    if len(result.events) == 0:
        return _fail(
            f"no events parsed from {_input_path(args)}; nothing to replay "
            "(is the file empty or in an unrecognized dialect?)"
        )
    pool = DetectorPool(meta, shards=args.shards, key=args.key)
    engine = None
    if args.policy is not None:
        try:
            engine = _build_action_engine(args)
        except ValueError as exc:
            return _fail(str(exc))
    if lifecycle_mode:
        assert model_registry is not None and snapshot is not None
        return _serve_lifecycle(
            args, pool, model_registry, snapshot, result.events, engine
        )
    # Columnar input replays in bounded-memory chunks (serial; --jobs is a
    # whole-store optimization and is ignored on the streaming path).
    chunk = args.chunk if raw.backend_kind == "columnar" else None
    report = pool.replay(result.events, jobs=args.jobs, chunk_events=chunk)
    print(
        f"serve-replay: {report.events} events through {len(report.shards)} "
        f"active shard(s) (key={report.key}) in {report.seconds:.3f}s "
        f"-> {report.events_per_sec:,.0f} events/sec"
    )
    for shard in report.shards:
        s = shard.stats
        print(
            f"  shard {shard.shard}: {shard.events} events, "
            f"{s.failures} failures, {len(shard.warnings)} warnings "
            f"(precision {s.precision_so_far:.2f}, "
            f"recall {s.recall_so_far:.2f}, {shard.seconds:.3f}s)"
        )
    combined = report.combined
    print(
        f"combined: {combined.warnings} warnings / {combined.failures} failures "
        f"(precision {combined.precision_so_far:.2f}, "
        f"recall {combined.recall_so_far:.2f})"
    )
    if engine is not None:
        # One pass over the replayed store with every shard's warnings:
        # the engine re-sorts decisions internally, so shard interleaving
        # does not matter.
        engine.observe_store(
            result.events, [w for sh in report.shards for w in sh.warnings]
        )
        _print_ledger(engine.finalize())
    registry = get_registry()
    if registry.enabled:
        from repro.obs import summarize_histogram

        samples = registry.histograms.get("serve.feed_seconds")
        if samples:
            s = summarize_histogram(samples)
            print(
                f"metrics:\n  per-shard feed time: mean={s['mean']:.3f}s "
                f"p90={s['p90']:.3f}s max={s['max']:.3f}s"
            )
    return 0


def _serve_lifecycle(
    args, pool, model_registry, snapshot, events, action_engine=None
) -> int:
    """serve-replay's managed mode: drift-monitored, hot-swap retraining."""
    from repro.lifecycle import (
        DriftMonitor,
        LifecycleManager,
        Retrainer,
        RetrainPolicy,
    )

    # The stream's own head seeds the reference histogram: the monitor
    # compares "recently" against "when serving started", which is what an
    # operator without the original training store can actually deploy.
    head = min(max(args.drift_window, 1), len(events))
    monitor = DriftMonitor(
        events.select(slice(0, head)),
        window=args.drift_window,
        threshold=args.drift_threshold if args.drift_threshold else 0.25,
    )
    policy = RetrainPolicy(
        args.retrain_every,
        on_drift=args.drift_threshold is not None,
        cooldown_events=max(args.chunk, 1024),
    )
    spec = snapshot.spec if snapshot.spec is not None else PredictorSpec.meta()
    retrainer = Retrainer(
        spec,
        model_registry,
        window_events=args.retrain_window,
        jobs=args.jobs,
        seed=0,
        incremental=args.incremental,
    )
    manager = LifecycleManager(
        pool, monitor, policy, retrainer,
        serving_snapshot=snapshot.snapshot_id,
    )
    report = manager.run(
        events, chunk_events=args.chunk, action_sink=action_engine
    )
    stats = report.stats
    assert stats is not None
    print(
        f"serve-replay (lifecycle): {report.events} events in "
        f"{args.chunk}-event chunks, {report.warnings} warnings, "
        f"{report.retrains} retrain(s)"
    )
    for swap in report.swaps:
        print(
            f"  swap @event {swap.at_event}: {swap.reason} -> "
            f"{swap.snapshot_id[:12]} "
            f"(psi={swap.drift_score:.3f}, "
            f"sessions={swap.sessions_swapped})"
        )
    print(
        f"combined: {stats.warnings} warnings / {stats.failures} failures "
        f"(precision {stats.precision_so_far:.2f}, "
        f"recall {stats.recall_so_far:.2f})"
    )
    if action_engine is not None:
        _print_ledger(action_engine.finalize())
    print(f"serving snapshot: {manager.serving_snapshot[:12]}")
    _print_metrics_section()
    return 0


def _daemon_manager_factory(args, model_registry, snapshot):
    """Per-stream lifecycle factory the daemon hands to new channels.

    Built here — not in :mod:`repro.serve` — so the serve package never
    imports lifecycle (the layer DAG stays acyclic; lifecycle already
    imports ``serve.pool``).  Each stream gets its own monitor/policy/
    retrainer; the reference store is the stream's first drift window.
    """
    from repro.lifecycle import (
        DriftMonitor,
        LifecycleManager,
        Retrainer,
        RetrainPolicy,
    )

    spec = snapshot.spec if snapshot.spec is not None else PredictorSpec.meta()

    def factory(pool, reference_store):
        monitor = DriftMonitor(
            reference_store,
            window=args.drift_window,
            threshold=args.drift_threshold if args.drift_threshold else 0.25,
        )
        policy = RetrainPolicy(
            args.retrain_every,
            on_drift=args.drift_threshold is not None,
            cooldown_events=max(args.chunk, 1024),
        )
        retrainer = Retrainer(
            spec,
            model_registry,
            window_events=args.retrain_window,
            jobs=args.jobs,
            seed=0,
            incremental=args.incremental,
        )
        return LifecycleManager(
            pool, monitor, policy, retrainer,
            serving_snapshot=snapshot.snapshot_id,
        )

    return factory


def _daemon_action_factory(args, ledger_docs):
    """Per-stream action-engine factory the daemon hands to new channels.

    Built here — not in :mod:`repro.serve` — for the same layering reason
    as the lifecycle factory: serve talks to the engine only through the
    duck-typed ``ActionSink`` protocol.  A stream whose aggregate ledger
    counters were persisted by a previous drain resumes them in place, so
    the lifetime economics survive a kill/restart cycle.
    """
    from repro.actions import CostModel, Ledger, build_policy

    cost = CostModel(
        checkpoint_cost=args.checkpoint_cost,
        migration_cost=args.migration_cost,
        restart_cost=args.restart_cost,
    )
    build_policy(args.policy)  # validate the name eagerly, before binding

    def factory(stream_id):
        from repro.actions import ActionEngine

        restored = ledger_docs.get(stream_id)
        ledger = Ledger.from_dict(restored) if restored else None
        return ActionEngine(
            build_policy(args.policy),
            cost,
            seed=args.action_seed,
            ledger=ledger,
            labels={"stream": stream_id},
        )

    return factory


def cmd_serve_daemon(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.lifecycle import ModelRegistry, RegistryError
    from repro.online.resolution import SessionStats
    from repro.serve.daemon import (
        DaemonConfig,
        IngestDaemon,
        state_from_dict,
        state_to_dict,
    )

    lifecycle_mode = (
        args.retrain_every is not None or args.drift_threshold is not None
    )
    if args.model is None and args.registry is None:
        return _fail("provide a model: --model FILE or --registry DIR")
    if lifecycle_mode and args.registry is None:
        return _fail(
            "--retrain-every/--drift-threshold need --registry "
            "(retrained snapshots must be registered somewhere)"
        )

    model_registry = None
    snapshot = None
    try:
        if args.registry is not None:
            model_registry = ModelRegistry(args.registry)
            snapshot = model_registry.get(args.model_ref)
            meta = model_registry.load_meta(args.model_ref)
        else:
            model = load_model(args.model)
            meta = model.meta if isinstance(model, ThreePhasePredictor) else model
    except (RegistryError, FileNotFoundError) as exc:
        return _fail(str(exc))

    baseline: Optional[SessionStats] = None
    ledger_docs: dict = {}
    if args.state:
        try:
            with open(args.state, encoding="utf-8") as fh:
                state_doc = json.load(fh)
            baseline = state_from_dict(state_doc)
            ledger_docs = dict(state_doc.get("ledgers", {}))
            print(
                f"restored state from {args.state}: "
                f"{baseline.events} events, {baseline.warnings} warnings, "
                f"{baseline.hits} hits already resolved"
                + (f", {len(ledger_docs)} stream ledger(s)" if ledger_docs else "")
            )
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, ValueError, TypeError) as exc:
            return _fail(f"unreadable state file {args.state}: {exc}")

    manager_factory = None
    reference_events = 0
    if lifecycle_mode:
        manager_factory = _daemon_manager_factory(args, model_registry, snapshot)
        reference_events = args.drift_window
    action_factory = None
    if args.policy is not None:
        try:
            action_factory = _daemon_action_factory(args, ledger_docs)
        except ValueError as exc:
            return _fail(str(exc))

    try:
        config = DaemonConfig(
            host=args.host,
            port=args.port,
            queue_bound=args.queue_bound,
            shards=args.shards,
            key=args.key,
            chunk_events=args.chunk,
            max_streams=args.max_streams,
            store_dir=args.store,
        )
    except ValueError as exc:
        return _fail(str(exc))
    daemon = IngestDaemon(
        meta,
        config,
        manager_factory=manager_factory,
        reference_events=reference_events,
        action_factory=action_factory,
        baseline=baseline,
        registry=get_registry(),
    )

    async def _run():
        await daemon.start()
        print(
            f"serve-daemon listening on {args.host}:{daemon.port} "
            f"(queue_bound={config.queue_bound}, shards={config.shards}, "
            f"chunk={config.chunk_events}"
            + (", lifecycle on" if lifecycle_mode else "")
            + (f", archiving to {args.store}" if args.store else "")
            + ") — SIGTERM or GET /drain for a graceful drain",
            flush=True,
        )
        return await daemon.serve_until_drained()

    try:
        report = asyncio.run(_run())
    except OSError as exc:  # bind failure: port in use, bad host, ...
        return _fail(f"cannot bind {args.host}:{args.port}: {exc}")

    for sr in report.streams:
        s = sr.stats
        print(
            f"  stream {sr.stream_id}: {sr.processed} events, "
            f"{s.failures} failures, {sr.warnings} warnings "
            f"(precision {s.precision_so_far:.2f}, "
            f"recall {s.recall_so_far:.2f}, "
            f"busy_rejects={sr.dropped_busy}, "
            f"order_rejects={sr.rejected_order})"
        )
        if sr.ledger is not None:
            _print_ledger(sr.ledger, indent="  ")
    total = report.total()
    print(
        f"drained in {report.seconds:.3f}s: {report.combined.events} events "
        f"this run, lifetime {total.events} events / {total.warnings} warnings "
        f"(precision {total.precision_so_far:.2f}, "
        f"recall {total.recall_so_far:.2f})"
    )
    if args.state:
        doc = state_to_dict(report, carried_ledgers=ledger_docs)
        tmp = f"{args.state}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, args.state)
        print(f"state written to {args.state}")
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.client import emit_events

    if args.streams < 1:
        return _fail("--streams must be >= 1")
    _, result = _load_events(args)
    events = list(result.events)
    if not events:
        return _fail(
            f"no events parsed from {_input_path(args)}; nothing to emit"
        )
    if args.repeat > 1:
        span = events[-1].time + 1
        base = list(events)
        for k in range(1, args.repeat):
            events.extend(ev.with_time(ev.time + k * span) for ev in base)
    stream_ids = [f"stream-{i}" for i in range(args.streams)]
    report = asyncio.run(
        emit_events(
            events,
            host=args.host,
            port=args.port,
            streams=stream_ids,
            batch=args.batch,
            retry_delay=args.retry_delay,
            max_retries=args.max_retries,
            drain_after=args.drain,
        )
    )
    print(
        f"emit: {report.sent}/{len(events)} events over "
        f"{len(stream_ids)} stream(s) in {report.seconds:.3f}s "
        f"-> {report.events_per_sec:,.0f} events/sec "
        f"({report.busy_retries} busy retries)"
    )
    for tally in report.tallies:
        line = f"  {tally.stream_id}: sent={tally.sent}"
        if tally.final_stats:
            counters = tally.final_stats.get("counters", {})
            session = tally.final_stats.get("session", {})
            line += (
                f" processed={counters.get('processed', '?')}"
                f" warnings={session.get('warnings', '?')}"
                f" pending={tally.final_stats.get('pending_warnings', '?')}"
            )
        print(line)
    if report.errors:
        for err in report.errors:
            print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    from repro.core.serialize import SerializationError
    from repro.lifecycle import ModelRegistry, RegistryError

    model_registry = ModelRegistry(args.registry)
    try:
        if args.model_command == "save":
            predictor = load_model(args.model_json)
            snap = model_registry.save(
                predictor,
                parent=args.parent,
                note=args.note,
                tags=tuple(args.tag),
            )
            tags = " ".join(args.tag)
            print(
                f"registered {snap.snapshot_id[:12]} "
                f"(kind={snap.kind}, seq={snap.seq}"
                + (f", tags: {tags})" if tags else ")")
            )
        elif args.model_command == "load":
            model = model_registry.load(args.ref)
            save_model(model, args.output)
            print(
                f"snapshot {model_registry.resolve(args.ref)[:12]} "
                f"written to {args.output}"
            )
        else:  # list
            snapshots = model_registry.list()
            by_id: dict[str, list[str]] = {}
            for name, target in model_registry.tags().items():
                by_id.setdefault(target, []).append(name)
            if not snapshots:
                print("registry is empty")
                return 0
            for snap in snapshots:
                refs = ",".join(sorted(by_id.get(snap.snapshot_id, [])))
                parent = snap.parent[:12] if snap.parent else "-"
                trained = (
                    f"{snap.train_events}ev"
                    if snap.train_events is not None
                    else "?"
                )
                print(
                    f"  {snap.snapshot_id[:12]}  seq={snap.seq:<3d} "
                    f"kind={snap.kind:<12s} parent={parent:<12s} "
                    f"train={trained:<9s} "
                    + (f"[{refs}]" if refs else "")
                    + (f" {snap.note}" if snap.note else "")
                )
    except (RegistryError, SerializationError, FileNotFoundError) as exc:
        return _fail(str(exc))
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    from repro.ras.columnar import ColumnarBackend, StoreDirError

    try:
        backend = ColumnarBackend(args.path)
    except StoreDirError as exc:
        raise _CliError(f"cannot open store {args.path}: {exc}") from exc
    mib = backend.disk_bytes() / (1024 * 1024)
    print(f"columnar store {args.path}:")
    print(f"  rows: {len(backend)}")
    print(f"  time-sorted: {backend.time_sorted}")
    print(f"  segments: {len(backend.segments)}")
    print(f"  committed column bytes: {mib:.1f} MiB")
    if len(backend) and backend.time_sorted:
        times = backend.column("times")
        span = int(times[-1]) - int(times[0])
        print(f"  span: {span / 86_400:.1f} days "
              f"({int(times[0])} .. {int(times[-1])})")
    for name in ("locations", "entries", "subcats"):
        print(f"  {name}: {len(backend.table(name).strings)} interned strings")
    if args.fingerprint:
        from repro.cache import store_fingerprint
        from repro.ras.store import EventStore

        store = EventStore.from_backend(backend)
        print(f"  fingerprint: {store_fingerprint(store)}")
    return 0


def _cmd_store_convert(args: argparse.Namespace) -> int:
    from repro.ras.columnar import ColumnarWriter, StoreDirError, write_store

    src_columnar = is_columnar_dir(args.src)
    if not src_columnar and not os.path.isfile(args.src):
        raise _CliError(f"no such log file or store directory: {args.src}")
    to = args.to or ("log" if src_columnar else "columnar")
    if args.chunk < 1:
        raise _CliError(f"--chunk must be >= 1, got {args.chunk}")
    t0 = time.monotonic()
    try:
        if to == "columnar":
            if src_columnar:
                store = open_store(args.src)
                n = len(store)
                write_store(store, args.dst, chunk_events=args.chunk)
            else:
                # True streaming parse: the text log never materializes.
                n = 0
                with ColumnarWriter(args.dst) as writer:
                    buf: list = []
                    for ev in iter_log_lines(args.src, errors="skip"):
                        buf.append(ev)
                        if len(buf) >= args.chunk:
                            n += writer.append_events(buf)
                            buf.clear()
                    n += writer.append_events(buf)
        else:
            source = open_store(args.src) if src_columnar else read_log(
                args.src, errors="skip"
            )
            n = write_log(source, args.dst, dialect=LogDialect(args.dialect))
    except StoreDirError as exc:
        raise _CliError(f"cannot open store {args.src}: {exc}") from exc
    print(
        f"converted {args.src} -> {args.dst} ({to}): {n} events "
        f"({time.monotonic() - t0:.1f}s)"
    )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "info":
        return _cmd_store_info(args)
    return _cmd_store_convert(args)


def cmd_report(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.evaluation.report import cdf_chart, comparison_table, sweep_chart
    from repro.predictors.statistical import failure_gap_cdf

    _, result = _load_events(args)
    events = result.events
    windows = [float(x) * MINUTE for x in args.windows.split(",")]
    rw = args.rule_window * MINUTE

    print(f"events: {len(events)}  failures: {len(events.fatal_events())}\n")

    grid = np.array([m * MINUTE for m in (5, 10, 15, 20, 30, 45, 60, 90, 120)],
                    dtype=float)
    _, cdf = failure_gap_cdf(events, grid)
    print(cdf_chart(grid, cdf, title="Failure-gap CDF (paper Figure 2)"))
    print()

    rb = RuleBasedPredictor(rule_window=rw).fit(events)
    print(f"Association rules (paper Figure 3), G={args.rule_window:g} min:")
    print(rb.ruleset.format_rules(limit=10))
    print(f"failures without precursors: {rb.no_precursor_fraction:.1%}\n")

    rows = {}
    for method in ("statistical", "rule", "meta"):
        cv = cross_validate(
            _make_spec(method, args, args.prediction_window),
            events, k=args.folds,
            jobs=args.jobs, cache_dir=args.cache_dir,
        )
        rows[method] = (cv.precision, cv.recall)
    print(comparison_table(
        rows, title=f"Method comparison, W={args.prediction_window:g} min "
                    f"({args.folds}-fold CV)"))
    print()

    meta_spec = PredictorSpec.meta(rule_window=rw)
    points = sweep(
        meta_spec.grid("prediction_window", windows),
        events, k=args.folds,
        jobs=args.jobs, cache_dir=args.cache_dir,
    )
    print(sweep_chart(points, title="Meta-learner sweep (paper Figure 5)"))
    print()
    _print_metrics_section()
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.evaluation.export import (
        write_category_csv,
        write_cdf_csv,
        write_sweep_csv,
    )
    from repro.predictors.statistical import failure_gap_cdf

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    _, result = _load_events(args)
    events = result.events

    grid = np.array(
        [m * MINUTE for m in (5, 10, 15, 20, 30, 45, 60, 90, 120, 240, 360)],
        dtype=float,
    )
    _, cdf = failure_gap_cdf(events, grid)
    write_cdf_csv(grid, cdf, outdir / "figure2_cdf.csv")

    write_category_csv(
        {"log": category_fatal_counts(events)}, outdir / "table4_categories.csv"
    )

    windows = [float(x) * MINUTE for x in args.windows.split(",")]
    points = sweep(
        _sweep_grid(args, windows),
        events,
        k=args.folds,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    write_sweep_csv(points, outdir / f"sweep_{args.method}.csv")
    print(
        f"wrote figure2_cdf.csv, table4_categories.csv, "
        f"sweep_{args.method}.csv to {outdir}"
    )
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "preprocess": cmd_preprocess,
    "mine": cmd_mine,
    "evaluate": cmd_evaluate,
    "sweep": cmd_sweep,
    "train": cmd_train,
    "watch": cmd_watch,
    "serve-replay": cmd_serve_replay,
    "serve-daemon": cmd_serve_daemon,
    "emit": cmd_emit,
    "model": cmd_model,
    "store": cmd_store,
    "report": cmd_report,
    "export": cmd_export,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Every command runs under a live :class:`MetricsRegistry`, so commands
    can print a ``metrics`` section; ``--emit-metrics PATH`` additionally
    writes the full JSON snapshot when the command finishes.
    """
    args = _build_parser().parse_args(argv)
    backend = getattr(args, "store_backend", None)
    if backend:
        os.environ["REPRO_STORE_BACKEND"] = backend
    registry = MetricsRegistry()
    with use(registry):
        try:
            rc = _COMMANDS[args.command](args)
        except _CliError as exc:
            rc = _fail(str(exc))
    emit_path = getattr(args, "emit_metrics", None)
    if emit_path:
        with open(emit_path, "w", encoding="utf-8") as fh:
            fh.write(to_json(registry))
        print(f"metrics written to {emit_path}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
