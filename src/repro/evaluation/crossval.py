"""n-fold cross-validation over event streams (paper §3.2).

"The log is divided into n folds of equal size and then the (n-1) folds are
used as training set for learning and the last fold is used for prediction
and testing ... there are n such results, which are then averaged."

Folds are *contiguous in time* (the log is a time series; shuffling records
would leak future context into training), matching the paper's equal-size
division of the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.evaluation.matching import MatchResult, match_warnings
from repro.evaluation.metrics import Metrics, mean_metrics
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.ras.store import EventStore

#: A zero-argument factory producing a fresh (unfitted) predictor per fold.
PredictorFactory = Callable[[], Predictor]


def fold_index_ranges(n: int, k: int) -> list[tuple[int, int]]:
    """Contiguous [start, end) index ranges of k near-equal folds.

    The first ``n % k`` folds receive one extra record, so sizes differ by at
    most one and every record belongs to exactly one fold.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} events into {k} folds")
    base, extra = divmod(n, k)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass
class CVResult:
    """Outcome of one cross-validated evaluation."""

    fold_metrics: list[Metrics]
    fold_matches: list[MatchResult]

    @property
    def precision(self) -> float:
        """Macro-averaged precision across folds (the paper's averaging)."""
        return mean_metrics(self.fold_metrics)[0]

    @property
    def recall(self) -> float:
        """Macro-averaged recall across folds."""
        return mean_metrics(self.fold_metrics)[1]

    @property
    def k(self) -> int:
        return len(self.fold_metrics)

    def summary(self) -> dict:
        """Plain-dict rendering for reports."""
        return {
            "k": self.k,
            "precision": self.precision,
            "recall": self.recall,
            "warnings": sum(m.n_warnings for m in self.fold_metrics),
            "fatals": sum(m.n_fatals for m in self.fold_metrics),
        }


def cross_validate(
    factory: PredictorFactory,
    events: EventStore,
    k: int = 10,
) -> CVResult:
    """k-fold CV of a predictor over a preprocessed event store.

    For each fold, a fresh predictor from ``factory`` is fitted on the
    complement (the remaining k-1 folds, concatenated in time order) and
    scored on the fold.
    """
    n = len(events)
    ranges = fold_index_ranges(n, k)
    all_idx = np.arange(n)
    fold_metrics: list[Metrics] = []
    fold_matches: list[MatchResult] = []
    obs = get_registry()
    for fold, (start, end) in enumerate(ranges):
        with obs.span("crossval.fold", fold=str(fold)) as sp:
            test = events.select(slice(start, end))
            train_idx = np.concatenate([all_idx[:start], all_idx[end:]])
            train = events.select(train_idx)
            predictor = factory()
            predictor.fit(train)
            warnings = predictor.predict(test)
            match = match_warnings(warnings, test)
            fold_metrics.append(match.metrics)
            fold_matches.append(match)
        obs.observe("crossval.fold_seconds", sp.duration)
    obs.counter("crossval.folds", k)
    return CVResult(fold_metrics=fold_metrics, fold_matches=fold_matches)


def holdout_validate(
    factory: PredictorFactory,
    events: EventStore,
    train_fraction: float = 0.7,
) -> tuple[Metrics, MatchResult]:
    """Single chronological train/test split (quick evaluations, examples)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = len(events)
    cut = int(n * train_fraction)
    if cut == 0 or cut == n:
        raise ValueError("split leaves an empty partition")
    train = events.select(slice(0, cut))
    test = events.select(slice(cut, n))
    predictor = factory()
    predictor.fit(train)
    match = match_warnings(predictor.predict(test), test)
    return match.metrics, match
