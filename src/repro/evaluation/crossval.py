"""n-fold cross-validation over event streams (paper §3.2).

"The log is divided into n folds of equal size and then the (n-1) folds are
used as training set for learning and the last fold is used for prediction
and testing ... there are n such results, which are then averaged."

Folds are *contiguous in time* (the log is a time series; shuffling records
would leak future context into training), matching the paper's equal-size
division of the log.

Predictors are described either by a :class:`~repro.evaluation.spec.PredictorSpec`
(preferred — picklable, so folds can run on a process pool, and hashable, so
fitted artifacts can be cached; see :mod:`repro.evaluation.engine`) or by the
legacy zero-argument factory callable.  Factories cannot cross a process
boundary and have no stable cache identity, so they always run serially and
uncached.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.evaluation.engine import FoldTask, run_fold_tasks, spawn_task_seeds
from repro.evaluation.matching import MatchResult, match_warnings
from repro.evaluation.metrics import Metrics, mean_metrics, micro_metrics
from repro.evaluation.spec import PredictorSpec
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.ras.store import EventStore

#: A zero-argument factory producing a fresh (unfitted) predictor per fold.
#: Legacy convention — prefer :class:`PredictorSpec`, which is picklable
#: (parallel-safe) and stably hashable (cacheable).
PredictorFactory = Callable[[], Predictor]

#: Either way of describing the predictor under evaluation.
PredictorLike = Union[PredictorSpec, PredictorFactory]


def fold_index_ranges(n: int, k: int) -> list[tuple[int, int]]:
    """Contiguous [start, end) index ranges of k near-equal folds.

    The first ``n % k`` folds receive one extra record, so sizes differ by at
    most one and every record belongs to exactly one fold.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} events into {k} folds")
    base, extra = divmod(n, k)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass
class CVResult:
    """Outcome of one cross-validated evaluation."""

    fold_metrics: list[Metrics]
    fold_matches: list[MatchResult]

    @property
    def precision(self) -> float:
        """Macro-averaged precision across folds (the paper's averaging)."""
        return mean_metrics(self.fold_metrics)[0]

    @property
    def recall(self) -> float:
        """Macro-averaged recall across folds."""
        return mean_metrics(self.fold_metrics)[1]

    @property
    def precision_micro(self) -> float:
        """Pooled precision: all folds' warnings counted as one set."""
        return micro_metrics(self.fold_metrics).precision

    @property
    def recall_micro(self) -> float:
        """Pooled recall: all folds' fatals counted as one set."""
        return micro_metrics(self.fold_metrics).recall

    @property
    def k(self) -> int:
        return len(self.fold_metrics)

    def summary(self) -> dict:
        """Plain-dict rendering for reports.

        ``precision``/``recall`` are the macro (per-fold, then averaged)
        figures — the paper's §3.2 averaging, quoted in Figures 4-6.  The
        ``*_micro`` fields pool counts across folds first, which matches the
        summed ``warnings``/``fatals`` totals also reported here; macro and
        micro differ whenever folds are unevenly hard.
        """
        return {
            "k": self.k,
            "precision": self.precision,
            "recall": self.recall,
            "precision_micro": self.precision_micro,
            "recall_micro": self.recall_micro,
            "warnings": sum(m.n_warnings for m in self.fold_metrics),
            "fatals": sum(m.n_fatals for m in self.fold_metrics),
        }


def cross_validate(
    predictor: PredictorLike,
    events: EventStore,
    k: int = 10,
    *,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    seed: Optional[int] = None,
    incremental: Optional[bool] = None,
) -> CVResult:
    """k-fold CV of a predictor over a preprocessed event store.

    For each fold, a fresh predictor realized from ``predictor`` (a
    :class:`PredictorSpec`, or a legacy zero-argument factory) is fitted on
    the complement (the remaining k-1 folds, concatenated in time order) and
    scored on the fold.

    With a spec, folds execute on the evaluation engine: ``jobs`` selects
    the worker count (``None`` → ``REPRO_JOBS`` → serial), ``cache_dir``
    enables the content-addressed fit-artifact cache (``None`` →
    ``REPRO_CACHE_DIR`` → off), and ``seed`` spawns one child
    ``SeedSequence`` per fold for seeded predictor kinds, and
    ``incremental`` (``None`` → ``REPRO_INCREMENTAL`` → off) lets the
    serial backend maintain mining state across folds.  Results are
    identical across worker counts, cache states, and the incremental
    switch.

    Legacy factories run serially in-process (closures cannot be pickled to
    workers nor hashed into cache keys); ``jobs``/``cache_dir``/``seed`` are
    ignored for them.
    """
    n = len(events)
    ranges = fold_index_ranges(n, k)
    obs = get_registry()
    if isinstance(predictor, PredictorSpec):
        seeds = spawn_task_seeds(seed, len(ranges))
        tasks = [
            FoldTask(spec=predictor, start=start, end=end, fold=fold,
                     seed=seeds[fold])
            for fold, (start, end) in enumerate(ranges)
        ]
        outcomes = run_fold_tasks(
            tasks, events, jobs=jobs, cache_dir=cache_dir,
            incremental=incremental,
        )
        for outcome in outcomes:
            obs.observe("crossval.fold_seconds", outcome.seconds)
        obs.counter("crossval.folds", k)
        return CVResult(
            fold_metrics=[o.match.metrics for o in outcomes],
            fold_matches=[o.match for o in outcomes],
        )
    return _cross_validate_factory(predictor, events, ranges)


def _cross_validate_factory(
    factory: PredictorFactory,
    events: EventStore,
    ranges: list[tuple[int, int]],
) -> CVResult:
    """Serial in-process fold loop for legacy factory callables."""
    n = len(events)
    all_idx = np.arange(n)
    fold_metrics: list[Metrics] = []
    fold_matches: list[MatchResult] = []
    obs = get_registry()
    for fold, (start, end) in enumerate(ranges):
        with obs.span("crossval.fold", fold=str(fold)) as sp:
            test = events.select(slice(start, end))
            train_idx = np.concatenate([all_idx[:start], all_idx[end:]])
            train = events.select(train_idx)
            predictor = factory()
            predictor.fit(train)
            warnings = predictor.predict(test)
            match = match_warnings(warnings, test)
            fold_metrics.append(match.metrics)
            fold_matches.append(match)
        obs.observe("crossval.fold_seconds", sp.duration)
    obs.counter("crossval.folds", len(ranges))
    return CVResult(fold_metrics=fold_metrics, fold_matches=fold_matches)


def holdout_validate(
    predictor: PredictorLike,
    events: EventStore,
    train_fraction: float = 0.7,
) -> tuple[Metrics, MatchResult]:
    """Single chronological train/test split (quick evaluations, examples)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = len(events)
    cut = int(n * train_fraction)
    if cut == 0 or cut == n:
        raise ValueError("split leaves an empty partition")
    train = events.select(slice(0, cut))
    test = events.select(slice(cut, n))
    instance = (
        predictor.build() if isinstance(predictor, PredictorSpec) else predictor()
    )
    instance.fit(train)
    match = match_warnings(instance.predict(test), test)
    return match.metrics, match
