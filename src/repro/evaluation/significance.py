"""Uncertainty quantification for cross-validated results.

The paper reports point estimates; on a quarter-scale synthetic log the fold
variance is visible, so honest comparisons ("meta beats the rule method")
need error bars.  Two standard tools:

- :func:`bootstrap_ci` — percentile bootstrap over the per-fold metrics of a
  :class:`~repro.evaluation.crossval.CVResult` (resampling folds with
  replacement), for precision, recall or F1;
- :func:`paired_bootstrap_pvalue` — paired bootstrap test on two CV results
  evaluated on the *same folds* (the common case here: two predictors under
  the same ``cross_validate`` partition); returns the achieved significance
  of "A's metric exceeds B's".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.evaluation.crossval import CVResult
from repro.evaluation.metrics import Metrics
from repro.util.rng import SeedLike, as_generator

#: Metric extractors usable by name.
METRICS: dict[str, Callable[[Metrics], float]] = {
    "precision": lambda m: m.precision,
    "recall": lambda m: m.recall,
    "f1": lambda m: m.f1,
}


@dataclass(frozen=True)
class ConfidenceInterval:
    """Percentile bootstrap interval for a fold-averaged metric."""

    metric: str
    point: float
    lower: float
    upper: float
    level: float
    resamples: int

    def __post_init__(self) -> None:
        if not self.lower <= self.point <= self.upper:
            # Percentile bootstrap can place the point estimate outside the
            # interval only on degenerate inputs; normalize defensively.
            object.__setattr__(self, "lower", min(self.lower, self.point))
            object.__setattr__(self, "upper", max(self.upper, self.point))

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.metric}={self.point:.3f} "
            f"[{self.lower:.3f}, {self.upper:.3f}] @{self.level:.0%}"
        )


def _fold_values(result: CVResult, metric: str) -> np.ndarray:
    try:
        fn = METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
        ) from None
    return np.array([fn(m) for m in result.fold_metrics], dtype=np.float64)


def bootstrap_ci(
    result: CVResult,
    metric: str = "recall",
    level: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the fold-averaged metric."""
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    if resamples < 100:
        raise ValueError("resamples must be >= 100")
    values = _fold_values(result, metric)
    if values.size == 0:
        raise ValueError("CV result has no folds")
    rng = as_generator(seed)
    idx = rng.integers(values.size, size=(resamples, values.size))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        metric=metric,
        point=float(values.mean()),
        lower=float(lo),
        upper=float(hi),
        level=level,
        resamples=resamples,
    )


def paired_bootstrap_pvalue(
    a: CVResult,
    b: CVResult,
    metric: str = "recall",
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> float:
    """One-sided paired bootstrap p-value for ``mean(A) > mean(B)``.

    Both results must come from the same fold partition (equal fold counts);
    folds are resampled jointly, preserving pairing.  The returned value is
    the bootstrap probability that the mean difference is <= 0 — small
    values support "A beats B".
    """
    va = _fold_values(a, metric)
    vb = _fold_values(b, metric)
    if va.size != vb.size:
        raise ValueError("results have different fold counts; not paired")
    if va.size == 0:
        raise ValueError("no folds")
    diff = va - vb
    rng = as_generator(seed)
    idx = rng.integers(diff.size, size=(resamples, diff.size))
    means = diff[idx].mean(axis=1)
    return float((means <= 0.0).mean())
