"""Declarative, picklable predictor specifications.

The old evaluation convention — zero-argument factory closures
(``lambda w=w: factory(w)``) — cannot cross a process boundary and has no
stable identity, so it can neither feed a :class:`ProcessPoolExecutor` nor
key an artifact cache.  :class:`PredictorSpec` replaces it: a frozen
dataclass of ``(kind, parameters)`` that

- **builds** a fresh unfitted predictor (:meth:`PredictorSpec.build`),
- **pickles** (plain data, no closures — workers rebuild predictors
  locally),
- **hashes stably** (:meth:`PredictorSpec.token` /
  :meth:`PredictorSpec.fit_token` — the cache-key ingredient), and
- **derives** sweep grids (:meth:`PredictorSpec.with_params` /
  :meth:`PredictorSpec.grid`).

Kinds live in a registry (:func:`register_spec_kind`): a new predictor
registers its builder, the subset of parameters that influence ``fit``
(``fit_params`` — the rest only shape ``predict``, so cached fit artifacts
are shared across them), and whether the builder accepts a ``seed``.
Parameters are normalized against the builder's signature at construction,
so two spellings of the same configuration always carry the same token.

Migration from the factory convention::

    # before                                    # after
    cross_validate(                             cross_validate(
        lambda: MetaLearner(                        PredictorSpec.meta(
            prediction_window=w,                        prediction_window=w,
            rule_window=rw),                            rule_window=rw),
        events, k=10)                               events, k=10, jobs=4)
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.meta.stacked import MetaLearner
from repro.predictors.base import Predictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory
from repro.util.rng import SeedLike
from repro.util.timeutil import HOUR, MINUTE

#: Parameter values a spec may carry: JSON-stable primitives only.
ParamValue = Union[int, float, str, bool, None]


class SpecError(ValueError):
    """Unknown kind or invalid parameters for a predictor spec."""


@dataclass(frozen=True)
class SpecKind:
    """One registered predictor kind."""

    kind: str
    builder: Callable[..., Predictor]
    #: Parameter names whose values influence ``fit`` (and therefore the
    #: fit-artifact cache key).  Everything else only shapes ``predict``.
    fit_params: frozenset[str]
    #: Whether ``builder`` accepts a ``seed`` keyword (stochastic kinds).
    seeded: bool = False
    #: Builder parameter names (derived; ``seed`` excluded).
    param_names: frozenset[str] = field(init=False)
    #: Builder defaults per parameter (derived).
    defaults: dict[str, ParamValue] = field(init=False)

    def __post_init__(self) -> None:
        names: set[str] = set()
        defaults: dict[str, ParamValue] = {}
        for name, p in inspect.signature(self.builder).parameters.items():
            if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
                raise SpecError(
                    f"spec builder for {self.kind!r} must have a fixed, "
                    f"introspectable signature (no *args/**kwargs)"
                )
            if name == "seed":
                continue
            names.add(name)
            if p.default is not p.empty:
                defaults[name] = p.default
        unknown = self.fit_params - names
        if unknown:
            raise SpecError(
                f"fit_params not in builder signature for {self.kind!r}: "
                f"{sorted(unknown)}"
            )
        object.__setattr__(self, "param_names", frozenset(names))
        object.__setattr__(self, "defaults", defaults)


_KINDS: dict[str, SpecKind] = {}


def register_spec_kind(
    kind: str,
    builder: Callable[..., Predictor],
    *,
    fit_params: Iterable[str],
    seeded: bool = False,
) -> SpecKind:
    """Register a predictor kind; new kinds plug in here, not in if/elifs."""
    if kind in _KINDS:
        raise SpecError(f"duplicate spec kind {kind!r}")
    entry = SpecKind(
        kind=kind,
        builder=builder,
        fit_params=frozenset(fit_params),
        seeded=seeded,
    )
    _KINDS[kind] = entry
    return entry


def spec_kind(kind: str) -> SpecKind:
    """Registry entry for ``kind``; :class:`SpecError` if unknown."""
    try:
        return _KINDS[kind]
    except KeyError:
        raise SpecError(
            f"unknown spec kind {kind!r}; known: {', '.join(sorted(_KINDS))}"
        ) from None


def registered_spec_kinds() -> tuple[str, ...]:
    """All registered kinds, sorted."""
    return tuple(sorted(_KINDS))


def _check_param_value(name: str, value: Any) -> ParamValue:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecError(
        f"spec parameter {name!r} must be a JSON-stable primitive "
        f"(int/float/str/bool/None), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class PredictorSpec:
    """A declarative recipe for one predictor configuration.

    Construct through :meth:`of` or the per-kind conveniences
    (:meth:`statistical`, :meth:`rule`, :meth:`meta`, :meth:`three_phase`) —
    they normalize parameters against the kind's builder signature, so
    ``params`` is always the complete, sorted parameter set and equal
    configurations compare (and hash, and pickle) identically.
    """

    kind: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    # -- construction --------------------------------------------------- #

    @classmethod
    def of(cls, kind: str, **params: Any) -> "PredictorSpec":
        """Spec for a registered kind; unknown parameters are rejected."""
        entry = spec_kind(kind)
        unknown = set(params) - entry.param_names
        if unknown:
            raise SpecError(
                f"unknown parameters for kind {kind!r}: {sorted(unknown)}"
            )
        merged = dict(entry.defaults)
        merged.update(params)
        missing = entry.param_names - set(merged)
        if missing:
            raise SpecError(
                f"missing required parameters for kind {kind!r}: "
                f"{sorted(missing)}"
            )
        normalized = tuple(
            (name, _check_param_value(name, merged[name]))
            for name in sorted(merged)
        )
        return cls(kind=kind, params=normalized)

    @classmethod
    def statistical(cls, **params: Any) -> "PredictorSpec":
        """Spec for the statistical base predictor (paper §3.2.1)."""
        return cls.of("statistical", **params)

    @classmethod
    def rule(cls, **params: Any) -> "PredictorSpec":
        """Spec for the rule-based base predictor (paper §3.2.2)."""
        return cls.of("rule", **params)

    @classmethod
    def meta(cls, **params: Any) -> "PredictorSpec":
        """Spec for the stacked meta-learner (paper §3.3)."""
        return cls.of("meta", **params)

    @classmethod
    def three_phase(cls, **params: Any) -> "PredictorSpec":
        """Spec for the end-to-end three-phase predictor."""
        return cls.of("three-phase", **params)

    @classmethod
    def from_dict(cls, doc: dict) -> "PredictorSpec":
        """Rebuild a spec from its :meth:`as_manifest` document.

        The round-trip partner the lifecycle model registry uses: a snapshot
        manifest carries ``{"kind": ..., "params": {...}}`` and this restores
        a spec with the identical ``token()``/``fit_token()``.
        """
        try:
            kind = doc["kind"]
            params = doc.get("params", {})
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed spec document: {exc}") from exc
        if not isinstance(params, dict):
            raise SpecError("spec document 'params' is not an object")
        return cls.of(str(kind), **params)

    def as_manifest(self) -> dict:
        """JSON-ready ``{"kind", "params"}`` document (registry manifests)."""
        return {"kind": self.kind, "params": self.as_dict()}

    # -- access / derivation -------------------------------------------- #

    def as_dict(self) -> dict[str, ParamValue]:
        """The parameters as a plain dict (copy)."""
        return dict(self.params)

    def get(self, name: str, default: ParamValue = None) -> ParamValue:
        """One parameter's value (``default`` if the kind lacks it)."""
        return self.as_dict().get(name, default)

    def with_params(self, **overrides: Any) -> "PredictorSpec":
        """A new spec with some parameters replaced (sweep derivation)."""
        merged = self.as_dict()
        merged.update(overrides)
        return PredictorSpec.of(self.kind, **merged)

    def grid(
        self, param: str, values: Sequence[float]
    ) -> list[tuple[float, "PredictorSpec"]]:
        """``(value, derived spec)`` pairs varying one parameter.

        The shape :func:`repro.evaluation.sweep.sweep` consumes; ``param``
        is typically ``"prediction_window"`` (Figures 4-5) or
        ``"rule_window"`` (Step 5).
        """
        return [(float(v), self.with_params(**{param: v})) for v in values]

    # -- identity -------------------------------------------------------- #

    def _token_of(self, params: dict[str, ParamValue]) -> str:
        payload = json.dumps(
            {"kind": self.kind, "params": params},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def token(self) -> str:
        """Stable content hash of the full configuration."""
        return self._token_of(self.as_dict())

    def fit_token(self) -> str:
        """Stable content hash of the *fit-relevant* configuration.

        Parameters that only shape ``predict`` (e.g. the meta-learner's
        ``prediction_window``) are excluded, so one cached fit artifact
        serves every sweep point that shares training parameters.
        """
        entry = spec_kind(self.kind)
        fit_only = {
            k: v for k, v in self.params if k in entry.fit_params
        }
        return self._token_of(fit_only)

    # -- realization ----------------------------------------------------- #

    @property
    def seeded(self) -> bool:
        """Whether this kind's builder threads an explicit seed."""
        return spec_kind(self.kind).seeded

    def build(self, seed: SeedLike = None) -> Predictor:
        """A fresh, unfitted predictor realizing this spec.

        ``seed`` is forwarded to seeded kinds (the evaluation engine spawns
        a per-fold child :class:`numpy.random.SeedSequence`); deterministic
        kinds ignore it.
        """
        entry = spec_kind(self.kind)
        kwargs: dict[str, Any] = self.as_dict()
        if entry.seeded:
            kwargs["seed"] = seed
        return entry.builder(**kwargs)


# ---------------------------------------------------------------------- #
# Built-in kinds
# ---------------------------------------------------------------------- #


def _build_statistical(
    window: float = HOUR,
    lead: float = 5 * MINUTE,
    trigger_threshold: float = 0.25,
    deduplicate: bool = False,
    categories: Optional[str] = None,
) -> StatisticalPredictor:
    # Spec params are JSON primitives, so forced trigger categories travel
    # as a comma-separated list of MainCategory names.
    forced = (
        [MainCategory[name] for name in categories.split(",")]
        if categories
        else None
    )
    return StatisticalPredictor(
        window=window,
        lead=lead,
        trigger_threshold=trigger_threshold,
        deduplicate=deduplicate,
        categories=forced,
    )


def _build_rule(
    rule_window: float = 15 * MINUTE,
    prediction_window: float = 30 * MINUTE,
    min_support: float = 0.04,
    min_confidence: float = 0.2,
    max_len: int = 6,
    miner: str = "apriori",
) -> RuleBasedPredictor:
    return RuleBasedPredictor(
        rule_window=rule_window,
        prediction_window=prediction_window,
        min_support=min_support,
        min_confidence=min_confidence,
        max_len=max_len,
        miner=miner,
    )


def _build_meta(
    prediction_window: float = 30 * MINUTE,
    rule_window: float = 15 * MINUTE,
    min_support: float = 0.04,
    min_confidence: float = 0.2,
    max_len: int = 6,
    miner: str = "apriori",
    statistical_window: float = HOUR,
    statistical_lead: float = 5 * MINUTE,
    trigger_threshold: float = 0.25,
) -> MetaLearner:
    return MetaLearner(
        prediction_window=prediction_window,
        statistical=StatisticalPredictor(
            window=statistical_window,
            lead=statistical_lead,
            trigger_threshold=trigger_threshold,
        ),
        rulebased=RuleBasedPredictor(
            rule_window=rule_window,
            prediction_window=prediction_window,
            min_support=min_support,
            min_confidence=min_confidence,
            max_len=max_len,
            miner=miner,
        ),
    )


def _build_three_phase(
    compression_threshold: float = 300.0,
    temporal_key_mode: str = "job_location",
    rule_window: float = 15 * MINUTE,
    min_support: float = 0.04,
    min_confidence: float = 0.2,
    max_rule_len: int = 6,
    miner: str = "apriori",
    statistical_lead: float = 5 * MINUTE,
    statistical_window: float = HOUR,
    trigger_threshold: float = 0.25,
    prediction_window: float = 30 * MINUTE,
) -> ThreePhasePredictor:
    return ThreePhasePredictor(PredictorConfig(
        compression_threshold=compression_threshold,
        temporal_key_mode=temporal_key_mode,
        rule_window=rule_window,
        min_support=min_support,
        min_confidence=min_confidence,
        max_rule_len=max_rule_len,
        miner=miner,
        statistical_lead=statistical_lead,
        statistical_window=statistical_window,
        trigger_threshold=trigger_threshold,
        prediction_window=prediction_window,
    ))


register_spec_kind(
    "statistical",
    _build_statistical,
    # All statistical parameters shape fit (the band bounds the follow-up
    # count) except deduplicate, which only filters predict output.
    fit_params=("window", "lead", "trigger_threshold", "categories"),
)
register_spec_kind(
    "rule",
    _build_rule,
    # Mining sees rule_window + thresholds; prediction_window only drives
    # the test-time sliding window, so cached rule sets are shared across
    # the paper's Figure-4 sweep.
    fit_params=(
        "rule_window", "min_support", "min_confidence", "max_len", "miner",
    ),
)
register_spec_kind(
    "meta",
    _build_meta,
    fit_params=(
        "rule_window", "min_support", "min_confidence", "max_len", "miner",
        "statistical_window", "statistical_lead", "trigger_threshold",
    ),
)
register_spec_kind(
    "three-phase",
    _build_three_phase,
    fit_params=(
        "compression_threshold", "temporal_key_mode",
        "rule_window", "min_support", "min_confidence", "max_rule_len",
        "miner", "statistical_lead", "statistical_window",
        "trigger_threshold",
    ),
)
