"""Published numbers from the paper, for side-by-side reporting.

Every benchmark prints the relevant constants from this module next to its
own measurements, and EXPERIMENTS.md records both.  Values are transcribed
from the paper (ICPP 2007); window keys are minutes.
"""

from __future__ import annotations

from repro.taxonomy.categories import MainCategory

# ---------------------------------------------------------------------- #
# Table 1 — RAS log summaries.
# ---------------------------------------------------------------------- #

TABLE1 = {
    "ANL": {
        "start": "2005-01-21",
        "end": "2006-04-28",
        "records": 4_172_359,
        "size_gb": 5.0,
    },
    "SDSC": {
        "start": "2004-12-06",
        "end": "2006-02-21",
        "records": 428_953,
        "size_gb": 0.54,
    },
}

# ---------------------------------------------------------------------- #
# Table 3 — taxonomy shape.
# ---------------------------------------------------------------------- #

TABLE3_SUBCATEGORY_COUNTS = {
    MainCategory.APPLICATION: 12,
    MainCategory.IOSTREAM: 8,
    MainCategory.KERNEL: 20,
    MainCategory.MEMORY: 22,
    MainCategory.MIDPLANE: 6,
    MainCategory.NETWORK: 11,
    MainCategory.NODECARD: 10,
    MainCategory.OTHER: 12,
}

# ---------------------------------------------------------------------- #
# Table 4 — distribution of compressed fatal events.
# ---------------------------------------------------------------------- #

TABLE4 = {
    "ANL": {
        MainCategory.APPLICATION: 762,
        MainCategory.IOSTREAM: 1173,
        MainCategory.KERNEL: 224,
        MainCategory.MEMORY: 52,
        MainCategory.MIDPLANE: 102,
        MainCategory.NETWORK: 482,
        MainCategory.NODECARD: 20,
        MainCategory.OTHER: 8,
    },
    "SDSC": {
        MainCategory.APPLICATION: 587,
        MainCategory.IOSTREAM: 905,
        MainCategory.KERNEL: 182,
        MainCategory.MEMORY: 25,
        MainCategory.MIDPLANE: 97,
        MainCategory.NETWORK: 366,
        MainCategory.NODECARD: 17,
        MainCategory.OTHER: 3,
    },
}

TABLE4_TOTALS = {"ANL": 2823, "SDSC": 2182}

# ---------------------------------------------------------------------- #
# Table 5 — statistical predictor, 10-fold CV, band 5 min .. 1 h.
# ---------------------------------------------------------------------- #

TABLE5 = {
    "ANL": {"precision": 0.5157, "recall": 0.4872},
    "SDSC": {"precision": 0.2837, "recall": 0.3117},
}

# ---------------------------------------------------------------------- #
# Figure 4 — rule-based predictor vs prediction window (reported bands).
# The paper gives curves, not a table; these are the stated envelopes plus
# the trend: recall rises with the window, precision stays high.
# ---------------------------------------------------------------------- #

FIGURE4_BANDS = {
    "precision": (0.7, 0.9),
    "recall": (0.22, 0.55),
}

#: Rule-generation windows the paper selects in §3.2.2 Step 5 (minutes).
RULE_GENERATION_WINDOW_MIN = {"ANL": 15, "SDSC": 25}

#: Failures without any precursor non-fatal events (fraction ranges).
NO_PRECURSOR_FRACTION = {"ANL": (0.31, 0.66), "SDSC": (0.47, 0.75)}

# ---------------------------------------------------------------------- #
# Figure 5 — meta-learner vs prediction window (stated endpoints).
# ---------------------------------------------------------------------- #

FIGURE5 = {
    "ANL": {
        "precision_at_5min": 0.88,
        "precision_at_60min": 0.65,
        "recall_at_5min": 0.64,
        "recall_at_60min": 0.78,
    },
    "SDSC": {
        "precision_at_5min": 0.99,
        "precision_at_60min": 0.89,
        "recall_floor": 0.65,  # "recall is always around 0.65"
    },
}

# ---------------------------------------------------------------------- #
# §3.3 — rule generation cost (authors' 2007 testbed, seconds).
# ---------------------------------------------------------------------- #

RULE_GENERATION_SECONDS = {"5min_window": 35.0, "1h_window": 167.0}
