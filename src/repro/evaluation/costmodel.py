"""Compatibility shim — the cost model moved to :mod:`repro.actions.costmodel`.

The proactive fault-tolerance cost model is now part of the actions layer
(the prediction-to-action engine), where all cost arithmetic lives.  This
module re-exports the public names so historical imports keep working;
new code should import from :mod:`repro.actions.costmodel` directly.
"""

from __future__ import annotations

from repro.actions.costmodel import (
    CheckpointPolicy,
    CostReport,
    breakeven_precision,
    evaluate_policy,
    proactive_checkpoint_count,
)

__all__ = [
    "CheckpointPolicy",
    "CostReport",
    "breakeven_precision",
    "evaluate_policy",
    "proactive_checkpoint_count",
]
