"""CSV export of experiment series.

Benchmarks print paper-vs-measured blocks; downstream users usually want the
raw series for their own plotting stack.  These helpers write the three
series kinds the study produces — sweeps (Figures 4/5), CDFs (Figure 2) and
category tables (Table 4) — as plain CSV with a one-line header.  Used by
``bgl-predict export``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, TextIO, Union

from repro.evaluation.sweep import SweepPoint
from repro.taxonomy.categories import CATEGORY_ORDER, MainCategory

PathOrFile = Union[str, Path, TextIO]


def _open(target: PathOrFile) -> tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", newline="", encoding="utf-8"), True
    return target, False


def write_sweep_csv(points: Sequence[SweepPoint], target: PathOrFile) -> int:
    """``window_minutes,precision,recall,f1`` rows; returns the row count."""
    fh, own = _open(target)
    try:
        writer = csv.writer(fh)
        writer.writerow(["window_minutes", "precision", "recall", "f1"])
        for p in points:
            writer.writerow(
                [f"{p.window_minutes:g}", f"{p.precision:.6f}",
                 f"{p.recall:.6f}", f"{p.f1:.6f}"]
            )
        return len(points)
    finally:
        if own:
            fh.close()


def write_cdf_csv(
    grid_seconds: Sequence[float],
    cdf: Sequence[float],
    target: PathOrFile,
) -> int:
    """``offset_seconds,cdf`` rows; returns the row count."""
    if len(grid_seconds) != len(cdf):
        raise ValueError("grid and cdf lengths differ")
    fh, own = _open(target)
    try:
        writer = csv.writer(fh)
        writer.writerow(["offset_seconds", "probability"])
        for g, c in zip(grid_seconds, cdf):
            writer.writerow([f"{g:g}", f"{float(c):.6f}"])
        return len(cdf)
    finally:
        if own:
            fh.close()


def write_category_csv(
    counts_by_log: dict[str, dict[MainCategory, int]],
    target: PathOrFile,
) -> int:
    """Table-4 layout: one row per category, one column per log."""
    logs = list(counts_by_log)
    fh, own = _open(target)
    try:
        writer = csv.writer(fh)
        writer.writerow(["category", *logs])
        for cat in CATEGORY_ORDER:
            writer.writerow(
                [cat.value] + [counts_by_log[log].get(cat, 0) for log in logs]
            )
        writer.writerow(
            ["total"] + [sum(counts_by_log[log].values()) for log in logs]
        )
        return len(CATEGORY_ORDER) + 1
    finally:
        if own:
            fh.close()
