"""Compatibility shim — rescue simulation moved to :mod:`repro.actions.rescue`.

The failure-aware job rescue replay is now part of the actions layer (the
prediction-to-action engine), where all cost arithmetic lives.  This
module re-exports the public names so historical imports keep working;
new code should import from :mod:`repro.actions.rescue` directly.
"""

from __future__ import annotations

from repro.actions.rescue import (
    NODES_PER_MIDPLANE,
    RescueOutcome,
    dedupe_by_matched_fatal,
    simulate_rescue,
)

__all__ = [
    "NODES_PER_MIDPLANE",
    "RescueOutcome",
    "dedupe_by_matched_fatal",
    "simulate_rescue",
]
