"""Parallel fold-task execution with artifact-cache memoization.

The engine is the single execution substrate under ``cross_validate`` and
``sweep``: callers describe work as :class:`FoldTask` values (spec + held-out
index range), and :func:`run_fold_tasks` executes them

- **serially** (default — deterministic, zero-dependency), or
- **on a process pool** (``jobs > 1`` or ``REPRO_JOBS``) via
  :class:`concurrent.futures.ProcessPoolExecutor`, with the event store
  shipped once per worker through the pool initializer rather than once per
  task.

Both backends run the identical per-task code path and results are returned
in task order, so serial and parallel runs are bit-for-bit identical.

When a cache directory is configured (``cache_dir`` or ``REPRO_CACHE_DIR``),
each task first consults the content-addressed :class:`~repro.cache.ArtifactCache`
under :func:`~repro.cache.fold_fit_key`; a hit restores the fitted predictor
via :func:`~repro.core.serialize.apply_learned_state` and skips training
entirely.  Because the key uses the spec's *fit token*, sweep points that
differ only in predict-time parameters (e.g. ``prediction_window``) share
one cached artifact.

Observability: the parent process records an ``engine.run`` span,
``engine.tasks`` / ``engine.cache_hits`` / ``engine.cache_misses`` counters,
an ``engine.jobs`` gauge and an ``engine.task_seconds`` histogram.  Worker
processes cannot reach the parent's registry, so cache activity is carried
back on each :class:`FoldOutcome` and aggregated parent-side.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Optional, Sequence, Union

import numpy as np

from repro.cache import ArtifactCache, fold_fit_key, store_fingerprint
from repro.core.serialize import (
    SerializationError,
    apply_learned_state,
    learned_state_to_dict,
)
from repro.evaluation.incremental import (
    IncrementalFitter,
    is_incremental_enabled,
    supports_incremental,
)
from repro.evaluation.matching import MatchResult, match_warnings
from repro.evaluation.spec import PredictorSpec
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.ras.store import EventStore


@dataclass(frozen=True)
class FoldTask:
    """One unit of evaluation work: fit on the complement, score the fold.

    ``group`` is a caller-chosen partition key (sweep-point index; 0 for a
    plain cross-validation) used to reassemble outcomes.  ``seed`` carries a
    per-task child :class:`numpy.random.SeedSequence` for seeded predictor
    kinds; deterministic kinds leave it ``None``.
    """

    spec: PredictorSpec
    start: int
    end: int
    fold: int
    group: int = 0
    seed: Optional[np.random.SeedSequence] = None


@dataclass(frozen=True)
class FoldOutcome:
    """Result of one :class:`FoldTask`, in task order."""

    group: int
    fold: int
    match: MatchResult
    cache_hit: bool
    seconds: float


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_cache_dir(cache_dir: Union[str, Path, None]) -> Optional[str]:
    """Effective cache directory: explicit value, else ``REPRO_CACHE_DIR``."""
    if cache_dir is not None:
        return str(cache_dir)
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return raw or None


def spawn_task_seeds(
    seed: Optional[int], count: int
) -> list[Optional[np.random.SeedSequence]]:
    """Per-task child seed sequences from one root seed.

    Spawning (rather than ``seed + i`` arithmetic) keeps the streams
    statistically independent, and makes each task's stream a pure function
    of (root seed, task position) — independent of how many workers run or
    in what order tasks finish.
    """
    if seed is None:
        return [None] * count
    return list(np.random.SeedSequence(seed).spawn(count))


# --------------------------------------------------------------------- #
# Task execution (shared by both backends)
# --------------------------------------------------------------------- #


def _fit_task_predictor(
    task: FoldTask,
    train: EventStore,
    cache: Optional[ArtifactCache],
    fingerprint: str,
    fitter: Optional[IncrementalFitter] = None,
) -> tuple[Predictor, bool]:
    """A fitted predictor for ``task`` — from cache when possible."""
    predictor = task.spec.build(seed=task.seed)
    use_fitter = fitter is not None and supports_incremental(task.spec)

    def fit() -> Predictor:
        if use_fitter:
            assert fitter is not None
            # Bit-identical to predictor.fit(train) (equivalence-tested),
            # so the cached payload below is unchanged by the optimization.
            return fitter.fit_into(predictor, task.spec, train)
        return predictor.fit(train)

    if cache is None:
        return fit(), False
    key = fold_fit_key(fingerprint, task.start, task.end, task.spec)
    doc = cache.get(key)
    if doc is not None:
        try:
            return apply_learned_state(predictor, doc), True
        except SerializationError:
            # Stale or foreign payload under our key: treat as a miss.
            pass
    fit()
    try:
        cache.put(key, learned_state_to_dict(predictor))
    except (OSError, SerializationError):
        pass  # caching is an optimization; never fail the evaluation
    return predictor, False


def _execute_task(
    task: FoldTask,
    events: EventStore,
    cache: Optional[ArtifactCache],
    fingerprint: str,
    fitter: Optional[IncrementalFitter] = None,
) -> FoldOutcome:
    t0 = perf_counter()
    n = len(events)
    all_idx = np.arange(n)
    test = events.select(slice(task.start, task.end))
    train = events.select(
        np.concatenate([all_idx[: task.start], all_idx[task.end :]])
    )
    predictor, hit = _fit_task_predictor(task, train, cache, fingerprint, fitter)
    warnings = predictor.predict(test)
    match = match_warnings(warnings, test)
    return FoldOutcome(
        group=task.group,
        fold=task.fold,
        match=match,
        cache_hit=hit,
        seconds=perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------- #

# Per-worker globals, installed once by the pool initializer so the event
# store and cache handle are not re-pickled for every task.
_WORKER_EVENTS: Optional[EventStore] = None
_WORKER_CACHE: Optional[ArtifactCache] = None
_WORKER_FINGERPRINT: str = ""


def _ship_events(events: EventStore) -> Union[EventStore, str]:
    """What to send each worker: the store's path when it lives on disk.

    A columnar-backed store ships as its directory path — kilobytes on the
    wire instead of the full column bytes — and every worker re-opens its
    own memory map.  In-memory stores still pickle whole (the original
    behavior).
    """
    return events.storage_path or events


def _init_worker(
    events: Union[EventStore, str], cache_dir: Optional[str], fingerprint: str
) -> None:
    global _WORKER_EVENTS, _WORKER_CACHE, _WORKER_FINGERPRINT
    if isinstance(events, str):
        from repro.ras.columnar import open_store

        events = open_store(events)
    _WORKER_EVENTS = events
    _WORKER_CACHE = ArtifactCache(cache_dir) if cache_dir else None
    _WORKER_FINGERPRINT = fingerprint


def _run_in_worker(task: FoldTask) -> FoldOutcome:
    assert _WORKER_EVENTS is not None, "worker initializer did not run"
    return _execute_task(task, _WORKER_EVENTS, _WORKER_CACHE, _WORKER_FINGERPRINT)


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def run_fold_tasks(
    tasks: Sequence[FoldTask],
    events: EventStore,
    *,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    incremental: Optional[bool] = None,
) -> list[FoldOutcome]:
    """Execute fold tasks and return their outcomes in task order.

    ``jobs=None`` consults ``REPRO_JOBS`` (default 1 — serial in-process);
    ``cache_dir=None`` consults ``REPRO_CACHE_DIR`` (default: no cache);
    ``incremental=None`` consults ``REPRO_INCREMENTAL`` (default: off).
    Outcome order, fold metrics and cache keys are identical across
    backends, worker counts, and the incremental switch.

    With ``incremental`` on, the serial backend fits supported specs
    through one :class:`~repro.evaluation.incremental.IncrementalFitter`
    shared across all tasks: consecutive tasks whose training sets overlap
    (sweep points sharing a mining recipe, successive folds) pay only the
    mining delta.  The maintained state is in-process, so the process-pool
    backend ignores the switch.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    effective_dir = resolve_cache_dir(cache_dir)
    fingerprint = store_fingerprint(events) if effective_dir else ""
    obs = get_registry()
    backend = "process" if (jobs > 1 and len(tasks) > 1) else "serial"
    with obs.span("engine.run", backend=backend, jobs=str(jobs)):
        if backend == "serial":
            cache = ArtifactCache(effective_dir) if effective_dir else None
            fitter = (
                IncrementalFitter() if is_incremental_enabled(incremental)
                else None
            )
            outcomes = []
            for task in tasks:
                # Same span name the pre-engine fold loop used, so trace
                # consumers see one "crossval.fold" per fold either way.
                with obs.span(
                    "crossval.fold", fold=str(task.fold), group=str(task.group)
                ):
                    outcomes.append(
                        _execute_task(task, events, cache, fingerprint, fitter)
                    )
            if fitter is not None:
                obs.counter("engine.incremental_fits", fitter.fits)
                obs.counter(
                    "engine.incremental_zero_delta", fitter.zero_delta_fits
                )
        else:
            workers = min(jobs, len(tasks))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(_ship_events(events), effective_dir, fingerprint),
            ) as pool:
                outcomes = list(pool.map(_run_in_worker, tasks))
    obs.counter("engine.tasks", len(tasks))
    obs.gauge("engine.jobs", jobs)
    for outcome in outcomes:
        obs.observe("engine.task_seconds", outcome.seconds)
    if effective_dir is not None:
        hits = sum(1 for o in outcomes if o.cache_hit)
        obs.counter("engine.cache_hits", hits)
        obs.counter("engine.cache_misses", len(outcomes) - hits)
    return outcomes
