"""Calibration measurement harness.

Profiles are calibrated against the paper's headline numbers (see
docs/calibration.md).  This module makes the measurement loop a library
facility rather than a dev script: :func:`measure_profile` runs the full
pipeline on freshly generated logs over several seeds and returns every
headline metric, and :func:`compare_to_paper` scores a measurement against
the published targets so drift is visible in one table (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.crossval import cross_validate
from repro.evaluation.paper import RULE_GENERATION_WINDOW_MIN, TABLE5
from repro.evaluation.spec import PredictorSpec
from repro.predictors.rulebased import RuleBasedPredictor
from repro.synth.generator import LogGenerator
from repro.synth.profiles import SystemProfile
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE


@dataclass
class CalibrationMeasurement:
    """Headline metrics of one profile at one scale (seed-averaged)."""

    profile: str
    scale: float
    seeds: tuple[int, ...]
    stat_precision: float = 0.0
    stat_recall: float = 0.0
    rule_precision_5: float = 0.0
    rule_recall_5: float = 0.0
    rule_precision_60: float = 0.0
    rule_recall_60: float = 0.0
    meta_precision_5: float = 0.0
    meta_recall_5: float = 0.0
    meta_precision_60: float = 0.0
    meta_recall_60: float = 0.0
    no_precursor_fraction: float = 0.0
    fatal_recovery: float = 0.0  # compressed fatals / planted fatals
    rules_mined: float = 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        """(name, value) rows for reporting."""
        skip = {"profile", "scale", "seeds"}
        return [
            (name, round(value, 4))
            for name, value in vars(self).items()
            if name not in skip
        ]


def measure_profile(
    profile: SystemProfile,
    scale: float = 0.25,
    seeds: Sequence[int] = (11, 23),
    k: int = 10,
    rule_window: Optional[float] = None,
) -> CalibrationMeasurement:
    """Run the full pipeline per seed and average the headline metrics."""
    if rule_window is None:
        rule_window = RULE_GENERATION_WINDOW_MIN.get(profile.name, 15) * MINUTE
    acc: dict[str, list[float]] = {}

    def add(name: str, value: float) -> None:
        acc.setdefault(name, []).append(float(value))

    for seed in seeds:
        log = LogGenerator(profile, scale=scale, seed=seed).generate()
        events = ThreePhasePredictor().preprocess(log.raw).events
        planted = sum(log.ground_truth_fatal_counts().values())
        add("fatal_recovery",
            len(events.fatal_events()) / planted if planted else 1.0)

        cv = cross_validate(
            PredictorSpec.statistical(
                window=HOUR, lead=5 * MINUTE,
                categories=f"{MainCategory.NETWORK.name},"
                           f"{MainCategory.IOSTREAM.name}",
            ),
            events, k=k,
        )
        add("stat_precision", cv.precision)
        add("stat_recall", cv.recall)

        for minutes in (5, 60):
            cv = cross_validate(
                PredictorSpec.rule(
                    rule_window=rule_window,
                    prediction_window=minutes * MINUTE,
                ),
                events, k=k,
            )
            add(f"rule_precision_{minutes}", cv.precision)
            add(f"rule_recall_{minutes}", cv.recall)
            cv = cross_validate(
                PredictorSpec.meta(
                    prediction_window=minutes * MINUTE,
                    rule_window=rule_window,
                ),
                events, k=k,
            )
            add(f"meta_precision_{minutes}", cv.precision)
            add(f"meta_recall_{minutes}", cv.recall)

        rb = RuleBasedPredictor(rule_window=rule_window).fit(events)
        add("no_precursor_fraction", rb.no_precursor_fraction)
        add("rules_mined", len(rb.ruleset or []))

    m = CalibrationMeasurement(
        profile=profile.name, scale=scale, seeds=tuple(seeds)
    )
    for name, values in acc.items():
        setattr(m, name, float(np.mean(values)))
    return m


@dataclass(frozen=True)
class TargetCheck:
    """One target comparison row."""

    name: str
    measured: float
    target: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return abs(self.measured - self.target) <= self.tolerance

    @property
    def delta(self) -> float:
        return self.measured - self.target


def compare_to_paper(
    measurement: CalibrationMeasurement,
    tolerance: float = 0.08,
) -> list[TargetCheck]:
    """Score a measurement against the paper's Table-5 point targets.

    Only the statistical predictor has published point values; the other
    curves are band/shape targets asserted by the benchmarks.
    """
    paper = TABLE5.get(measurement.profile)
    if paper is None:
        raise KeyError(f"no paper targets for profile {measurement.profile}")
    return [
        TargetCheck("stat_precision", measurement.stat_precision,
                    paper["precision"], tolerance),
        TargetCheck("stat_recall", measurement.stat_recall,
                    paper["recall"], tolerance),
    ]
