"""Spec-aware incremental fitting: one maintained miner per fit recipe.

The mining layer's :class:`~repro.mining.incremental.IncrementalRuleMiner`
knows nothing about :class:`~repro.evaluation.spec.PredictorSpec` (layering:
mining is a transform, specs are evaluation).  This module is the bridge:
:class:`IncrementalFitter` pools maintained miners keyed by each spec's
*mining recipe* (rule_window + thresholds — the fit-relevant parameters that
shape the transaction DB and the mined rules) and fits supported predictor
kinds by syncing the right miner to the training window and restoring the
resulting rule set through the predictors' public state paths.

Two call sites share one fitter and therefore one maintained structure:

- the evaluation engine's serial backend, where consecutive fold tasks of a
  ``spec.grid()`` sweep differ only in held-out range or predict-time
  parameters — the sync delta is the two folds that changed, or nothing;
- ``lifecycle.Retrainer``, where successive sliding windows overlap almost
  entirely — the sync delta is the freshly arrived and freshly evicted
  transactions.

Fits produced here are bit-identical to ``predictor.fit(train)`` (the
mining engine's equivalence guarantee plus the predictors' own
``restore_state`` contract), so artifact-cache payloads, cache keys, and
model-registry snapshot ids are unchanged by the optimization.

``is_incremental_enabled`` consults the ``REPRO_INCREMENTAL`` environment
variable (``1``/``true``/``on``) so the engine and lifecycle default from
the environment, mirroring ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Optional

from repro.evaluation.spec import PredictorSpec
from repro.meta.stacked import MetaLearner
from repro.mining.incremental import IncrementalRuleMiner
from repro.mining.transactions import build_event_sets
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.ras.store import EventStore

#: Spec kinds the incremental engine can fit.  ``statistical`` fits are a
#: single vectorized pass (nothing to maintain); ``three-phase`` owns its
#: Phase-1 preprocessing whose output feeds mining, so its training window
#: is not the classified store the fitter sees — both fall back.
SUPPORTED_KINDS = frozenset({"rule", "meta"})

_TRUTHY = {"1", "true", "on", "yes"}


def is_incremental_enabled(flag: Optional[bool] = None) -> bool:
    """Effective incremental switch: explicit flag, else ``REPRO_INCREMENTAL``."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get("REPRO_INCREMENTAL", "").strip().lower()
    return raw in _TRUTHY


def supports_incremental(spec: PredictorSpec) -> bool:
    """Whether :class:`IncrementalFitter` can fit this spec kind."""
    return spec.kind in SUPPORTED_KINDS


def mining_recipe(spec: PredictorSpec) -> tuple:
    """The parameters that determine the maintained mining state.

    Two specs with equal recipes see the same transaction DB and mine the
    same rule sets, so they can share one maintained miner (this is how a
    ``prediction_window`` sweep reuses a single fit per window).
    """
    return (
        float(spec.get("rule_window")),  # type: ignore[arg-type]
        float(spec.get("min_support")),  # type: ignore[arg-type]
        float(spec.get("min_confidence")),  # type: ignore[arg-type]
        int(spec.get("max_len")),  # type: ignore[arg-type]
    )


class IncrementalFitter:
    """Pool of maintained miners, one per mining recipe.

    Stateful and in-process by design: the maintained trees live in this
    object, so the process-pool backends (``jobs > 1``) cannot use it —
    callers fall back to the ordinary fit path there.
    """

    def __init__(self) -> None:
        self._miners: dict[tuple, IncrementalRuleMiner] = {}
        self.fits = 0
        #: Fits whose sync found a zero delta (pure reuse of the structure).
        self.zero_delta_fits = 0

    def miner_for(self, spec: PredictorSpec) -> IncrementalRuleMiner:
        """The maintained miner for this spec's mining recipe."""
        key = mining_recipe(spec)
        miner = self._miners.get(key)
        if miner is None:
            miner = IncrementalRuleMiner(
                min_support=key[1],
                min_confidence=key[2],
                max_len=key[3],
            )
            self._miners[key] = miner
        return miner

    def peek_miner(self, spec: PredictorSpec) -> Optional[IncrementalRuleMiner]:
        """The spec's maintained miner if one exists (no creation)."""
        return self._miners.get(mining_recipe(spec))

    def install_miner(
        self, spec: PredictorSpec, miner: IncrementalRuleMiner
    ) -> None:
        """Adopt a restored miner as the spec's maintained state."""
        self._miners[mining_recipe(spec)] = miner

    def fit(
        self, spec: PredictorSpec, train: EventStore, seed=None
    ) -> Predictor:
        """A fitted predictor for ``spec`` on ``train`` — O(delta) mining."""
        predictor = spec.build(seed=seed)
        return self.fit_into(predictor, spec, train)

    def fit_into(
        self, predictor: Predictor, spec: PredictorSpec, train: EventStore
    ) -> Predictor:
        """Fit an already-built predictor via the maintained miner.

        Bit-identical to ``predictor.fit(train)`` for supported kinds;
        raises for unsupported ones (callers gate on
        :func:`supports_incremental`).
        """
        if not supports_incremental(spec):
            raise ValueError(
                f"spec kind {spec.kind!r} has no incremental fit path"
            )
        obs = get_registry()
        t0 = perf_counter()
        miner = self.miner_for(spec)
        db = build_event_sets(train, float(spec.get("rule_window")))  # type: ignore[arg-type]
        added, evicted = miner.sync(db)
        ruleset = miner.rules()
        npf = db.no_precursor_fraction()
        if isinstance(predictor, MetaLearner):
            predictor.statistical.fit(train)
            predictor.rulebased.restore_state(ruleset, npf)
            predictor.mark_fitted()
        elif isinstance(predictor, RuleBasedPredictor):
            predictor.restore_state(ruleset, npf)
        else:  # pragma: no cover - kinds and classes move in lockstep
            raise ValueError(
                f"supported kind {spec.kind!r} built unexpected "
                f"{type(predictor).__name__}"
            )
        self.fits += 1
        if added == 0 and evicted == 0:
            self.zero_delta_fits += 1
            obs.counter("mining.incremental.zero_delta_fits")
        obs.counter("mining.incremental.fits")
        obs.observe("retrain.incremental_seconds", perf_counter() - t0)
        return predictor
