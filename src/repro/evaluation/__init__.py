"""Evaluation harness: metrics, matching, cross-validation, sweeps.

Implements the paper's measurement methodology (§3.2): warnings are scored
against the fatal events of the test fold —

- *precision* = correct predictions / all predictions made
  (a warning is correct when a failure occurs inside its horizon);
- *recall* = correctly predicted failures / all failures
  (a failure is predicted when some warning's horizon covers it);

and the paper's standard 10-fold cross-validation: the log is divided into
n contiguous folds of equal size, n-1 train and 1 tests, averaged.

:mod:`repro.evaluation.paper` records the published numbers every benchmark
prints next to its measurements.
"""

from repro.evaluation.costmodel import CheckpointPolicy, evaluate_policy
from repro.evaluation.crossval import (
    CVResult,
    cross_validate,
    fold_index_ranges,
    holdout_validate,
)
from repro.evaluation.engine import (
    FoldOutcome,
    FoldTask,
    resolve_cache_dir,
    resolve_jobs,
    run_fold_tasks,
)
from repro.evaluation.export import (
    write_category_csv,
    write_cdf_csv,
    write_sweep_csv,
)
from repro.evaluation.incremental import (
    IncrementalFitter,
    is_incremental_enabled,
    supports_incremental,
)
from repro.evaluation.matching import MatchResult, match_warnings
from repro.evaluation.metrics import Metrics, mean_metrics
from repro.evaluation.leadtime import (
    LeadTimePoint,
    lead_time_profile,
    lead_time_summary,
)
from repro.evaluation.scheduling import RescueOutcome, simulate_rescue
from repro.evaluation.significance import (
    ConfidenceInterval,
    bootstrap_ci,
    paired_bootstrap_pvalue,
)
from repro.evaluation.spatial import (
    colocated_fraction,
    failure_counts_by_location,
    hotspots,
    spatial_concentration,
)
from repro.evaluation.spec import PredictorSpec, SpecError, registered_spec_kinds
from repro.evaluation.sweep import (
    SweepPoint,
    prediction_window_sweep,
    select_rule_window,
    sweep,
)

__all__ = [
    "Metrics",
    "mean_metrics",
    "MatchResult",
    "match_warnings",
    "CVResult",
    "cross_validate",
    "fold_index_ranges",
    "holdout_validate",
    "PredictorSpec",
    "SpecError",
    "registered_spec_kinds",
    "FoldTask",
    "FoldOutcome",
    "run_fold_tasks",
    "resolve_jobs",
    "resolve_cache_dir",
    "IncrementalFitter",
    "is_incremental_enabled",
    "supports_incremental",
    "SweepPoint",
    "sweep",
    "prediction_window_sweep",
    "select_rule_window",
    "LeadTimePoint",
    "lead_time_profile",
    "lead_time_summary",
    "failure_counts_by_location",
    "hotspots",
    "spatial_concentration",
    "colocated_fraction",
    "CheckpointPolicy",
    "evaluate_policy",
    "write_sweep_csv",
    "write_cdf_csv",
    "write_category_csv",
    "RescueOutcome",
    "simulate_rescue",
    "ConfidenceInterval",
    "bootstrap_ci",
    "paired_bootstrap_pvalue",
]
