"""Matching warning streams against observed failures.

A warning is a *true positive* when at least one fatal event falls inside its
closed horizon ``[horizon_start, horizon_end]``; a fatal event is *covered*
when at least one warning's horizon contains it.  Both directions are
computed vectorized with two ``searchsorted`` passes plus a difference-array
coverage accumulation — no quadratic warning x failure loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.evaluation.metrics import Metrics
from repro.predictors.base import FailureWarning
from repro.ras.store import EventStore


@dataclass
class MatchResult:
    """Detailed outcome of matching one warning stream to one test fold."""

    metrics: Metrics
    #: Per-warning: did a failure occur within the horizon?
    warning_hit: np.ndarray
    #: Per-fatal-event: was it covered by any warning horizon?
    fatal_covered: np.ndarray
    #: For covered fatals, lead time from the earliest covering warning's
    #: issue to the failure (NaN for uncovered).
    lead_seconds: np.ndarray
    #: Per-warning: index of the first fatal inside the horizon (-1 for a
    #: miss).  Lets cost models charge one action per *distinct* matched
    #: failure instead of one per warning (``None`` on hand-built results).
    warning_fatal: Optional[np.ndarray] = None

    @property
    def mean_lead(self) -> float:
        """Mean warning lead time over covered failures (NaN if none)."""
        covered = self.lead_seconds[~np.isnan(self.lead_seconds)]
        return float(covered.mean()) if covered.size else float("nan")


def match_warnings(
    warnings: Sequence[FailureWarning],
    test_events: EventStore,
) -> MatchResult:
    """Score a warning stream against the fatal events of a test store."""
    fatal_times = test_events.fatal_events().times.astype(np.int64)
    n_fatals = int(fatal_times.size)
    n_warnings = len(warnings)
    if n_warnings == 0:
        return MatchResult(
            metrics=Metrics(0, 0, n_fatals, 0),
            warning_hit=np.zeros(0, dtype=bool),
            fatal_covered=np.zeros(n_fatals, dtype=bool),
            lead_seconds=np.full(n_fatals, np.nan),
            warning_fatal=np.zeros(0, dtype=np.int64),
        )

    starts = np.array([w.horizon_start for w in warnings], dtype=np.int64)
    ends = np.array([w.horizon_end for w in warnings], dtype=np.int64)
    issued = np.array([w.issued_at for w in warnings], dtype=np.int64)

    # Warning -> hit: any fatal inside [start, end].
    lo = np.searchsorted(fatal_times, starts, side="left")
    hi = np.searchsorted(fatal_times, ends, side="right")
    warning_hit = hi > lo
    warning_fatal = np.where(warning_hit, lo, -1).astype(np.int64)

    # Fatal -> covered + earliest covering warning's issue time.
    fatal_covered = np.zeros(n_fatals, dtype=bool)
    lead = np.full(n_fatals, np.nan)
    if n_fatals:
        # Difference-array coverage count over fatal indices.
        cover = np.zeros(n_fatals + 1, dtype=np.int64)
        np.add.at(cover, lo, 1)
        np.add.at(cover, hi, -1)
        fatal_covered = np.cumsum(cover[:-1]) > 0
        # Earliest issuing warning per fatal: iterate warnings sorted by
        # issue time and fill uncovered slots once (each fatal written at
        # most once -> linear in coverage size).
        order = np.argsort(issued, kind="stable")
        filled = np.zeros(n_fatals, dtype=bool)
        for wi in order:
            a, b = int(lo[wi]), int(hi[wi])
            if a >= b:
                continue
            span = slice(a, b)
            need = ~filled[span]
            if need.any():
                idx = np.flatnonzero(need) + a
                lead[idx] = fatal_times[idx] - issued[wi]
                filled[idx] = True

    metrics = Metrics(
        n_warnings=n_warnings,
        tp_warnings=int(np.count_nonzero(warning_hit)),
        n_fatals=n_fatals,
        covered_fatals=int(np.count_nonzero(fatal_covered)),
    )
    return MatchResult(
        metrics=metrics,
        warning_hit=warning_hit,
        fatal_covered=fatal_covered,
        lead_seconds=lead,
        warning_fatal=warning_fatal,
    )
