"""Precision / recall accounting (paper §3.2).

The paper's definitions: Tp is the number of correct predictions, Fp the
number of false alarms, Fn the number of failures that were not predicted.
Precision is computed over *predictions made* and recall over *failures that
occurred*, so the two numerators differ in general (one warning can cover
several failures; several warnings can cover one failure) — :class:`Metrics`
therefore keeps all four raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Metrics:
    """Scores of one warning stream against one test fold."""

    n_warnings: int
    tp_warnings: int
    n_fatals: int
    covered_fatals: int

    def __post_init__(self) -> None:
        if not 0 <= self.tp_warnings <= self.n_warnings:
            raise ValueError("tp_warnings must be within [0, n_warnings]")
        if not 0 <= self.covered_fatals <= self.n_fatals:
            raise ValueError("covered_fatals must be within [0, n_fatals]")

    @property
    def fp_warnings(self) -> int:
        """False alarms: warnings whose horizon saw no failure."""
        return self.n_warnings - self.tp_warnings

    @property
    def missed_fatals(self) -> int:
        """Failures no warning covered (the paper's Fn)."""
        return self.n_fatals - self.covered_fatals

    @property
    def precision(self) -> float:
        """Correct predictions / all predictions (1.0 when nothing predicted).

        The degenerate no-warnings case returns 1.0 by convention: a silent
        predictor raised no false alarm.  Callers that prefer NaN semantics
        can test ``n_warnings`` directly.
        """
        if self.n_warnings == 0:
            return 1.0
        return self.tp_warnings / self.n_warnings

    @property
    def recall(self) -> float:
        """Predicted failures / all failures (1.0 when there was nothing
        to predict)."""
        if self.n_fatals == 0:
            return 1.0
        return self.covered_fatals / self.n_fatals

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def __add__(self, other: "Metrics") -> "Metrics":
        """Pool raw counts (micro-aggregation across folds)."""
        return Metrics(
            n_warnings=self.n_warnings + other.n_warnings,
            tp_warnings=self.tp_warnings + other.tp_warnings,
            n_fatals=self.n_fatals + other.n_fatals,
            covered_fatals=self.covered_fatals + other.covered_fatals,
        )


def mean_metrics(folds: Sequence[Metrics]) -> tuple[float, float]:
    """Macro-averaged (precision, recall) across folds (paper's averaging).

    Folds with no warnings/failures contribute their conventional 1.0 values,
    matching an average over per-fold results.
    """
    if not folds:
        raise ValueError("at least one fold required")
    p = sum(m.precision for m in folds) / len(folds)
    r = sum(m.recall for m in folds) / len(folds)
    return p, r


def micro_metrics(folds: Iterable[Metrics]) -> Metrics:
    """Pooled counts across folds (robust to tiny folds)."""
    total = Metrics(0, 0, 0, 0)
    for m in folds:
        total = total + m
    return total
