"""Warning lead-time analysis.

The paper motivates prediction with proactive fault tolerance — checkpoint,
job migration, failure-aware scheduling (§1) — and argues the prediction
window must exceed 5 minutes because anything shorter is "too small for
taking preventive action".  Whether an action fits depends on the *lead
time*: how long before a failure its earliest covering warning was issued.

:func:`lead_time_profile` turns a :class:`~repro.evaluation.matching.MatchResult`
into the curve operators care about: for each minimum lead requirement, the
fraction of failures predicted with at least that much notice (*actionable
recall*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evaluation.matching import MatchResult
from repro.util.timeutil import MINUTE

#: Default action-cost grid: 1, 2, 5, 10, 20, 30 minutes of required notice.
DEFAULT_LEADS: tuple[float, ...] = tuple(
    m * MINUTE for m in (1, 2, 5, 10, 20, 30)
)


@dataclass(frozen=True)
class LeadTimePoint:
    """Actionable recall at one minimum-lead requirement."""

    min_lead: float
    #: Failures predicted with >= min_lead notice / all failures.
    actionable_recall: float
    #: ... / predicted failures only (how much coverage survives the bar).
    coverage_retention: float

    @property
    def min_lead_minutes(self) -> float:
        return self.min_lead / MINUTE


def lead_time_profile(
    match: MatchResult,
    leads: Sequence[float] = DEFAULT_LEADS,
) -> list[LeadTimePoint]:
    """Actionable recall as a function of the required lead time."""
    lead = match.lead_seconds
    n_fatals = lead.size
    covered = ~np.isnan(lead)
    n_covered = int(covered.sum())
    points: list[LeadTimePoint] = []
    for req in leads:
        if n_fatals == 0:
            ar, cr = 1.0, 1.0
        else:
            ok = int((lead[covered] >= req).sum()) if n_covered else 0
            ar = ok / n_fatals
            cr = 1.0 if n_covered == 0 else ok / n_covered
        points.append(
            LeadTimePoint(
                min_lead=float(req),
                actionable_recall=ar,
                coverage_retention=cr,
            )
        )
    return points


def lead_time_summary(match: MatchResult) -> dict:
    """Distributional summary of the lead times of covered failures."""
    lead = match.lead_seconds
    covered = lead[~np.isnan(lead)]
    if covered.size == 0:
        return {
            "covered": 0,
            "mean": float("nan"),
            "median": float("nan"),
            "p10": float("nan"),
            "p90": float("nan"),
        }
    return {
        "covered": int(covered.size),
        "mean": float(covered.mean()),
        "median": float(np.median(covered)),
        "p10": float(np.percentile(covered, 10)),
        "p90": float(np.percentile(covered, 90)),
    }


def format_lead_profile(points: Sequence[LeadTimePoint]) -> str:
    """Text table of a lead-time profile."""
    lines = [
        f"{'min lead(min)':>14} {'actionable recall':>18} {'retention':>10}"
    ]
    for p in points:
        lines.append(
            f"{p.min_lead_minutes:>14.0f} {p.actionable_recall:>18.3f} "
            f"{p.coverage_retention:>10.3f}"
        )
    return "\n".join(lines)
