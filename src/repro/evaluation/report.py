"""Plain-text experiment reports (ASCII charts included).

The CLI's ``report`` subcommand and the benchmarks share these renderers.
Everything returns strings; nothing here writes or prints, and there is no
plotting dependency — curves render as fixed-width ASCII charts, which is
what actually survives in cluster-operations tooling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.evaluation.sweep import SweepPoint


def ascii_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    y_range: Optional[tuple[float, float]] = None,
    x_label: str = "",
) -> str:
    """Render one or more y(x) series as a fixed-width ASCII chart.

    Each series gets its own marker character; the legend maps markers to
    names.  Points are plotted at their nearest cell; later series overwrite
    earlier ones on collisions.
    """
    if not series:
        raise ValueError("at least one series required")
    xs = np.asarray(xs, dtype=float)
    if xs.size == 0:
        raise ValueError("xs must be non-empty")
    markers = "*o+x#@%&"
    all_vals = np.concatenate(
        [np.asarray(v, dtype=float) for v in series.values()]
    )
    if y_range is None:
        lo, hi = float(np.nanmin(all_vals)), float(np.nanmax(all_vals))
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
    else:
        lo, hi = y_range
        if hi <= lo:
            raise ValueError("y_range must be increasing")

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    span_x = (x_hi - x_lo) or 1.0

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / span_x * (width - 1)))

    def row(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        frac = min(1.0, max(0.0, frac))
        return (height - 1) - int(frac * (height - 1))

    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(xs, np.asarray(ys, dtype=float)):
            if np.isnan(y):
                continue
            grid[row(float(y))][col(float(x))] = marker

    lines = []
    for i, cells in enumerate(grid):
        y_val = hi - (hi - lo) * i / (height - 1)
        lines.append(f"{y_val:7.2f} |" + "".join(cells))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"{x_lo:<10.4g}"
        + " " * max(0, width - 22)
        + f"{x_hi:>10.4g}"
    )
    if x_label:
        lines.append(" " * 9 + x_label)
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def sweep_chart(points: Sequence[SweepPoint], title: str = "") -> str:
    """Figure-4/5-style precision & recall vs window chart."""
    if not points:
        raise ValueError("no sweep points")
    xs = [p.window_minutes for p in points]
    chart = ascii_chart(
        xs,
        {
            "precision": [p.precision for p in points],
            "recall": [p.recall for p in points],
        },
        y_range=(0.0, 1.0),
        x_label="prediction window (minutes)",
    )
    return (title + "\n" if title else "") + chart


def cdf_chart(
    grid_seconds: Sequence[float],
    cdf: Sequence[float],
    title: str = "",
) -> str:
    """Figure-2-style CDF chart (x in minutes)."""
    xs = [g / 60.0 for g in grid_seconds]
    chart = ascii_chart(
        xs,
        {"P(next failure within x)": list(cdf)},
        y_range=(0.0, 1.0),
        x_label="minutes since a failure",
    )
    return (title + "\n" if title else "") + chart


def comparison_table(
    rows: dict[str, tuple[float, float]], title: str = ""
) -> str:
    """Method -> (precision, recall) comparison block."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'method':<22} {'precision':>10} {'recall':>10} {'f1':>10}")
    for name, (p, r) in rows.items():
        f1 = 0.0 if p + r == 0 else 2 * p * r / (p + r)
        lines.append(f"{name:<22} {p:>10.4f} {r:>10.4f} {f1:>10.4f}")
    return "\n".join(lines)
