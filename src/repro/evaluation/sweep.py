"""Parameter sweeps: prediction windows (Figures 4-5) and rule-generation
windows (§3.2.2 Step 5).

Each sweep point runs a full cross-validation, so a sweep over 8 windows with
k=10 trains 80 predictors — still seconds on the scaled logs thanks to the
vectorized substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.evaluation.crossval import CVResult, cross_validate
from repro.predictors.base import Predictor
from repro.ras.store import EventStore
from repro.util.timeutil import MINUTE

#: Factory parameterized by a window length in seconds.
WindowFactory = Callable[[float], Predictor]

#: The paper's sweep grid: 5 minutes to 1 hour.
DEFAULT_WINDOWS: tuple[float, ...] = tuple(
    m * MINUTE for m in (5, 10, 15, 20, 30, 40, 50, 60)
)


@dataclass(frozen=True)
class SweepPoint:
    """Result of one sweep setting."""

    window: float
    precision: float
    recall: float
    result: CVResult

    @property
    def window_minutes(self) -> float:
        return self.window / MINUTE

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)


def prediction_window_sweep(
    factory: WindowFactory,
    events: EventStore,
    windows: Sequence[float] = DEFAULT_WINDOWS,
    k: int = 10,
) -> list[SweepPoint]:
    """Cross-validate a predictor at each prediction window (Figures 4-5)."""
    points: list[SweepPoint] = []
    for w in windows:
        result = cross_validate(lambda w=w: factory(w), events, k=k)
        points.append(
            SweepPoint(
                window=float(w),
                precision=result.precision,
                recall=result.recall,
                result=result,
            )
        )
    return points


def rule_window_sweep(
    factory: WindowFactory,
    events: EventStore,
    windows: Sequence[float] = DEFAULT_WINDOWS,
    k: int = 10,
) -> list[SweepPoint]:
    """Cross-validate over *rule-generation* windows (Step 5).

    ``factory`` receives the rule-generation window; the prediction window
    it embeds should be held fixed by the caller.
    """
    return prediction_window_sweep(factory, events, windows, k=k)


def select_rule_window(
    points: Sequence[SweepPoint],
    precision_tolerance: float = 0.03,
    recall_tolerance: float = 0.01,
) -> SweepPoint:
    """Pick the paper's operating point: "best precision with highest recall".

    Precision typically climbs steeply until the window covers the precursor
    chains' full extent and then plateaus; recall is nearly flat in the
    generation window.  Among windows within ``precision_tolerance`` of the
    best precision and ``recall_tolerance`` of the best recall achievable
    there, the *smallest* window wins — the paper's own argument: larger
    windows only "induce an increased monitoring load on the system" once
    accuracy has saturated.
    """
    if not points:
        raise ValueError("no sweep points")
    best_p = max(p.precision for p in points)
    c1 = [p for p in points if p.precision >= best_p - precision_tolerance]
    best_r = max(p.recall for p in c1)
    c2 = [p for p in c1 if p.recall >= best_r - recall_tolerance]
    return min(c2, key=lambda p: p.window)


def format_sweep(points: Sequence[SweepPoint], title: str = "") -> str:
    """Text table of a sweep (benchmark / CLI output)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'window(min)':>12} {'precision':>10} {'recall':>10} {'f1':>10}")
    for p in points:
        lines.append(
            f"{p.window_minutes:>12.0f} {p.precision:>10.4f} "
            f"{p.recall:>10.4f} {p.f1:>10.4f}"
        )
    return "\n".join(lines)
