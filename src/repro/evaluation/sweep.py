"""Parameter sweeps: prediction windows (Figures 4-5) and rule-generation
windows (§3.2.2 Step 5).

Each sweep point runs a full cross-validation, so a sweep over 8 windows with
k=10 trains 80 predictors.  The modern entry point is :func:`sweep`, which
takes a grid of ``(window, PredictorSpec)`` pairs — build one with
:meth:`PredictorSpec.grid <repro.evaluation.spec.PredictorSpec.grid>` — and
flattens *all* sweep points' folds into a single evaluation-engine run: the
process pool interleaves folds from different windows, and the artifact
cache deduplicates training work across points that share fit parameters
(a rule set mined once serves every prediction window).

:func:`prediction_window_sweep` remains for legacy window-factory callables
(serial, uncached).  The ``rule_window_sweep`` alias it once carried is
gone — sweep rule-generation windows explicitly with
``sweep(spec.grid("rule_window", windows), events, ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.evaluation.crossval import (
    CVResult,
    cross_validate,
    fold_index_ranges,
)
from repro.evaluation.engine import FoldTask, run_fold_tasks, spawn_task_seeds
from repro.evaluation.spec import PredictorSpec
from repro.obs import get_registry
from repro.predictors.base import Predictor
from repro.ras.store import EventStore
from repro.util.timeutil import MINUTE

#: Factory parameterized by a window length in seconds (legacy convention;
#: prefer spec grids, which are picklable and cacheable).
WindowFactory = Callable[[float], Predictor]

#: The paper's sweep grid: 5 minutes to 1 hour.
DEFAULT_WINDOWS: tuple[float, ...] = tuple(
    m * MINUTE for m in (5, 10, 15, 20, 30, 40, 50, 60)
)

#: A sweep grid: each point is (window seconds, spec to evaluate there).
SpecGrid = Sequence[tuple[float, PredictorSpec]]


@dataclass(frozen=True)
class SweepPoint:
    """Result of one sweep setting."""

    window: float
    precision: float
    recall: float
    result: CVResult

    @property
    def window_minutes(self) -> float:
        return self.window / MINUTE

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)


def _point(window: float, result: CVResult) -> SweepPoint:
    return SweepPoint(
        window=float(window),
        precision=result.precision,
        recall=result.recall,
        result=result,
    )


def sweep(
    grid: SpecGrid,
    events: EventStore,
    *,
    k: int = 10,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    seed: Optional[int] = None,
    incremental: Optional[bool] = None,
) -> list[SweepPoint]:
    """Cross-validate every spec in ``grid``; one point per grid entry.

    All ``len(grid) * k`` folds are submitted to the evaluation engine as
    one task list, so parallel workers stay busy across point boundaries
    and cached fit artifacts are shared between points whose specs agree on
    fit parameters.  ``jobs``/``cache_dir`` default from ``REPRO_JOBS`` /
    ``REPRO_CACHE_DIR``; ``seed`` spawns an independent child seed per fold
    task.  ``incremental`` (default ``REPRO_INCREMENTAL``) lets the serial
    engine backend maintain mining state across tasks, so grid points
    sharing a mining recipe reuse one maintained structure instead of
    refitting per point.  Point order follows ``grid`` order; results are
    identical across worker counts and the incremental switch.
    """
    grid = list(grid)
    if not grid:
        raise ValueError("empty sweep grid")
    ranges = fold_index_ranges(len(events), k)
    seeds = spawn_task_seeds(seed, len(grid) * len(ranges))
    tasks: list[FoldTask] = []
    for gi, (_, spec) in enumerate(grid):
        for fold, (start, end) in enumerate(ranges):
            tasks.append(
                FoldTask(
                    spec=spec,
                    start=start,
                    end=end,
                    fold=fold,
                    group=gi,
                    seed=seeds[len(tasks)],
                )
            )
    outcomes = run_fold_tasks(
        tasks, events, jobs=jobs, cache_dir=cache_dir, incremental=incremental
    )
    obs = get_registry()
    for outcome in outcomes:
        obs.observe("crossval.fold_seconds", outcome.seconds)
    obs.counter("crossval.folds", len(outcomes))
    points: list[SweepPoint] = []
    for gi, (window, _) in enumerate(grid):
        mine = sorted(
            (o for o in outcomes if o.group == gi), key=lambda o: o.fold
        )
        result = CVResult(
            fold_metrics=[o.match.metrics for o in mine],
            fold_matches=[o.match for o in mine],
        )
        points.append(_point(window, result))
    return points


def prediction_window_sweep(
    factory: Union[WindowFactory, PredictorSpec],
    events: EventStore,
    windows: Sequence[float] = DEFAULT_WINDOWS,
    k: int = 10,
    *,
    jobs: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
) -> list[SweepPoint]:
    """Cross-validate a predictor at each prediction window (Figures 4-5).

    Passing a :class:`PredictorSpec` sweeps its ``prediction_window``
    parameter through the engine (equivalent to
    ``sweep(spec.grid("prediction_window", windows), ...)``).  Passing a
    legacy window-factory callable runs each point serially in-process.
    """
    if isinstance(factory, PredictorSpec):
        return sweep(
            factory.grid("prediction_window", windows),
            events,
            k=k,
            jobs=jobs,
            cache_dir=cache_dir,
        )
    return [
        _point(w, cross_validate(lambda w=w: factory(w), events, k=k))
        for w in windows
    ]


def select_rule_window(
    points: Sequence[SweepPoint],
    precision_tolerance: float = 0.03,
    recall_tolerance: float = 0.01,
) -> SweepPoint:
    """Pick the paper's operating point: "best precision with highest recall".

    Precision typically climbs steeply until the window covers the precursor
    chains' full extent and then plateaus; recall is nearly flat in the
    generation window.  Among windows within ``precision_tolerance`` of the
    best precision and ``recall_tolerance`` of the best recall achievable
    there, the *smallest* window wins — the paper's own argument: larger
    windows only "induce an increased monitoring load on the system" once
    accuracy has saturated.
    """
    if not points:
        raise ValueError("no sweep points")
    best_p = max(p.precision for p in points)
    c1 = [p for p in points if p.precision >= best_p - precision_tolerance]
    best_r = max(p.recall for p in c1)
    c2 = [p for p in c1 if p.recall >= best_r - recall_tolerance]
    return min(c2, key=lambda p: p.window)


def format_sweep(points: Sequence[SweepPoint], title: str = "") -> str:
    """Text table of a sweep (benchmark / CLI output)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'window(min)':>12} {'precision':>10} {'recall':>10} {'f1':>10}")
    for p in points:
        lines.append(
            f"{p.window_minutes:>12.0f} {p.precision:>10.4f} "
            f"{p.recall:>10.4f} {p.f1:>10.4f}"
        )
    return "\n".join(lines)
