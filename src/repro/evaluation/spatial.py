"""Spatial failure analysis.

The paper's closest relative (Liang et al., DSN'06 — its [22]) analyzes
*spatial* as well as temporal failure correlation; our substrate carries
full location codes, so the classic spatial statistics come for free:

- per-element failure counts at any hardware level (midplane, node card,
  chip) — the "hotspot" ranking an administrator triages by;
- spatial concentration (Gini coefficient) — 0 when failures spread evenly
  over elements, →1 when a few elements dominate;
- spatial co-location of temporally close failures — P(two failures within
  Δt share a hardware subtree), the spatial-correlation analogue of the
  paper's Figure 2.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.bgl.locations import LocationKind, parent_location, parse_location
from repro.ras.store import EventStore

#: Levels usable for aggregation, from coarse to fine.
AGGREGATION_LEVELS = (
    LocationKind.MIDPLANE,
    LocationKind.NODECARD,
)


def _ancestor_at(code: str, level: LocationKind) -> Optional[str]:
    """The enclosing element of ``code`` at ``level`` (None if outside)."""
    current: Optional[str] = code
    while current is not None:
        try:
            kind = parse_location(current)["kind"]
        except ValueError:
            return None
        if kind == level:
            return current
        current = parent_location(current)
    return None


def failure_counts_by_location(
    events: EventStore, level: LocationKind = LocationKind.MIDPLANE
) -> dict[str, int]:
    """Fatal-event count per hardware element at the given level.

    Events whose location has no ancestor at the level (SYSTEM-wide events,
    rack-level codes when aggregating by node card, ...) are reported under
    ``"(other)"``.
    """
    fatal = events.fatal_events()
    counts: Counter[str] = Counter()
    # Aggregate over the interned location table, then weight by usage —
    # the classifier trick applied to locations.
    loc_ancestor = [
        _ancestor_at(loc, level) or "(other)" for loc in fatal.location_table
    ]
    if len(fatal) == 0:
        return {}
    binned = np.bincount(fatal.location_ids, minlength=len(loc_ancestor))
    for loc_id, n in enumerate(binned):
        if n:
            counts[loc_ancestor[loc_id]] += int(n)
    return dict(counts)


def hotspots(
    events: EventStore,
    level: LocationKind = LocationKind.NODECARD,
    top: int = 10,
) -> list[tuple[str, int]]:
    """The ``top`` elements by fatal-event count, descending."""
    counts = failure_counts_by_location(events, level)
    counts.pop("(other)", None)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def spatial_concentration(
    events: EventStore, level: LocationKind = LocationKind.NODECARD
) -> float:
    """Gini coefficient of the per-element fatal counts (0 = even, 1 = one
    element holds everything).  Elements with zero failures are not known to
    the store and therefore not included; the statistic measures skew among
    *affected* elements."""
    counts = failure_counts_by_location(events, level)
    counts.pop("(other)", None)
    values = np.sort(np.array(list(counts.values()), dtype=np.float64))
    n = values.size
    if n == 0:
        return 0.0
    if n == 1:
        return 0.0
    cum = np.cumsum(values)
    # Standard Gini for a sorted sample.
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def colocated_fraction(
    events: EventStore,
    within_seconds: float,
    level: LocationKind = LocationKind.MIDPLANE,
) -> float:
    """Fraction of temporally close failure pairs that share an element.

    For each consecutive pair of fatal events closer than ``within_seconds``,
    check whether both fall under the same hardware element at ``level``.
    Returns NaN when no such pair exists.
    """
    fatal = events.fatal_events()
    if len(fatal) < 2:
        return float("nan")
    ancestors = [
        _ancestor_at(loc, level) for loc in fatal.location_table
    ]
    times = fatal.times
    close = np.flatnonzero(np.diff(times) <= within_seconds)
    if close.size == 0:
        return float("nan")
    same = 0
    for i in close:
        a = ancestors[int(fatal.location_ids[i])]
        b = ancestors[int(fatal.location_ids[i + 1])]
        if a is not None and a == b:
            same += 1
    return same / close.size
