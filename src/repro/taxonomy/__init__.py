"""Hierarchical RAS event taxonomy (paper §3.1, Table 3).

The paper's first contribution inside Phase 1 is a two-level categorization
of Blue Gene/L RAS events: 8 main categories (by subsystem) refined into 101
subcategories.  This subpackage holds:

- :mod:`repro.taxonomy.categories` — the 8 main categories;
- :mod:`repro.taxonomy.subcategories` — the full 101-entry catalog, each
  entry carrying its category, default severity, reporting facility, the
  hardware level it occurs at, message templates (used by the synthetic
  generator) and match patterns (used by the classifier);
- :mod:`repro.taxonomy.classifier` — the hierarchical classifier that labels
  events from their LOCATION, FACILITY and ENTRY_DATA fields.
"""

from repro.taxonomy.categories import MainCategory, CATEGORY_ORDER
from repro.taxonomy.subcategories import (
    CATALOG,
    FATAL_SUBCATS,
    NONFATAL_SUBCATS,
    Subcategory,
    by_category,
    by_name,
    fatal_names_by_category,
    validate_catalog,
)
from repro.taxonomy.classifier import TaxonomyClassifier, OTHER_FALLBACK

__all__ = [
    "MainCategory",
    "CATEGORY_ORDER",
    "CATALOG",
    "FATAL_SUBCATS",
    "NONFATAL_SUBCATS",
    "Subcategory",
    "by_category",
    "by_name",
    "fatal_names_by_category",
    "validate_catalog",
    "TaxonomyClassifier",
    "OTHER_FALLBACK",
]
