"""The 101-subcategory RAS event catalog (paper Table 3).

Each :class:`Subcategory` entry couples everything the rest of the system
needs to know about one kind of event:

- its **main category** (one of the 8 subsystems) and **name** — the item
  vocabulary of the rule miner and the label space of the classifier;
- the **severity** it is recorded at (fatal subcategories are the prediction
  targets);
- the **facility** that reports it and the **hardware level** it occurs at
  (used by the synthetic generator to produce realistic LOCATION values);
- **message templates** — realistic ENTRY_DATA strings emitted by the
  generator; and
- a **match pattern**, the distinctive phrase the hierarchical classifier
  looks for in ENTRY_DATA.  Every template of a subcategory contains its
  pattern, and patterns are unique across the catalog (validated by
  :func:`validate_catalog` and enforced in tests).

Subcategory counts per main category match the paper exactly:
Application 12, Iostream 8, Kernel 20, Memory 22, Midplane 6, Network 11,
NodeCard 10, Other 12 — 101 in total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.bgl.locations import LocationKind
from repro.ras.fields import Facility, Severity
from repro.taxonomy.categories import CATEGORY_ORDER, MainCategory


@dataclass(frozen=True)
class Subcategory:
    """One of the 101 fine-grained RAS event types."""

    name: str
    category: MainCategory
    severity: Severity
    facility: Facility
    location_kind: LocationKind
    pattern: str
    templates: tuple[str, ...]

    @property
    def is_fatal(self) -> bool:
        """True if events of this subcategory are failures."""
        return self.severity.is_fatal

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError(f"{self.name}: at least one template required")
        low = self.pattern.lower()
        for t in self.templates:
            if low not in t.lower():
                raise ValueError(
                    f"{self.name}: template {t!r} does not contain pattern {low!r}"
                )


def _sc(
    name: str,
    category: MainCategory,
    severity: Severity,
    facility: Facility,
    kind: LocationKind,
    pattern: str,
    *extra_templates: str,
) -> Subcategory:
    """Catalog entry helper: the pattern itself is the first template."""
    return Subcategory(
        name=name,
        category=category,
        severity=severity,
        facility=facility,
        location_kind=kind,
        pattern=pattern,
        templates=(pattern, *extra_templates),
    )


_APP = MainCategory.APPLICATION
_IO = MainCategory.IOSTREAM
_KRN = MainCategory.KERNEL
_MEM = MainCategory.MEMORY
_MID = MainCategory.MIDPLANE
_NET = MainCategory.NETWORK
_NC = MainCategory.NODECARD
_OTH = MainCategory.OTHER

_I, _W, _S, _E, _F, _X = (
    Severity.INFO,
    Severity.WARNING,
    Severity.SEVERE,
    Severity.ERROR,
    Severity.FATAL,
    Severity.FAILURE,
)

_CHIP = LocationKind.COMPUTE_CHIP
_ION = LocationKind.IO_NODE
_CARD = LocationKind.NODECARD
_MPL = LocationKind.MIDPLANE
_LNK = LocationKind.LINKCARD
_SVC = LocationKind.SERVICE_CARD
_SYS = LocationKind.SYSTEM


CATALOG: tuple[Subcategory, ...] = (
    # ------------------------------------------------------------------ #
    # APPLICATION (12)
    # ------------------------------------------------------------------ #
    _sc("loadProgramFailure", _APP, _F, Facility.APP, _CHIP,
        "load program failure: invalid or missing program image",
        "load program failure: invalid or missing program image, while reading elf header"),
    _sc("loginFailure", _APP, _F, Facility.APP, _CHIP,
        "login failure: cannot connect to service node for authentication"),
    _sc("nodeMapCreateFailure", _APP, _F, Facility.APP, _CHIP,
        "failed to create node map: mapping table rejected"),
    _sc("appOutOfMemoryFailure", _APP, _F, Facility.APP, _CHIP,
        "application out of memory: heap allocation failed"),
    _sc("nodeMapFileError", _APP, _E, Facility.APP, _CHIP,
        "cannot open node map file: permission denied or missing"),
    _sc("nodeMapError", _APP, _E, Facility.APP, _CHIP,
        "bad node map format: coordinate out of range"),
    _sc("appReadError", _APP, _E, Facility.APP, _CHIP,
        "error reading message prefix on application stream"),
    _sc("coredumpCreated", _APP, _I, Facility.APP, _CHIP,
        "core dump file created for job",
        "core dump file created for job after abnormal termination"),
    _sc("appChildKillInfo", _APP, _I, Facility.APP, _CHIP,
        "child process killed by delivered signal"),
    _sc("appSignalError", _APP, _E, Facility.APP, _CHIP,
        "application received unexpected signal from runtime"),
    _sc("appExitWarning", _APP, _W, Facility.APP, _CHIP,
        "application exited with nonzero status code"),
    _sc("appArgumentError", _APP, _E, Facility.APP, _CHIP,
        "invalid application argument vector supplied at launch"),
    # ------------------------------------------------------------------ #
    # IOSTREAM (8)
    # ------------------------------------------------------------------ #
    _sc("socketReadFailure", _IO, _X, Facility.KERNEL, _ION,
        "communication failure on socket read: connection closed by peer",
        "communication failure on socket read: connection closed by peer during ciod protocol"),
    _sc("socketWriteFailure", _IO, _X, Facility.KERNEL, _ION,
        "communication failure on socket write: broken pipe"),
    _sc("streamReadFailure", _IO, _X, Facility.KERNEL, _ION,
        "stream read failure: lost connection to compute node"),
    _sc("streamWriteFailure", _IO, _X, Facility.KERNEL, _ION,
        "stream write failure: cannot flush output buffer"),
    _sc("mountFailure", _IO, _F, Facility.KERNEL, _ION,
        "failed to mount remote filesystem on i/o node"),
    _sc("socketCloseError", _IO, _E, Facility.KERNEL, _ION,
        "error closing socket descriptor: already shut down"),
    _sc("ciodIoWarning", _IO, _W, Facility.KERNEL, _ION,
        "ciod detected slow i/o progress on stream"),
    _sc("fileReadError", _IO, _E, Facility.KERNEL, _ION,
        "file read error on i/o procedure call"),
    # ------------------------------------------------------------------ #
    # KERNEL (20)
    # ------------------------------------------------------------------ #
    _sc("alignmentFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "alignment exception: unaligned data access trapped"),
    _sc("dataAddressFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "data storage interrupt: invalid data address referenced"),
    _sc("instructionAddressFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "instruction storage interrupt: invalid instruction fetch"),
    _sc("kernelPanicFailure", _KRN, _X, Facility.KERNEL, _CHIP,
        "kernel panic: unrecoverable condition detected"),
    _sc("floatingPointFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "floating point exception: unhandled fpu trap"),
    _sc("programInterruptFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "program interrupt: illegal instruction encountered"),
    _sc("machineCheckFailure", _KRN, _X, Facility.KERNEL, _CHIP,
        "machine check interrupt: hardware detected inconsistency"),
    _sc("kernelStackFailure", _KRN, _F, Facility.KERNEL, _CHIP,
        "kernel stack overflow detected in interrupt context"),
    _sc("watchdogTimerWarning", _KRN, _W, Facility.KERNEL, _CHIP,
        "watchdog timer approaching expiration"),
    _sc("kernelModeError", _KRN, _E, Facility.KERNEL, _CHIP,
        "unexpected exception while executing in kernel mode"),
    _sc("supervisorModeError", _KRN, _E, Facility.KERNEL, _CHIP,
        "privileged operation attempted outside supervisor mode"),
    _sc("tlbMissError", _KRN, _E, Facility.KERNEL, _CHIP,
        "tlb miss handler: invalid page translation entry"),
    _sc("debugInterruptInfo", _KRN, _I, Facility.KERNEL, _CHIP,
        "debug interrupt serviced and cleared"),
    _sc("kernelAssertError", _KRN, _E, Facility.KERNEL, _CHIP,
        "kernel assertion failed: internal consistency check"),
    _sc("syscallError", _KRN, _E, Facility.KERNEL, _CHIP,
        "invalid system call number requested by application"),
    _sc("interruptVectorError", _KRN, _E, Facility.KERNEL, _CHIP,
        "spurious interrupt vector received and ignored"),
    _sc("timerInterruptInfo", _KRN, _I, Facility.KERNEL, _CHIP,
        "timer interrupt rollover serviced"),
    _sc("kernelStartInfo", _KRN, _I, Facility.KERNEL, _CHIP,
        "kernel boot sequence started on compute node"),
    _sc("kernelShutdownInfo", _KRN, _I, Facility.KERNEL, _CHIP,
        "kernel shutdown sequence initiated by control system"),
    _sc("contextSwitchError", _KRN, _E, Facility.KERNEL, _CHIP,
        "context switch error: corrupted thread state detected"),
    # ------------------------------------------------------------------ #
    # MEMORY (22)
    # ------------------------------------------------------------------ #
    _sc("cachePrefetchFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "uncorrectable error in cache prefetch unit"),
    _sc("dataReadFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "uncorrectable error detected on data read"),
    _sc("dataStoreFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "uncorrectable error detected on data store"),
    _sc("parityFailure", _MEM, _X, Facility.KERNEL, _CHIP,
        "parity error beyond correction threshold"),
    _sc("cacheFailure", _MEM, _X, Facility.KERNEL, _CHIP,
        "cache failure: coherence lost in cache directory"),
    _sc("edramFailure", _MEM, _X, Facility.KERNEL, _CHIP,
        "uncorrectable error detected in edram bank"),
    _sc("ddrDoubleSymbolFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "double symbol error detected on ddr chip"),
    _sc("memoryControllerFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "memory controller failure: request queue hung"),
    _sc("storeQueueFailure", _MEM, _F, Facility.KERNEL, _CHIP,
        "store queue failure: entry stuck beyond timeout"),
    _sc("ddrErrorCorrectionInfo", _MEM, _I, Facility.KERNEL, _CHIP,
        "ddr error correction: single bit error corrected by ecc",
        "ddr error correction: single bit error corrected by ecc, steering activated"),
    _sc("maskInfo", _MEM, _I, Facility.KERNEL, _CHIP,
        "interrupt mask register updated for memory unit"),
    _sc("sramParityError", _MEM, _E, Facility.KERNEL, _CHIP,
        "sram parity error corrected by scrubber"),
    _sc("l1CacheError", _MEM, _E, Facility.KERNEL, _CHIP,
        "l1 cache error: line invalidated and refetched"),
    _sc("l2CacheError", _MEM, _E, Facility.KERNEL, _CHIP,
        "l2 cache error: access retry succeeded"),
    _sc("l3CacheError", _MEM, _E, Facility.KERNEL, _CHIP,
        "l3 cache error: directory scrub corrected entry"),
    _sc("scrubCorrectionInfo", _MEM, _I, Facility.KERNEL, _CHIP,
        "memory scrub cycle completed with corrections"),
    _sc("dmaError", _MEM, _E, Facility.KERNEL, _CHIP,
        "dma transfer error: descriptor retried"),
    _sc("ddrSingleSymbolInfo", _MEM, _I, Facility.KERNEL, _CHIP,
        "single symbol error detected and corrected on ddr"),
    _sc("memoryAlignmentError", _MEM, _E, Facility.KERNEL, _CHIP,
        "misaligned memory reference corrected in software"),
    _sc("prefetchBufferError", _MEM, _E, Facility.KERNEL, _CHIP,
        "prefetch buffer overrun detected and drained"),
    _sc("memoryLeakWarning", _MEM, _W, Facility.KERNEL, _CHIP,
        "kernel memory pool running low on free blocks"),
    _sc("pageAllocationError", _MEM, _E, Facility.KERNEL, _CHIP,
        "page allocation error: no free frames available"),
    # ------------------------------------------------------------------ #
    # MIDPLANE (6)
    # ------------------------------------------------------------------ #
    _sc("linkcardFailure", _MID, _X, Facility.LINKCARD, _LNK,
        "link card failure: link chip lost heartbeat"),
    _sc("ciodSignalFailure", _MID, _F, Facility.MMCS, _MPL,
        "ciod terminated by signal on midplane"),
    _sc("midplaneServiceWarning", _MID, _W, Facility.MMCS, _SVC,
        "midplane service action in progress"),
    _sc("midplaneStartInfo", _MID, _I, Facility.MMCS, _MPL,
        "midplane power-on sequence started"),
    _sc("midplaneLinkcardRestartWarning", _MID, _W, Facility.LINKCARD, _LNK,
        "link card restart requested by midplane controller"),
    _sc("midplaneSwitchError", _MID, _E, Facility.MMCS, _MPL,
        "midplane switch port reported invalid state"),
    # ------------------------------------------------------------------ #
    # NETWORK (11)
    # ------------------------------------------------------------------ #
    _sc("torusFailure", _NET, _X, Facility.KERNEL, _CHIP,
        "uncorrectable torus error: retransmission limit exceeded"),
    _sc("rtsFailure", _NET, _F, Facility.KERNEL, _CHIP,
        "rts internal failure: panic in message layer"),
    _sc("rtsLinkFailure", _NET, _F, Facility.KERNEL, _CHIP,
        "rts link failure: lost contact with neighbor node"),
    _sc("ethernetFailure", _NET, _X, Facility.KERNEL, _ION,
        "ethernet failure: functional network interface down"),
    _sc("nodeConnectionFailure", _NET, _F, Facility.MMCS, _CARD,
        "node connection failure: control network session dropped"),
    _sc("treeNetworkFailure", _NET, _F, Facility.KERNEL, _CHIP,
        "tree network failure: collective packet checksum invalid"),
    _sc("torusConnectionErrorInfo", _NET, _I, Facility.KERNEL, _CHIP,
        "torus connection reestablished after transient error"),
    _sc("controlNetworkNMCSError", _NET, _E, Facility.MMCS, _MPL,
        "nmcs reported control network error on service bus"),
    _sc("controlNetworkInfo", _NET, _I, Facility.MMCS, _MPL,
        "control network polling cycle completed"),
    _sc("torusSenderError", _NET, _E, Facility.KERNEL, _CHIP,
        "torus sender retransmitted packet after timeout"),
    _sc("torusReceiverError", _NET, _E, Facility.KERNEL, _CHIP,
        "torus receiver detected crc mismatch on packet"),
    # ------------------------------------------------------------------ #
    # NODECARD (10)
    # ------------------------------------------------------------------ #
    _sc("nodecardFailure", _NC, _X, Facility.DISCOVERY, _CARD,
        "node card failure: power domain fault"),
    _sc("nodecardDiscoveryError", _NC, _E, Facility.DISCOVERY, _CARD,
        "discovery error while probing node card"),
    _sc("nodecardAssemblyWarning", _NC, _W, Facility.DISCOVERY, _CARD,
        "node card assembly information incomplete"),
    _sc("nodecardAssemblySevereDiscovery", _NC, _S, Facility.DISCOVERY, _CARD,
        "severe discovery problem: node card assembly mismatch"),
    _sc("nodecardVPDMismatch", _NC, _W, Facility.DISCOVERY, _CARD,
        "node card vpd mismatch with configuration database"),
    _sc("nodecardFunctionalityWarning", _NC, _W, Facility.DISCOVERY, _CARD,
        "node card functionality degraded: redundant path active"),
    _sc("nodecardPowerError", _NC, _E, Facility.MONITOR, _CARD,
        "node card power rail out of tolerance"),
    _sc("nodecardTempWarning", _NC, _W, Facility.MONITOR, _CARD,
        "node card temperature above warning threshold"),
    _sc("nodecardClockError", _NC, _E, Facility.HARDWARE, _CARD,
        "node card clock signal unstable"),
    _sc("nodecardInitInfo", _NC, _I, Facility.DISCOVERY, _CARD,
        "node card initialization completed"),
    # ------------------------------------------------------------------ #
    # OTHER (12)
    # ------------------------------------------------------------------ #
    _sc("bulkPowerFailure", _OTH, _X, Facility.HARDWARE, _SVC,
        "bulk power module failure: output collapsed"),
    _sc("BGLMasterRestartInfo", _OTH, _I, Facility.BGLMASTER, _SYS,
        "bglmaster restarted idoproxydb and mmcs server"),
    _sc("CMCSControlInfo", _OTH, _I, Facility.CMCS, _SYS,
        "cmcs control command processed"),
    _sc("linkcardServiceWarning", _OTH, _W, Facility.LINKCARD, _LNK,
        "link card service action scheduled"),
    _sc("endServiceWarning", _OTH, _W, Facility.MMCS, _SYS,
        "end service action issued for hardware"),
    _sc("ciodRestartInfo", _OTH, _I, Facility.CMCS, _SYS,
        "ciod daemon restarted on i/o nodes"),
    _sc("serviceCardError", _OTH, _E, Facility.MONITOR, _SVC,
        "service card reported configuration error"),
    _sc("fanSpeedWarning", _OTH, _W, Facility.MONITOR, _SVC,
        "fan speed below nominal rpm"),
    _sc("powerSupplyError", _OTH, _E, Facility.MONITOR, _SVC,
        "power supply voltage deviation detected"),
    _sc("tempSensorWarning", _OTH, _W, Facility.MONITOR, _SVC,
        "temperature sensor reading above warning level"),
    _sc("clockCardError", _OTH, _E, Facility.HARDWARE, _SVC,
        "clock card pll lost lock"),
    _sc("monitorCheckInfo", _OTH, _I, Facility.MONITOR, _SYS,
        "environmental monitor sweep completed"),
)


#: name -> Subcategory lookup.
_BY_NAME: dict[str, Subcategory] = {sc.name: sc for sc in CATALOG}

#: Fatal subcategories (the prediction targets).
FATAL_SUBCATS: tuple[Subcategory, ...] = tuple(sc for sc in CATALOG if sc.is_fatal)

#: Non-fatal subcategories (the precursor vocabulary).
NONFATAL_SUBCATS: tuple[Subcategory, ...] = tuple(
    sc for sc in CATALOG if not sc.is_fatal
)


def by_name(name: str) -> Subcategory:
    """Look up a subcategory by its name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown subcategory: {name!r}") from None


def by_category(category: MainCategory) -> tuple[Subcategory, ...]:
    """All subcategories of one main category, catalog order."""
    return tuple(sc for sc in CATALOG if sc.category is category)


def fatal_names_by_category() -> dict[MainCategory, tuple[str, ...]]:
    """Names of the fatal subcategories per main category (Table 4 rows)."""
    return {
        cat: tuple(sc.name for sc in by_category(cat) if sc.is_fatal)
        for cat in CATEGORY_ORDER
    }


def validate_catalog(catalog: Iterable[Subcategory] = CATALOG) -> None:
    """Check catalog invariants; raises ``ValueError`` on violation.

    - 101 entries with per-category counts matching paper Table 3;
    - unique names;
    - unique, mutually non-containing match patterns (so classification by
      substring is unambiguous).
    """
    catalog = list(catalog)
    expected = {
        MainCategory.APPLICATION: 12,
        MainCategory.IOSTREAM: 8,
        MainCategory.KERNEL: 20,
        MainCategory.MEMORY: 22,
        MainCategory.MIDPLANE: 6,
        MainCategory.NETWORK: 11,
        MainCategory.NODECARD: 10,
        MainCategory.OTHER: 12,
    }
    counts: dict[MainCategory, int] = {c: 0 for c in MainCategory}
    names: set[str] = set()
    for sc in catalog:
        counts[sc.category] += 1
        if sc.name in names:
            raise ValueError(f"duplicate subcategory name: {sc.name}")
        names.add(sc.name)
    for cat, want in expected.items():
        if counts[cat] != want:
            raise ValueError(
                f"category {cat.value} has {counts[cat]} subcategories, "
                f"expected {want}"
            )
    if len(catalog) != 101:
        raise ValueError(f"catalog has {len(catalog)} entries, expected 101")
    patterns = [sc.pattern.lower() for sc in catalog]
    for i, p in enumerate(patterns):
        for j, q in enumerate(patterns):
            if i != j and p in q:
                raise ValueError(
                    f"pattern of {catalog[i].name!r} is contained in "
                    f"pattern of {catalog[j].name!r}"
                )
