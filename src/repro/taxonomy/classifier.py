"""Hierarchical event categorization (paper §3.1, step 1 of Phase 1).

Events are categorized "based on the subsystem in which they occur, according
to the LOCATION field, the FACILITY field, and the description listed in the
ENTRY DATA field".  The classifier here implements that hierarchy:

1. **ENTRY_DATA match** — each of the 101 subcategories has a distinctive
   phrase; the longest matching phrase wins.  This resolves nearly all
   records of well-formed logs.
2. **FACILITY/LOCATION fallback** — records whose text matches no known
   phrase (truncated lines, unknown messages) are assigned the
   :data:`OTHER_FALLBACK` pseudo-label, and their *main* category is inferred
   from the reporting facility and the hardware level of the location, so
   category-level summaries remain complete.

``classify_store`` exploits the columnar :class:`~repro.ras.store.EventStore`
representation: ENTRY_DATA strings are interned, so each distinct string is
classified exactly once regardless of how many million records share it.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bgl.locations import LocationKind, location_kind
from repro.ras.fields import Facility
from repro.ras.store import UNCLASSIFIED, EventStore
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.subcategories import CATALOG, Subcategory

#: Pseudo-subcategory for records matching no catalog pattern.  Counted under
#: :attr:`MainCategory.OTHER` ("other" is the paper's catch-all bucket).
OTHER_FALLBACK: str = "uncategorized"

#: Facility -> main category used by the fallback stage.
_FACILITY_CATEGORY: dict[Facility, MainCategory] = {
    Facility.APP: MainCategory.APPLICATION,
    Facility.KERNEL: MainCategory.KERNEL,
    Facility.DISCOVERY: MainCategory.NODECARD,
    Facility.MMCS: MainCategory.MIDPLANE,
    Facility.LINKCARD: MainCategory.MIDPLANE,
    Facility.MONITOR: MainCategory.OTHER,
    Facility.HARDWARE: MainCategory.OTHER,
    Facility.CMCS: MainCategory.OTHER,
    Facility.BGLMASTER: MainCategory.OTHER,
    Facility.SERV_NET: MainCategory.NETWORK,
}


class TaxonomyClassifier:
    """Labels RAS events with one of the 101 subcategories.

    Parameters
    ----------
    catalog:
        The subcategory catalog; defaults to the full paper catalog.
    """

    def __init__(self, catalog: Iterable[Subcategory] = CATALOG) -> None:
        self.catalog: tuple[Subcategory, ...] = tuple(catalog)
        # Longest pattern first, so a more specific phrase beats a shorter
        # one if a message happens to contain both.
        self._patterns: list[tuple[str, Subcategory]] = sorted(
            ((sc.pattern.lower(), sc) for sc in self.catalog),
            key=lambda p: -len(p[0]),
        )
        self._by_name = {sc.name: sc for sc in self.catalog}
        #: Label table used for store classification: catalog order, then the
        #: fallback label at the last index.
        self.label_names: list[str] = [sc.name for sc in self.catalog] + [
            OTHER_FALLBACK
        ]
        self._label_index = {n: i for i, n in enumerate(self.label_names)}
        self._entry_cache: dict[str, int] = {}

    # -- single record ---------------------------------------------------- #

    def classify_entry(self, entry_data: str) -> Optional[Subcategory]:
        """Subcategory whose phrase occurs in ``entry_data`` (longest match).

        Returns ``None`` when no catalog phrase matches.
        """
        low = entry_data.lower()
        for pattern, sc in self._patterns:
            if pattern in low:
                return sc
        return None

    def classify(
        self, entry_data: str, facility: Optional[Facility] = None
    ) -> str:
        """Full hierarchical classification to a label name.

        Returns a subcategory name, or :data:`OTHER_FALLBACK` when the text
        matches nothing (the facility argument only matters for
        :meth:`fallback_category`, it is accepted here for API symmetry).
        """
        sc = self.classify_entry(entry_data)
        return sc.name if sc is not None else OTHER_FALLBACK

    def fallback_category(
        self, facility: Facility, location: Optional[str] = None
    ) -> MainCategory:
        """Main category for an unmatched record, from FACILITY + LOCATION.

        The location refines KERNEL-facility records: messages reported by an
        I/O node's kernel concern I/O streams, not the compute kernel.
        """
        cat = _FACILITY_CATEGORY.get(facility, MainCategory.OTHER)
        if location is not None and facility is Facility.KERNEL:
            try:
                kind = location_kind(location)
            except ValueError:
                return cat
            if kind is LocationKind.IO_NODE:
                return MainCategory.IOSTREAM
        return cat

    def category_of_label(self, label: str) -> MainCategory:
        """Main category of a label name (fallback label -> OTHER)."""
        if label == OTHER_FALLBACK:
            return MainCategory.OTHER
        return self._by_name[label].category

    def label_is_fatal(self, label: str) -> bool:
        """True if a label names a fatal subcategory (fallback is non-fatal)."""
        if label == OTHER_FALLBACK:
            return False
        return self._by_name[label].is_fatal

    # -- bulk, columnar ----------------------------------------------------#

    def _label_id_for_entry(self, entry: str) -> int:
        cached = self._entry_cache.get(entry)
        if cached is not None:
            return cached
        sc = self.classify_entry(entry)
        idx = self._label_index[sc.name if sc is not None else OTHER_FALLBACK]
        self._entry_cache[entry] = idx
        return idx

    def classify_store(self, store: EventStore) -> EventStore:
        """Return a copy of ``store`` with the subcategory column filled in.

        Each distinct interned ENTRY_DATA string is classified once; the
        resulting map is applied to all rows with one fancy-indexing
        operation.
        """
        if len(store) == 0:
            return store.with_subcat_ids(
                np.empty(0, dtype=np.int32), self.label_names
            )
        entry_map = np.array(
            [self._label_id_for_entry(e) for e in store.entry_table],
            dtype=np.int32,
        )
        subcat_ids = entry_map[store.entry_ids]
        return store.with_subcat_ids(subcat_ids, self.label_names)

    def main_category_ids(self, store: EventStore) -> np.ndarray:
        """Per-row main-category index (order of ``MainCategory``).

        Requires a store previously labeled by :meth:`classify_store`; rows
        still :data:`~repro.ras.store.UNCLASSIFIED` raise ``ValueError``.
        """
        if len(store) and np.any(store.subcat_ids == UNCLASSIFIED):
            raise ValueError("store has unclassified rows; run classify_store first")
        cats = list(MainCategory)
        cat_index = {c: i for i, c in enumerate(cats)}
        table = np.array(
            [cat_index[self.category_of_label(name)] for name in store.subcat_table],
            dtype=np.int8,
        )
        if len(store) == 0:
            return np.empty(0, dtype=np.int8)
        return table[store.subcat_ids]
