"""The eight main RAS event categories (paper §3.1).

Events are first categorized "based on the subsystem in which they occur,
according to the LOCATION field, the FACILITY field, and the description
listed in the ENTRY DATA field".
"""

from __future__ import annotations

import enum


class MainCategory(enum.Enum):
    """High-level subsystem a RAS event belongs to."""

    APPLICATION = "application"
    """Application instruction failures (program load, login, node maps)."""

    IOSTREAM = "iostream"
    """Socket read/write calls and I/O procedure calls."""

    KERNEL = "kernel"
    """Compute-node kernel: instructions and alignment of data."""

    MEMORY = "memory"
    """Memory hierarchy (caches, DDR, EDRAM, parity)."""

    MIDPLANE = "midplane"
    """Midplane configuration and switches."""

    NETWORK = "network"
    """Torus/tree/Ethernet traffic between compute chips and I/O."""

    NODECARD = "nodecard"
    """Node-card operation and configuration."""

    OTHER = "other"
    """Service infrastructure: BGLMaster, CMCS control, link-card service."""


#: Presentation order used by every paper table (Table 3 / Table 4).
CATEGORY_ORDER: tuple[MainCategory, ...] = (
    MainCategory.APPLICATION,
    MainCategory.IOSTREAM,
    MainCategory.KERNEL,
    MainCategory.MEMORY,
    MainCategory.MIDPLANE,
    MainCategory.NETWORK,
    MainCategory.NODECARD,
    MainCategory.OTHER,
)
