"""repro — a meta-learning failure predictor for Blue Gene/L systems.

Reproduction of Gujrati, Li, Lan, Thakur & White, "A Meta-Learning Failure
Predictor for Blue Gene/L Systems" (ICPP 2007): a three-phase pipeline that
preprocesses RAS event logs, learns two base failure predictors (statistical
temporal correlation and association rules), and combines them with a
coverage-based stacked meta-learner.

Quick start::

    from repro import LogGenerator, anl_profile, ThreePhasePredictor

    log = LogGenerator(anl_profile(), scale=0.1, seed=7).generate()
    predictor = ThreePhasePredictor()
    result = predictor.preprocess(log.raw)          # Phase 1
    events = result.events
    cut = int(len(events) * 0.7)
    predictor.fit(events.select(slice(0, cut)))     # Phases 2-3
    warnings = predictor.predict(events.select(slice(cut, len(events))))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.config import PredictorConfig
from repro.core.pipeline import ThreePhasePredictor
from repro.core.serialize import load_model, save_model
from repro.evaluation.crossval import cross_validate
from repro.evaluation.matching import match_warnings
from repro.evaluation.metrics import Metrics
from repro.meta.multi import MultiMeta
from repro.meta.stacked import MetaLearner
from repro.obs import MetricsRegistry
from repro.predictors.base import FailureWarning
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.online.detector import OnlineDetector, OnlineSession
from repro.preprocess.pipeline import PreprocessPipeline
from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity
from repro.ras.logfile import read_log, write_log
from repro.ras.store import EventStore
from repro.synth.generator import GeneratedLog, LogGenerator
from repro.synth.profiles import anl_profile, profile_by_name, sdsc_profile
from repro.taxonomy.classifier import TaxonomyClassifier

__version__ = "1.0.0"

__all__ = [
    "PredictorConfig",
    "ThreePhasePredictor",
    "save_model",
    "load_model",
    "MetaLearner",
    "MultiMeta",
    "OnlineDetector",
    "OnlineSession",
    "StatisticalPredictor",
    "RuleBasedPredictor",
    "FailureWarning",
    "PreprocessPipeline",
    "TaxonomyClassifier",
    "EventStore",
    "RasEvent",
    "Severity",
    "Facility",
    "read_log",
    "write_log",
    "LogGenerator",
    "GeneratedLog",
    "anl_profile",
    "sdsc_profile",
    "profile_by_name",
    "cross_validate",
    "match_warnings",
    "Metrics",
    "MetricsRegistry",
    "__version__",
]
