"""Storage backends for :class:`~repro.ras.store.EventStore`.

The event store's *logical* surface (time-range queries, selection, interned
string columns) is independent of where the column bytes live.  This module
defines the boundary:

- :data:`COLUMNS` — the canonical column schema (name -> dtype).  Every
  backend stores exactly these seven columns; every consumer (fingerprinting,
  serialization, the columnar format) iterates this one list instead of
  hard-coding attribute names.
- :class:`StoreBackend` — the protocol a backend implements: row count,
  read-only column views, and the three intern tables.
- :class:`MemoryBackend` — plain NumPy arrays in RAM (the original store,
  extracted verbatim).
- ``repro.ras.columnar.ColumnarBackend`` — memory-mapped segment files on
  disk for logs that do not fit in RAM.

Columns handed out by a backend are **read-only views**: mutating a store's
columns in place would silently desynchronize derived stores, fingerprints
and on-disk segments, so the arrays carry ``writeable=False`` and writes to
store columns outside ``repro.ras`` are a lint error (RL014).

``REPRO_STORE_BACKEND=columnar`` routes every store built through the public
constructors onto the columnar backend (spilled to a session-scoped temp
directory) — the CI matrix runs the whole suite that way to prove the two
backends are observationally identical.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from typing import Iterator, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

#: Canonical column schema, in fingerprint/serialization order.
COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("times", np.dtype(np.int64)),
    ("severities", np.dtype(np.int8)),
    ("facilities", np.dtype(np.int8)),
    ("jobs", np.dtype(np.int64)),
    ("location_ids", np.dtype(np.int32)),
    ("entry_ids", np.dtype(np.int32)),
    ("subcat_ids", np.dtype(np.int32)),
)

#: Column names only, in schema order.
COLUMN_NAMES: tuple[str, ...] = tuple(name for name, _ in COLUMNS)

#: dtype per column name.
COLUMN_DTYPES: dict[str, np.dtype] = dict(COLUMNS)

#: Intern-table names, in fingerprint/serialization order.  ``locations``
#: backs ``location_ids``, ``entries`` backs ``entry_ids``, ``subcats``
#: backs ``subcat_ids``.
TABLE_NAMES: tuple[str, ...] = ("locations", "entries", "subcats")


class InternTable:
    """Bidirectional string <-> int id mapping shared across derived stores."""

    __slots__ = ("strings", "_index")

    def __init__(self, strings: Optional[Sequence[str]] = None) -> None:
        self.strings: list[str] = list(strings) if strings else []
        self._index: dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def intern(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(s)
            self._index[s] = idx
        return idx

    def __getitem__(self, idx: int) -> str:
        return self.strings[idx]

    def __len__(self) -> int:
        return len(self.strings)

    def copy(self) -> "InternTable":
        return InternTable(self.strings)

    def __getstate__(self) -> list[str]:
        return self.strings

    def __setstate__(self, strings: list[str]) -> None:
        self.strings = list(strings)
        self._index = {s: i for i, s in enumerate(self.strings)}


def readonly_view(arr: np.ndarray) -> np.ndarray:
    """A non-writeable view of ``arr`` (the caller's array is untouched)."""
    view = arr.view()
    view.flags.writeable = False
    return view


@runtime_checkable
class StoreBackend(Protocol):
    """Where an :class:`~repro.ras.store.EventStore`'s bytes actually live.

    Implementations must return the *same* array object on repeated
    ``column`` calls (consumers rely on cheap repeated access) and the
    arrays must be read-only.  ``storage_path`` is ``None`` for in-memory
    backends and the store directory for out-of-core ones — the evaluation
    engine uses it to ship a path to worker processes instead of the bytes.
    """

    def __len__(self) -> int: ...

    def column(self, name: str) -> np.ndarray: ...

    def table(self, name: str) -> InternTable: ...

    @property
    def kind(self) -> str: ...

    @property
    def storage_path(self) -> Optional[str]: ...


class MemoryBackend:
    """The original in-RAM NumPy arrays, behind the backend interface."""

    __slots__ = ("_columns", "_tables")

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        tables: dict[str, InternTable],
    ) -> None:
        if set(columns) != set(COLUMN_NAMES):
            raise ValueError(
                f"backend needs columns {COLUMN_NAMES}, got {sorted(columns)}"
            )
        if set(tables) != set(TABLE_NAMES):
            raise ValueError(
                f"backend needs tables {TABLE_NAMES}, got {sorted(tables)}"
            )
        n = len(columns["times"])
        for name in COLUMN_NAMES:
            if len(columns[name]) != n:
                raise ValueError(
                    f"column {name} has length {len(columns[name])}, expected {n}"
                )
        self._columns = {
            name: readonly_view(columns[name]) for name in COLUMN_NAMES
        }
        self._tables = tables

    def __len__(self) -> int:
        return len(self._columns["times"])

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def table(self, name: str) -> InternTable:
        return self._tables[name]

    @property
    def kind(self) -> str:
        return "memory"

    @property
    def storage_path(self) -> Optional[str]:
        return None

    def replace_column(self, name: str, values: np.ndarray) -> "MemoryBackend":
        """A new backend with one column swapped (same tables)."""
        columns = dict(self._columns)
        columns[name] = np.asarray(values, dtype=COLUMN_DTYPES[name])
        return MemoryBackend(columns, self._tables)

    # MemoryBackend participates in store pickling (the process-pool engine
    # ships in-memory stores to workers); only the raw data travels.
    def __getstate__(self) -> tuple[dict[str, np.ndarray], dict[str, list[str]]]:
        return (
            dict(self._columns),
            {name: self._tables[name].strings for name in TABLE_NAMES},
        )

    def __setstate__(
        self, state: tuple[dict[str, np.ndarray], dict[str, list[str]]]
    ) -> None:
        columns, tables = state
        self._columns = {
            name: readonly_view(columns[name]) for name in COLUMN_NAMES
        }
        self._tables = {name: InternTable(tables[name]) for name in TABLE_NAMES}


def default_backend_kind() -> str:
    """The process-wide default backend: ``REPRO_STORE_BACKEND`` or memory."""
    raw = os.environ.get("REPRO_STORE_BACKEND", "").strip().lower()
    if not raw:
        return "memory"
    if raw not in ("memory", "columnar"):
        raise ValueError(
            f"REPRO_STORE_BACKEND must be 'memory' or 'columnar', got {raw!r}"
        )
    return raw


# Session-scoped spill root for REPRO_STORE_BACKEND=columnar: one temp tree,
# removed at interpreter exit (the bcolz_store temp-dir idiom).
_SPILL_ROOT: Optional[str] = None


def spill_dir() -> str:
    """A fresh directory under the session's spill root."""
    global _SPILL_ROOT
    if _SPILL_ROOT is None:
        _SPILL_ROOT = tempfile.mkdtemp(prefix="repro-store-spill-")
        atexit.register(shutil.rmtree, _SPILL_ROOT, ignore_errors=True)
    return tempfile.mkdtemp(prefix="store-", dir=_SPILL_ROOT)


def iter_column_chunks(
    arr: np.ndarray, chunk_rows: int
) -> Iterator[np.ndarray]:
    """Yield contiguous read-only slices of ``arr`` of at most ``chunk_rows``."""
    if chunk_rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    for lo in range(0, len(arr), chunk_rows):
        yield arr[lo : lo + chunk_rows]
