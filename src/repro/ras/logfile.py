"""Text serialization of RAS logs.

Two line dialects are supported:

``REPRO`` (this project's canonical format, carries JOB_ID)::

    <epoch> <YYYY.MM.DD> <location> <YYYY-MM-DD-HH.MM.SS.ffffff> <job_id> \\
        <event_type> <facility> <severity> <entry data ...>

``LOGHUB`` (the public Loghub/USENIX BG/L dump format; no JOB_ID field)::

    <alert_tag> <epoch> <YYYY.MM.DD> <location> <YYYY-MM-DD-HH.MM.SS.ffffff> \\
        <location> <event_type> <facility> <severity> <entry data ...>

The reader auto-detects the dialect per line, so mixed files and real public
BG/L dumps both load.  Malformed lines raise :class:`LogParseError` by
default, or are counted and skipped with ``errors="skip"`` — production logs
do contain occasional truncated lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from repro.ras.events import NO_JOB, RasEvent
from repro.ras.fields import Facility, Severity
from repro.util.timeutil import format_bgl_date, format_bgl_timestamp


class LogDialect(enum.Enum):
    """Line format variant."""

    REPRO = "repro"
    LOGHUB = "loghub"


class LogParseError(ValueError):
    """A log line could not be parsed."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line[:120]!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


@dataclass
class ReadStats:
    """Bookkeeping from a :func:`read_log` call."""

    lines: int = 0
    parsed: int = 0
    skipped: int = 0


def format_event(event: RasEvent, dialect: LogDialect = LogDialect.REPRO) -> str:
    """Render one event as a log line in the given dialect."""
    date = format_bgl_date(event.time)
    stamp = format_bgl_timestamp(event.time)
    if dialect is LogDialect.REPRO:
        return (
            f"{event.time} {date} {event.location} {stamp} {event.job_id} "
            f"{event.event_type} {event.facility.name} {event.severity.name} "
            f"{event.entry_data}"
        )
    if dialect is LogDialect.LOGHUB:
        tag = "-" if not event.is_fatal else event.severity.name
        return (
            f"{tag} {event.time} {date} {event.location} {stamp} {event.location} "
            f"{event.event_type} {event.facility.name} {event.severity.name} "
            f"{event.entry_data}"
        )
    raise ValueError(f"unknown dialect: {dialect!r}")


def parse_line(line: str, line_no: int = 0) -> RasEvent:
    """Parse one log line, auto-detecting the dialect.

    A line whose first whitespace-separated token is an integer is REPRO
    dialect (it starts with the epoch); otherwise the first token is the
    Loghub alert tag and the epoch is the second token.
    """
    parts = line.rstrip("\n").split(" ")
    if len(parts) < 9:
        raise LogParseError(line_no, line, "too few fields")
    try:
        int(parts[0])
        is_repro = True
    except ValueError:
        is_repro = False

    try:
        if is_repro:
            epoch = int(parts[0])
            location = parts[2]
            job_id = int(parts[4])
            event_type = parts[5]
            facility = Facility.from_name(parts[6])
            severity = Severity.from_name(parts[7])
            entry = " ".join(parts[8:])
        else:
            epoch = int(parts[1])
            location = parts[3]
            job_id = NO_JOB
            event_type = parts[6]
            facility = Facility.from_name(parts[7])
            severity = Severity.from_name(parts[8])
            entry = " ".join(parts[9:])
    except (ValueError, IndexError) as exc:
        raise LogParseError(line_no, line, str(exc)) from exc

    if not entry:
        raise LogParseError(line_no, line, "empty entry data")
    return RasEvent(
        time=epoch,
        location=location,
        facility=facility,
        severity=severity,
        entry_data=entry,
        job_id=job_id,
        event_type=event_type,
    )


def iter_log_lines(
    source: Union[str, Path, TextIO],
    errors: str = "raise",
    stats: ReadStats | None = None,
) -> Iterator[RasEvent]:
    """Yield events from a path or open text stream.

    Parameters
    ----------
    errors:
        ``"raise"`` (default) raises :class:`LogParseError` on a bad line;
        ``"skip"`` counts it in ``stats`` and continues.
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip', got {errors!r}")
    own = False
    if isinstance(source, (str, Path)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        own = True
    else:
        fh = source
    try:
        for line_no, line in enumerate(fh, start=1):
            if stats is not None:
                stats.lines += 1
            if not line.strip():
                continue
            try:
                ev = parse_line(line, line_no)
            except LogParseError:
                if errors == "raise":
                    raise
                if stats is not None:
                    stats.skipped += 1
                continue
            if stats is not None:
                stats.parsed += 1
            yield ev
    finally:
        if own:
            fh.close()


def read_log(
    source: Union[str, Path, TextIO],
    errors: str = "raise",
    stats: ReadStats | None = None,
):
    """Read a whole log into an :class:`repro.ras.store.EventStore`."""
    from repro.ras.store import EventStore

    return EventStore.from_events(iter_log_lines(source, errors=errors, stats=stats))


def write_log(
    events: Iterable[RasEvent],
    target: Union[str, Path, TextIO],
    dialect: LogDialect = LogDialect.REPRO,
) -> int:
    """Write events as log lines; returns the number of lines written."""
    own = False
    if isinstance(target, (str, Path)):
        fh: TextIO = open(target, "w", encoding="utf-8")
        own = True
    else:
        fh = target
    n = 0
    try:
        for ev in events:
            fh.write(format_event(ev, dialect))
            fh.write("\n")
            n += 1
    finally:
        if own:
            fh.close()
    return n
