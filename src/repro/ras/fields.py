"""Controlled vocabularies of the CMCS RAS repository (paper Table 2).

``SEVERITY`` is ordinal: ``INFO < WARNING < SEVERE < ERROR < FATAL <
FAILURE``.  The paper's prediction target is the top two levels — *fatal
events* — because only those "usually lead to application/software crashes";
everything below is *non-fatal* and serves as precursor signal.

``FACILITY`` names the hardware/software component that reported the event.
The set below matches the facilities observed in public Blue Gene/L logs.
"""

from __future__ import annotations

import enum


class Severity(enum.IntEnum):
    """Ordinal severity of a RAS record (increasing order of severity)."""

    INFO = 0
    WARNING = 1
    SEVERE = 2
    ERROR = 3
    FATAL = 4
    FAILURE = 5

    @property
    def is_fatal(self) -> bool:
        """True for the two levels the paper predicts (FATAL and FAILURE)."""
        return self >= Severity.FATAL

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a severity name case-insensitively."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity: {name!r}") from None


#: The severities the predictor treats as failures.
FATAL_SEVERITIES: frozenset[Severity] = frozenset({Severity.FATAL, Severity.FAILURE})


class Facility(enum.IntEnum):
    """Reporting component of a RAS record.

    Values mirror the facilities found in production Blue Gene/L RAS logs
    (KERNEL, APP, DISCOVERY, MMCS, LINKCARD, MONITOR, HARDWARE, CMCS,
    BGLMASTER, SERV_NET).
    """

    KERNEL = 0
    APP = 1
    DISCOVERY = 2
    MMCS = 3
    LINKCARD = 4
    MONITOR = 5
    HARDWARE = 6
    CMCS = 7
    BGLMASTER = 8
    SERV_NET = 9

    @classmethod
    def from_name(cls, name: str) -> "Facility":
        """Parse a facility name case-insensitively."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown facility: {name!r}") from None
