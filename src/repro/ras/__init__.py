"""RAS (Reliability, Availability, Serviceability) event data model.

This subpackage is the substrate every phase of the predictor operates on:

- :mod:`repro.ras.fields` — the ``SEVERITY`` and ``FACILITY`` vocabularies of
  the CMCS repository (paper Table 2).
- :mod:`repro.ras.events` — the per-record :class:`RasEvent` object.
- :mod:`repro.ras.store` — :class:`EventStore`, a columnar NumPy-backed store
  with O(log n) time-range queries; the in-memory stand-in for the paper's
  centralized DB2 repository.
- :mod:`repro.ras.logfile` — text serialization (a Loghub-compatible line
  format plus our extended dialect carrying JOB_ID).
"""

from repro.ras.events import RasEvent, NO_JOB
from repro.ras.fields import Severity, Facility, FATAL_SEVERITIES
from repro.ras.logfile import (
    LogDialect,
    read_log,
    write_log,
    iter_log_lines,
    format_event,
    parse_line,
)
from repro.ras.store import EventStore

__all__ = [
    "RasEvent",
    "NO_JOB",
    "Severity",
    "Facility",
    "FATAL_SEVERITIES",
    "EventStore",
    "LogDialect",
    "read_log",
    "write_log",
    "iter_log_lines",
    "format_event",
    "parse_line",
]
