"""RAS (Reliability, Availability, Serviceability) event data model.

This subpackage is the substrate every phase of the predictor operates on:

- :mod:`repro.ras.fields` — the ``SEVERITY`` and ``FACILITY`` vocabularies of
  the CMCS repository (paper Table 2).
- :mod:`repro.ras.events` — the per-record :class:`RasEvent` object.
- :mod:`repro.ras.store` — :class:`EventStore`, a columnar NumPy-backed store
  with O(log n) time-range queries; the stand-in for the paper's centralized
  DB2 repository.
- :mod:`repro.ras.backend` — the :class:`StoreBackend` protocol deciding
  where the column bytes live, with :class:`MemoryBackend` (RAM arrays) as
  the default implementation.
- :mod:`repro.ras.columnar` — the out-of-core backend: append-only segment
  files + atomic manifest, memory-mapped on read, for logs larger than RAM.
- :mod:`repro.ras.logfile` — text serialization (a Loghub-compatible line
  format plus our extended dialect carrying JOB_ID).
"""

from repro.ras.backend import (
    COLUMN_NAMES,
    TABLE_NAMES,
    InternTable,
    MemoryBackend,
    StoreBackend,
    default_backend_kind,
)
from repro.ras.columnar import (
    ColumnarBackend,
    ColumnarWriter,
    StoreDirError,
    is_columnar_dir,
    open_store,
    write_store,
)
from repro.ras.events import RasEvent, NO_JOB
from repro.ras.fields import Severity, Facility, FATAL_SEVERITIES
from repro.ras.logfile import (
    LogDialect,
    read_log,
    write_log,
    iter_log_lines,
    format_event,
    parse_line,
)
from repro.ras.store import EventStore, UNCLASSIFIED

__all__ = [
    "RasEvent",
    "NO_JOB",
    "Severity",
    "Facility",
    "FATAL_SEVERITIES",
    "EventStore",
    "UNCLASSIFIED",
    "StoreBackend",
    "MemoryBackend",
    "ColumnarBackend",
    "ColumnarWriter",
    "StoreDirError",
    "InternTable",
    "COLUMN_NAMES",
    "TABLE_NAMES",
    "default_backend_kind",
    "is_columnar_dir",
    "open_store",
    "write_store",
    "LogDialect",
    "read_log",
    "write_log",
    "iter_log_lines",
    "format_event",
    "parse_line",
]
