"""Columnar, NumPy-backed storage for RAS event streams.

The full-scale ANL log holds ~4.2 million records; a list of Python objects
at that scale makes every pass over the log a Python-level loop.
:class:`EventStore` instead keeps one NumPy array per RAS attribute (with
string attributes interned through lookup tables), so that the hot operations
of the pipeline — time-range queries, severity masks, group-bys for
compression — are vectorized.  This is the stand-in for the paper's
centralized DB2 repository.

Where the column bytes *live* is a separate concern: the store delegates to a
:class:`~repro.ras.backend.StoreBackend` — plain RAM arrays
(:class:`~repro.ras.backend.MemoryBackend`) or memory-mapped segment files on
disk (:class:`~repro.ras.columnar.ColumnarBackend`) for logs that do not fit
in memory.  Every public method behaves identically on either backend, and
``store_fingerprint`` digests are bit-identical, so artifact-cache keys are
stable across backends.

Invariants
----------
- All columns have equal length.
- ``times`` is kept sorted (ascending); constructors sort on ingest, and
  every derived store preserves order.  Sortedness is what allows
  ``searchsorted``-based O(log n) window queries.
- Column arrays are **read-only views** (``writeable=False``).  Assigning to
  ``store.times`` et al. still works through a ``DeprecationWarning`` shim
  that materializes a fresh in-memory backend, but new code must derive new
  stores instead (RL014 flags column writes outside ``repro.ras``).
"""

from __future__ import annotations

import warnings
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.ras.backend import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    TABLE_NAMES,
    InternTable,
    MemoryBackend,
    StoreBackend,
    default_backend_kind,
    spill_dir,
)
from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity

#: Sentinel subcategory id for unclassified events.
UNCLASSIFIED: int = -1

#: Backwards-compatible alias — the intern table now lives in
#: :mod:`repro.ras.backend` so both backends and the columnar format share it.
_InternTable = InternTable


def _column_property(name: str) -> property:
    """A read-only column accessor with a deprecation shim for assignment."""

    def getter(self: "EventStore") -> np.ndarray:
        return self._backend.column(name)

    def setter(self: "EventStore", values: np.ndarray) -> None:
        self._mutate_column(name, values)

    getter.__name__ = name
    return property(
        getter,
        setter,
        doc=f"Read-only ``{name}`` column view (assignment is deprecated).",
    )


class EventStore:
    """A time-sorted columnar collection of RAS events.

    Construct with :meth:`from_events` (from ``RasEvent`` objects),
    :meth:`from_columns` (from pre-built arrays, used by the synthetic
    generator for speed), or :meth:`from_backend` (wrap an existing
    backend, used by :func:`repro.ras.columnar.open_store`).  Stores are
    immutable: all mutating-ish operations return new stores sharing intern
    tables.

    With ``REPRO_STORE_BACKEND=columnar`` the public constructors spill
    their columns to a session-scoped temp directory and reopen them
    memory-mapped, so an unmodified test suite exercises the out-of-core
    path end to end.
    """

    __slots__ = ("_backend",)

    # Column accessors: ``store.times`` etc. read straight from the backend;
    # assignment is deprecated and materializes a fresh in-memory backend.
    times = _column_property("times")
    severities = _column_property("severities")
    facilities = _column_property("facilities")
    jobs = _column_property("jobs")
    location_ids = _column_property("location_ids")
    entry_ids = _column_property("entry_ids")
    subcat_ids = _column_property("subcat_ids")

    def __init__(
        self,
        times: np.ndarray,
        severities: np.ndarray,
        facilities: np.ndarray,
        jobs: np.ndarray,
        location_ids: np.ndarray,
        entry_ids: np.ndarray,
        subcat_ids: np.ndarray,
        locations: InternTable,
        entries: InternTable,
        subcats: InternTable,
    ) -> None:
        self._backend: StoreBackend = MemoryBackend(
            {
                "times": times,
                "severities": severities,
                "facilities": facilities,
                "jobs": jobs,
                "location_ids": location_ids,
                "entry_ids": entry_ids,
                "subcat_ids": subcat_ids,
            },
            {"locations": locations, "entries": entries, "subcats": subcats},
        )

    # ------------------------------------------------------------------ #
    # Backend surface
    # ------------------------------------------------------------------ #

    @classmethod
    def from_backend(cls, backend: StoreBackend) -> "EventStore":
        """Wrap an existing backend without copying anything."""
        store = cls.__new__(cls)
        store._backend = backend
        return store

    @property
    def backend(self) -> StoreBackend:
        """The storage backend holding this store's bytes."""
        return self._backend

    @property
    def backend_kind(self) -> str:
        """``"memory"`` or ``"columnar"``."""
        return self._backend.kind

    @property
    def storage_path(self) -> Optional[str]:
        """The on-disk store directory, or ``None`` for in-memory stores.

        The evaluation engine ships this path to worker processes instead
        of pickling the column bytes; workers reopen their own memory map.
        """
        return self._backend.storage_path

    def column(self, name: str) -> np.ndarray:
        """Read-only view of a schema column by name (see ``COLUMN_NAMES``)."""
        return self._backend.column(name)

    def table(self, name: str) -> InternTable:
        """An intern table by name (see ``TABLE_NAMES``)."""
        return self._backend.table(name)

    def materialized(self) -> "EventStore":
        """An in-memory copy: columns loaded into RAM, tables copied.

        No-op for stores already on the memory backend.  Use before heavy
        random access when the columnar page-in cost would dominate.
        """
        if isinstance(self._backend, MemoryBackend):
            return self
        columns = [
            np.array(self._backend.column(name)) for name in COLUMN_NAMES
        ]
        tables = [self._backend.table(name).copy() for name in TABLE_NAMES]
        return EventStore(*columns, *tables)

    def _mutate_column(self, name: str, values: np.ndarray) -> None:
        """Deprecated in-place column assignment (``store.times = ...``)."""
        warnings.warn(
            f"assigning EventStore.{name} is deprecated; stores are "
            "immutable — derive a new store (select/with_subcat_ids/"
            "from_columns) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        arr = np.asarray(values, dtype=COLUMN_DTYPES[name])
        if arr.shape != (len(self),):
            raise ValueError(
                f"column {name} has shape {arr.shape}, expected ({len(self)},)"
            )
        backend = self._backend
        if not isinstance(backend, MemoryBackend):
            backend = MemoryBackend(
                {n: np.array(backend.column(n)) for n in COLUMN_NAMES},
                {n: backend.table(n).copy() for n in TABLE_NAMES},
            )
        self._backend = backend.replace_column(name, arr)

    # Intern tables, named for the internal call sites.
    @property
    def _locations(self) -> InternTable:
        return self._backend.table("locations")

    @property
    def _entries(self) -> InternTable:
        return self._backend.table("entries")

    @property
    def _subcats(self) -> InternTable:
        return self._backend.table("subcats")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "EventStore":
        """A store with zero events (always memory-backed; nothing to spill)."""
        z = np.empty(0, dtype=np.int64)
        return cls(
            z,
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int8),
            z.copy(),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            InternTable(),
            InternTable(),
            InternTable(),
        )

    @classmethod
    def from_events(cls, events: Iterable[RasEvent]) -> "EventStore":
        """Build a store from event objects; sorts by time (stable).

        Honors ``REPRO_STORE_BACKEND=columnar`` by spilling the sorted
        store to a session temp directory (blocking file I/O).  Async code
        and other spill-averse callers use :meth:`from_events_in_memory`.
        """
        return _to_default_backend(cls.from_events_in_memory(events))

    @classmethod
    def from_events_in_memory(cls, events: Iterable[RasEvent]) -> "EventStore":
        """:meth:`from_events` minus the backend-default spill.

        The result is always :class:`MemoryBackend`-backed regardless of
        ``REPRO_STORE_BACKEND`` — the right constructor for small ephemeral
        stores (per-batch chunks in the serving loop) where a disk round
        trip would be pure overhead, and for asyncio coroutines where it
        would block the event loop (RL013).
        """
        events = list(events)
        n = len(events)
        times = np.empty(n, dtype=np.int64)
        severities = np.empty(n, dtype=np.int8)
        facilities = np.empty(n, dtype=np.int8)
        jobs = np.empty(n, dtype=np.int64)
        location_ids = np.empty(n, dtype=np.int32)
        entry_ids = np.empty(n, dtype=np.int32)
        subcat_ids = np.empty(n, dtype=np.int32)
        locations = InternTable()
        entries = InternTable()
        subcats = InternTable()
        for i, ev in enumerate(events):
            times[i] = ev.time
            severities[i] = int(ev.severity)
            facilities[i] = int(ev.facility)
            jobs[i] = ev.job_id
            location_ids[i] = locations.intern(ev.location)
            entry_ids[i] = entries.intern(ev.entry_data)
            subcat_ids[i] = (
                UNCLASSIFIED if ev.subcategory is None else subcats.intern(ev.subcategory)
            )
        store = cls(
            times, severities, facilities, jobs,
            location_ids, entry_ids, subcat_ids,
            locations, entries, subcats,
        )
        return store.sorted_by_time()

    @classmethod
    def from_columns(
        cls,
        times: np.ndarray,
        severities: np.ndarray,
        facilities: np.ndarray,
        jobs: np.ndarray,
        location_ids: np.ndarray,
        entry_ids: np.ndarray,
        subcat_ids: np.ndarray,
        locations: Sequence[str],
        entries: Sequence[str],
        subcats: Sequence[str],
    ) -> "EventStore":
        """Build directly from columns (bulk path used by the generator)."""
        store = cls(
            np.asarray(times, dtype=np.int64),
            np.asarray(severities, dtype=np.int8),
            np.asarray(facilities, dtype=np.int8),
            np.asarray(jobs, dtype=np.int64),
            np.asarray(location_ids, dtype=np.int32),
            np.asarray(entry_ids, dtype=np.int32),
            np.asarray(subcat_ids, dtype=np.int32),
            InternTable(list(locations)),
            InternTable(list(entries)),
            InternTable(list(subcats)),
        )
        return _to_default_backend(store.sorted_by_time())

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._backend)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = ""
        if len(self):
            span = f", t=[{self.times[0]}..{self.times[-1]}]"
        return f"EventStore(n={len(self)}, backend={self.backend_kind}{span})"

    def __getitem__(
        self, key: Union[int, slice, np.ndarray]
    ) -> Union[RasEvent, "EventStore"]:
        """``store[i]`` -> :class:`RasEvent`; slice/array -> derived store."""
        if isinstance(key, (int, np.integer)):
            return self.event_at(int(key))
        return self.select(key)

    def __iter__(self) -> Iterator[RasEvent]:
        for i in range(len(self)):
            yield self.event_at(i)

    def event_at(self, i: int) -> RasEvent:
        """Materialize row ``i`` as a :class:`RasEvent`."""
        sc = int(self.subcat_ids[i])
        return RasEvent(
            time=int(self.times[i]),
            location=self._locations[int(self.location_ids[i])],
            facility=Facility(int(self.facilities[i])),
            severity=Severity(int(self.severities[i])),
            entry_data=self._entries[int(self.entry_ids[i])],
            job_id=int(self.jobs[i]),
            subcategory=None if sc == UNCLASSIFIED else self._subcats[sc],
        )

    def to_events(self) -> list[RasEvent]:
        """Materialize the whole store as event objects (small stores only)."""
        return [self.event_at(i) for i in range(len(self))]

    # ------------------------------------------------------------------ #
    # String table access
    # ------------------------------------------------------------------ #

    @property
    def location_table(self) -> list[str]:
        """The interned location strings (index = location id)."""
        return self._locations.strings

    @property
    def entry_table(self) -> list[str]:
        """The interned ENTRY_DATA strings (index = entry id)."""
        return self._entries.strings

    @property
    def subcat_table(self) -> list[str]:
        """The interned subcategory names (index = subcategory id)."""
        return self._subcats.strings

    def location_of(self, i: int) -> str:
        """Location string of row ``i``."""
        return self._locations[int(self.location_ids[i])]

    def entry_of(self, i: int) -> str:
        """ENTRY_DATA string of row ``i``."""
        return self._entries[int(self.entry_ids[i])]

    def subcat_of(self, i: int) -> Optional[str]:
        """Subcategory name of row ``i`` (``None`` if unclassified)."""
        sc = int(self.subcat_ids[i])
        return None if sc == UNCLASSIFIED else self._subcats[sc]

    def subcat_id_of(self, name: str) -> int:
        """Id of a subcategory name, interning it if new."""
        return self._subcats.intern(name)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def _derive(self, idx: np.ndarray) -> "EventStore":
        """Fancy-indexed derivation: materializes the selected rows in RAM."""
        return EventStore(
            self.times[idx],
            self.severities[idx],
            self.facilities[idx],
            self.jobs[idx],
            self.location_ids[idx],
            self.entry_ids[idx],
            self.subcat_ids[idx],
            self._locations,
            self._entries,
            self._subcats,
        )

    def _derive_slice(self, lo: int, hi: int) -> "EventStore":
        """Contiguous-range derivation: zero-copy views into the backend.

        On the columnar backend the views are slices of the memory map, so
        a window over a 100M-event log costs no RSS until its pages are
        touched — this is the primitive ``time_window`` and ``iter_chunks``
        are built on.
        """
        return EventStore(
            self.times[lo:hi],
            self.severities[lo:hi],
            self.facilities[lo:hi],
            self.jobs[lo:hi],
            self.location_ids[lo:hi],
            self.entry_ids[lo:hi],
            self.subcat_ids[lo:hi],
            self._locations,
            self._entries,
            self._subcats,
        )

    def select(self, key: Union[slice, np.ndarray, Sequence[int]]) -> "EventStore":
        """Derived store from a slice, boolean mask or index array.

        The derived store shares intern tables with its parent (ids remain
        comparable across the two), and preserves time order because parents
        are sorted and the selection preserves relative order for masks and
        forward slices.  Forward unit-step slices are zero-copy views;
        masks and index arrays materialize the selection.
        """
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            if step == 1:
                return self._derive_slice(start, max(start, stop))
            idx = np.arange(len(self))[key]
        else:
            key = np.asarray(key)
            if key.dtype == bool:
                if key.shape != (len(self),):
                    raise ValueError(
                        f"boolean mask has shape {key.shape}, expected ({len(self)},)"
                    )
                idx = np.flatnonzero(key)
            else:
                idx = key.astype(np.int64)
        return self._derive(idx)

    def iter_chunks(self, chunk_events: int) -> Iterator["EventStore"]:
        """Yield contiguous sub-stores of at most ``chunk_events`` rows.

        Chunks are zero-copy slices sharing the parent's intern tables, so
        streaming consumers (phase1, ``feed_store``, replay) touch one
        chunk's pages at a time while ids stay comparable across chunks.
        """
        if chunk_events <= 0:
            raise ValueError(
                f"chunk_events must be positive, got {chunk_events}"
            )
        for lo in range(0, len(self), chunk_events):
            yield self._derive_slice(lo, min(lo + chunk_events, len(self)))

    def sorted_by_time(self) -> "EventStore":
        """Return a time-sorted copy (stable); no-op copy if already sorted."""
        if len(self) > 1 and np.any(np.diff(self.times) < 0):
            order = np.argsort(self.times, kind="stable")
            return self._derive(order)
        return self

    def is_time_sorted(self) -> bool:
        """True if the time column is non-decreasing."""
        return len(self) < 2 or bool(np.all(np.diff(self.times) >= 0))

    def time_window(self, start: float, end: float) -> "EventStore":
        """Events with ``start <= time < end`` (O(log n) on sorted store).

        Zero-copy: the result's columns are views into this store's backend.
        """
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return self._derive_slice(lo, hi)

    def time_shifted(self, delta: int) -> "EventStore":
        """A copy with every timestamp shifted by ``delta`` seconds.

        Order is preserved (a constant shift cannot reorder), and intern
        tables are shared with the parent.  Used to splice regime segments
        into one continuous stream (e.g. the lifecycle drift benches append
        a second log after the first one ends).
        """
        return EventStore(
            self.times + np.int64(delta),
            self.severities,
            self.facilities,
            self.jobs,
            self.location_ids,
            self.entry_ids,
            self.subcat_ids,
            self._locations,
            self._entries,
            self._subcats,
        )

    def concat(self, other: "EventStore") -> "EventStore":
        """Merge two stores into a new time-sorted store.

        Intern ids of ``other`` are remapped onto this store's tables.
        """
        locations = self._locations.copy()
        entries = self._entries.copy()
        subcats = self._subcats.copy()
        loc_map = np.array(
            [locations.intern(s) for s in other._locations.strings] or [0],
            dtype=np.int32,
        )
        ent_map = np.array(
            [entries.intern(s) for s in other._entries.strings] or [0],
            dtype=np.int32,
        )
        sub_map = np.array(
            [subcats.intern(s) for s in other._subcats.strings] or [0],
            dtype=np.int32,
        )
        other_sub = other.subcat_ids.copy()
        mask = other_sub != UNCLASSIFIED
        remapped_sub = np.full(len(other), UNCLASSIFIED, dtype=np.int32)
        if mask.any():
            remapped_sub[mask] = sub_map[other_sub[mask]]
        merged = EventStore(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.severities, other.severities]),
            np.concatenate([self.facilities, other.facilities]),
            np.concatenate([self.jobs, other.jobs]),
            np.concatenate(
                [self.location_ids, loc_map[other.location_ids] if len(other) else other.location_ids]
            ),
            np.concatenate(
                [self.entry_ids, ent_map[other.entry_ids] if len(other) else other.entry_ids]
            ),
            np.concatenate([self.subcat_ids, remapped_sub]),
            locations,
            entries,
            subcats,
        )
        return merged.sorted_by_time()

    # ------------------------------------------------------------------ #
    # Masks and summaries
    # ------------------------------------------------------------------ #

    def fatal_mask(self) -> np.ndarray:
        """Boolean mask of failure records (severity FATAL or FAILURE)."""
        return self.severities >= int(Severity.FATAL)

    def fatal_events(self) -> "EventStore":
        """The failure records only."""
        return self.select(self.fatal_mask())

    def nonfatal_events(self) -> "EventStore":
        """The non-failure records only."""
        return self.select(~self.fatal_mask())

    def severity_counts(self) -> dict[Severity, int]:
        """Record count per severity level."""
        counts = np.bincount(self.severities, minlength=len(Severity))
        return {sev: int(counts[int(sev)]) for sev in Severity}

    def subcat_counts(self) -> dict[str, int]:
        """Record count per subcategory (unclassified rows are skipped)."""
        mask = self.subcat_ids != UNCLASSIFIED
        if not mask.any():
            return {}
        counts = np.bincount(self.subcat_ids[mask], minlength=len(self._subcats))
        return {
            self._subcats[i]: int(c) for i, c in enumerate(counts) if c > 0
        }

    def span_seconds(self) -> int:
        """Duration covered by the store (0 for fewer than 2 events)."""
        if len(self) < 2:
            return 0
        return int(self.times[-1] - self.times[0])

    def with_subcat_ids(
        self, subcat_ids: np.ndarray, subcat_names: Sequence[str]
    ) -> "EventStore":
        """Return a copy with the subcategory column replaced.

        Used by the taxonomy classifier, which computes labels for all rows
        in one vectorized pass.
        """
        ids = np.asarray(subcat_ids, dtype=np.int32)
        if ids.shape != (len(self),):
            raise ValueError(
                f"subcat_ids has shape {ids.shape}, expected ({len(self)},)"
            )
        return EventStore(
            self.times,
            self.severities,
            self.facilities,
            self.jobs,
            self.location_ids,
            self.entry_ids,
            ids,
            self._locations,
            self._entries,
            InternTable(list(subcat_names)),
        )


def _to_default_backend(store: EventStore) -> EventStore:
    """Spill a freshly built store to disk when the session default says so.

    ``REPRO_STORE_BACKEND=columnar`` makes every publicly constructed store
    columnar-backed (written once to a session temp dir, reopened mmap'd),
    which is how the CI matrix proves backend equivalence without touching a
    single test.  Empty stores stay in memory — there is nothing to map.
    """
    if len(store) == 0 or default_backend_kind() != "columnar":
        return store
    from repro.ras import columnar

    path = spill_dir()
    columnar.write_store(store, path)
    return columnar.open_store(path)
