"""Columnar, NumPy-backed storage for RAS event streams.

The full-scale ANL log holds ~4.2 million records; a list of Python objects
at that scale makes every pass over the log a Python-level loop.
:class:`EventStore` instead keeps one NumPy array per RAS attribute (with
string attributes interned through lookup tables), so that the hot operations
of the pipeline — time-range queries, severity masks, group-bys for
compression — are vectorized.  This is the in-memory stand-in for the paper's
centralized DB2 repository.

Invariants
----------
- All columns have equal length.
- ``times`` is kept sorted (ascending); constructors sort on ingest, and
  every derived store preserves order.  Sortedness is what allows
  ``searchsorted``-based O(log n) window queries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.ras.events import RasEvent
from repro.ras.fields import Facility, Severity

#: Sentinel subcategory id for unclassified events.
UNCLASSIFIED: int = -1


class _InternTable:
    """Bidirectional string <-> int id mapping shared across derived stores."""

    __slots__ = ("strings", "_index")

    def __init__(self, strings: Optional[Sequence[str]] = None) -> None:
        self.strings: list[str] = list(strings) if strings else []
        self._index: dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def intern(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(s)
            self._index[s] = idx
        return idx

    def __getitem__(self, idx: int) -> str:
        return self.strings[idx]

    def __len__(self) -> int:
        return len(self.strings)

    def copy(self) -> "_InternTable":
        return _InternTable(self.strings)


class EventStore:
    """A time-sorted columnar collection of RAS events.

    Construct with :meth:`from_events` (from ``RasEvent`` objects) or
    :meth:`from_columns` (from pre-built arrays, used by the synthetic
    generator for speed).  Stores are immutable in practice: all mutating-ish
    operations return new stores sharing intern tables.
    """

    __slots__ = (
        "times",
        "severities",
        "facilities",
        "jobs",
        "location_ids",
        "entry_ids",
        "subcat_ids",
        "_locations",
        "_entries",
        "_subcats",
    )

    def __init__(
        self,
        times: np.ndarray,
        severities: np.ndarray,
        facilities: np.ndarray,
        jobs: np.ndarray,
        location_ids: np.ndarray,
        entry_ids: np.ndarray,
        subcat_ids: np.ndarray,
        locations: _InternTable,
        entries: _InternTable,
        subcats: _InternTable,
    ) -> None:
        n = len(times)
        for name, col in (
            ("severities", severities),
            ("facilities", facilities),
            ("jobs", jobs),
            ("location_ids", location_ids),
            ("entry_ids", entry_ids),
            ("subcat_ids", subcat_ids),
        ):
            if len(col) != n:
                raise ValueError(f"column {name} has length {len(col)}, expected {n}")
        self.times = times
        self.severities = severities
        self.facilities = facilities
        self.jobs = jobs
        self.location_ids = location_ids
        self.entry_ids = entry_ids
        self.subcat_ids = subcat_ids
        self._locations = locations
        self._entries = entries
        self._subcats = subcats

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "EventStore":
        """A store with zero events."""
        z = np.empty(0, dtype=np.int64)
        return cls(
            z,
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int8),
            z.copy(),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            _InternTable(),
            _InternTable(),
            _InternTable(),
        )

    @classmethod
    def from_events(cls, events: Iterable[RasEvent]) -> "EventStore":
        """Build a store from event objects; sorts by time (stable)."""
        events = list(events)
        n = len(events)
        times = np.empty(n, dtype=np.int64)
        severities = np.empty(n, dtype=np.int8)
        facilities = np.empty(n, dtype=np.int8)
        jobs = np.empty(n, dtype=np.int64)
        location_ids = np.empty(n, dtype=np.int32)
        entry_ids = np.empty(n, dtype=np.int32)
        subcat_ids = np.empty(n, dtype=np.int32)
        locations = _InternTable()
        entries = _InternTable()
        subcats = _InternTable()
        for i, ev in enumerate(events):
            times[i] = ev.time
            severities[i] = int(ev.severity)
            facilities[i] = int(ev.facility)
            jobs[i] = ev.job_id
            location_ids[i] = locations.intern(ev.location)
            entry_ids[i] = entries.intern(ev.entry_data)
            subcat_ids[i] = (
                UNCLASSIFIED if ev.subcategory is None else subcats.intern(ev.subcategory)
            )
        store = cls(
            times, severities, facilities, jobs,
            location_ids, entry_ids, subcat_ids,
            locations, entries, subcats,
        )
        return store.sorted_by_time()

    @classmethod
    def from_columns(
        cls,
        times: np.ndarray,
        severities: np.ndarray,
        facilities: np.ndarray,
        jobs: np.ndarray,
        location_ids: np.ndarray,
        entry_ids: np.ndarray,
        subcat_ids: np.ndarray,
        locations: Sequence[str],
        entries: Sequence[str],
        subcats: Sequence[str],
    ) -> "EventStore":
        """Build directly from columns (bulk path used by the generator)."""
        store = cls(
            np.asarray(times, dtype=np.int64),
            np.asarray(severities, dtype=np.int8),
            np.asarray(facilities, dtype=np.int8),
            np.asarray(jobs, dtype=np.int64),
            np.asarray(location_ids, dtype=np.int32),
            np.asarray(entry_ids, dtype=np.int32),
            np.asarray(subcat_ids, dtype=np.int32),
            _InternTable(list(locations)),
            _InternTable(list(entries)),
            _InternTable(list(subcats)),
        )
        return store.sorted_by_time()

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = ""
        if len(self):
            span = f", t=[{self.times[0]}..{self.times[-1]}]"
        return f"EventStore(n={len(self)}{span})"

    def __getitem__(
        self, key: Union[int, slice, np.ndarray]
    ) -> Union[RasEvent, "EventStore"]:
        """``store[i]`` -> :class:`RasEvent`; slice/array -> derived store."""
        if isinstance(key, (int, np.integer)):
            return self.event_at(int(key))
        return self.select(key)

    def __iter__(self) -> Iterator[RasEvent]:
        for i in range(len(self)):
            yield self.event_at(i)

    def event_at(self, i: int) -> RasEvent:
        """Materialize row ``i`` as a :class:`RasEvent`."""
        sc = int(self.subcat_ids[i])
        return RasEvent(
            time=int(self.times[i]),
            location=self._locations[int(self.location_ids[i])],
            facility=Facility(int(self.facilities[i])),
            severity=Severity(int(self.severities[i])),
            entry_data=self._entries[int(self.entry_ids[i])],
            job_id=int(self.jobs[i]),
            subcategory=None if sc == UNCLASSIFIED else self._subcats[sc],
        )

    def to_events(self) -> list[RasEvent]:
        """Materialize the whole store as event objects (small stores only)."""
        return [self.event_at(i) for i in range(len(self))]

    # ------------------------------------------------------------------ #
    # String table access
    # ------------------------------------------------------------------ #

    @property
    def location_table(self) -> list[str]:
        """The interned location strings (index = location id)."""
        return self._locations.strings

    @property
    def entry_table(self) -> list[str]:
        """The interned ENTRY_DATA strings (index = entry id)."""
        return self._entries.strings

    @property
    def subcat_table(self) -> list[str]:
        """The interned subcategory names (index = subcategory id)."""
        return self._subcats.strings

    def location_of(self, i: int) -> str:
        """Location string of row ``i``."""
        return self._locations[int(self.location_ids[i])]

    def entry_of(self, i: int) -> str:
        """ENTRY_DATA string of row ``i``."""
        return self._entries[int(self.entry_ids[i])]

    def subcat_of(self, i: int) -> Optional[str]:
        """Subcategory name of row ``i`` (``None`` if unclassified)."""
        sc = int(self.subcat_ids[i])
        return None if sc == UNCLASSIFIED else self._subcats[sc]

    def subcat_id_of(self, name: str) -> int:
        """Id of a subcategory name, interning it if new."""
        return self._subcats.intern(name)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def _derive(self, idx: np.ndarray) -> "EventStore":
        return EventStore(
            self.times[idx],
            self.severities[idx],
            self.facilities[idx],
            self.jobs[idx],
            self.location_ids[idx],
            self.entry_ids[idx],
            self.subcat_ids[idx],
            self._locations,
            self._entries,
            self._subcats,
        )

    def select(self, key: Union[slice, np.ndarray, Sequence[int]]) -> "EventStore":
        """Derived store from a slice, boolean mask or index array.

        The derived store shares intern tables with its parent (ids remain
        comparable across the two), and preserves time order because parents
        are sorted and the selection preserves relative order for masks and
        forward slices.
        """
        if isinstance(key, slice):
            idx = np.arange(len(self))[key]
        else:
            key = np.asarray(key)
            if key.dtype == bool:
                if key.shape != (len(self),):
                    raise ValueError(
                        f"boolean mask has shape {key.shape}, expected ({len(self)},)"
                    )
                idx = np.flatnonzero(key)
            else:
                idx = key.astype(np.int64)
        return self._derive(idx)

    def sorted_by_time(self) -> "EventStore":
        """Return a time-sorted copy (stable); no-op copy if already sorted."""
        if len(self) > 1 and np.any(np.diff(self.times) < 0):
            order = np.argsort(self.times, kind="stable")
            return self._derive(order)
        return self

    def is_time_sorted(self) -> bool:
        """True if the time column is non-decreasing."""
        return len(self) < 2 or bool(np.all(np.diff(self.times) >= 0))

    def time_window(self, start: float, end: float) -> "EventStore":
        """Events with ``start <= time < end`` (O(log n) on sorted store)."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return self._derive(np.arange(lo, hi))

    def time_shifted(self, delta: int) -> "EventStore":
        """A copy with every timestamp shifted by ``delta`` seconds.

        Order is preserved (a constant shift cannot reorder), and intern
        tables are shared with the parent.  Used to splice regime segments
        into one continuous stream (e.g. the lifecycle drift benches append
        a second log after the first one ends).
        """
        return EventStore(
            self.times + np.int64(delta),
            self.severities,
            self.facilities,
            self.jobs,
            self.location_ids,
            self.entry_ids,
            self.subcat_ids,
            self._locations,
            self._entries,
            self._subcats,
        )

    def concat(self, other: "EventStore") -> "EventStore":
        """Merge two stores into a new time-sorted store.

        Intern ids of ``other`` are remapped onto this store's tables.
        """
        locations = self._locations.copy()
        entries = self._entries.copy()
        subcats = self._subcats.copy()
        loc_map = np.array(
            [locations.intern(s) for s in other._locations.strings] or [0],
            dtype=np.int32,
        )
        ent_map = np.array(
            [entries.intern(s) for s in other._entries.strings] or [0],
            dtype=np.int32,
        )
        sub_map = np.array(
            [subcats.intern(s) for s in other._subcats.strings] or [0],
            dtype=np.int32,
        )
        other_sub = other.subcat_ids.copy()
        mask = other_sub != UNCLASSIFIED
        remapped_sub = np.full(len(other), UNCLASSIFIED, dtype=np.int32)
        if mask.any():
            remapped_sub[mask] = sub_map[other_sub[mask]]
        merged = EventStore(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.severities, other.severities]),
            np.concatenate([self.facilities, other.facilities]),
            np.concatenate([self.jobs, other.jobs]),
            np.concatenate(
                [self.location_ids, loc_map[other.location_ids] if len(other) else other.location_ids]
            ),
            np.concatenate(
                [self.entry_ids, ent_map[other.entry_ids] if len(other) else other.entry_ids]
            ),
            np.concatenate([self.subcat_ids, remapped_sub]),
            locations,
            entries,
            subcats,
        )
        return merged.sorted_by_time()

    # ------------------------------------------------------------------ #
    # Masks and summaries
    # ------------------------------------------------------------------ #

    def fatal_mask(self) -> np.ndarray:
        """Boolean mask of failure records (severity FATAL or FAILURE)."""
        return self.severities >= int(Severity.FATAL)

    def fatal_events(self) -> "EventStore":
        """The failure records only."""
        return self.select(self.fatal_mask())

    def nonfatal_events(self) -> "EventStore":
        """The non-failure records only."""
        return self.select(~self.fatal_mask())

    def severity_counts(self) -> dict[Severity, int]:
        """Record count per severity level."""
        counts = np.bincount(self.severities, minlength=len(Severity))
        return {sev: int(counts[int(sev)]) for sev in Severity}

    def subcat_counts(self) -> dict[str, int]:
        """Record count per subcategory (unclassified rows are skipped)."""
        mask = self.subcat_ids != UNCLASSIFIED
        if not mask.any():
            return {}
        counts = np.bincount(self.subcat_ids[mask], minlength=len(self._subcats))
        return {
            self._subcats[i]: int(c) for i, c in enumerate(counts) if c > 0
        }

    def span_seconds(self) -> int:
        """Duration covered by the store (0 for fewer than 2 events)."""
        if len(self) < 2:
            return 0
        return int(self.times[-1] - self.times[0])

    def with_subcat_ids(
        self, subcat_ids: np.ndarray, subcat_names: Sequence[str]
    ) -> "EventStore":
        """Return a copy with the subcategory column replaced.

        Used by the taxonomy classifier, which computes labels for all rows
        in one vectorized pass.
        """
        ids = np.asarray(subcat_ids, dtype=np.int32)
        if ids.shape != (len(self),):
            raise ValueError(
                f"subcat_ids has shape {ids.shape}, expected ({len(self)},)"
            )
        return EventStore(
            self.times,
            self.severities,
            self.facilities,
            self.jobs,
            self.location_ids,
            self.entry_ids,
            ids,
            self._locations,
            self._entries,
            _InternTable(list(subcat_names)),
        )
