"""Out-of-core columnar storage: append-only segment files + mmap reads.

The on-disk format is deliberately primitive — pure NumPy + ``mmap``, no
third-party dependency — following the chunked-carray idiom (append in
segments, flush explicitly, memory-map on read):

Layout under a store directory::

    manifest.json            # atomic commit point (os.replace)
    columns/times.bin        # raw little-endian int64, append-only
    columns/severities.bin   # ... one file per schema column
    tables/locations.json    # interned strings, index = id
    tables/entries.json
    tables/subcats.json

The **manifest** is the single source of truth: it records the committed row
count, per-column dtype, the append-segment history, and whether the time
column is globally sorted.  Writers append raw bytes to the column files
*first* and replace the manifest *last*, so a crash mid-append leaves
trailing uncommitted bytes that readers simply never map (``rows`` in the
manifest governs the mapped length).  A missing or corrupt manifest reads as
"no store here" — the same corruption-as-absence discipline as
:class:`~repro.lifecycle.registry.ModelRegistry`.

Reads are **zero-copy**: :func:`open_store` memory-maps each column file
read-only, so a 100M-event log costs address space, not RSS, and
``time_window``/``iter_chunks`` slices are views into the map.  The OS pages
event data in and out on demand — the fixed-memory-budget guarantee the
columnar benchmark asserts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Optional, Union

import numpy as np

from repro.ras.backend import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    TABLE_NAMES,
    InternTable,
)
from repro.ras.events import RasEvent
from repro.ras.store import UNCLASSIFIED, EventStore

#: Manifest schema version.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
COLUMNS_DIR = "columns"
TABLES_DIR = "tables"

#: Default rows per chunk for streaming readers/writers (~8 MiB of columns).
DEFAULT_CHUNK_EVENTS = 262_144


class StoreDirError(ValueError):
    """The directory is not a readable columnar store."""


def _manifest_path(root: Union[str, Path]) -> Path:
    return Path(root) / MANIFEST_NAME


def is_columnar_dir(path: Union[str, Path]) -> bool:
    """True if ``path`` looks like a columnar store (manifest present)."""
    return _manifest_path(path).is_file()


def _load_manifest(root: Path) -> Optional[dict[str, Any]]:
    """The committed manifest, or ``None`` when absent/corrupt."""
    try:
        with open(_manifest_path(root), encoding="utf-8") as fh:
            doc = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        return None
    if not isinstance(doc.get("rows"), int) or doc["rows"] < 0:
        return None
    columns = doc.get("columns")
    if not isinstance(columns, dict) or set(columns) != set(COLUMN_NAMES):
        return None
    return doc


def _write_manifest(root: Path, doc: dict[str, Any]) -> None:
    tmp = _manifest_path(root).with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, _manifest_path(root))


def _write_table(root: Path, name: str, strings: list[str]) -> None:
    path = root / TABLES_DIR / f"{name}.json"
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(strings, fh)
        fh.write("\n")
    os.replace(tmp, path)


class ColumnarWriter:
    """Append-only writer for a columnar store directory.

    Chunks are appended with :meth:`append` (an :class:`EventStore` slice;
    intern ids are remapped onto the writer's growing tables exactly as
    :meth:`EventStore.concat` would) or :meth:`append_events` (raw event
    objects, the live-ingestion path).  Every append is durably committed:
    column bytes are flushed before the manifest is atomically replaced, so
    readers always observe a consistent prefix.

    ``resume=True`` reopens an existing store for further appends; a missing
    or corrupt manifest is treated as absence and the directory is
    (re)initialized empty.  The writer tracks whether appended times are
    globally non-decreasing; :func:`open_store` sorts unsorted stores on
    open (materializing them), so bulk writers should append in time order.
    """

    def __init__(
        self, path: Union[str, Path], *, resume: bool = False
    ) -> None:
        self.root = Path(path)
        (self.root / COLUMNS_DIR).mkdir(parents=True, exist_ok=True)
        (self.root / TABLES_DIR).mkdir(parents=True, exist_ok=True)
        self.rows = 0
        self.segments: list[int] = []
        self._sorted = True
        self._last_time: Optional[int] = None
        self._tables = {name: InternTable() for name in TABLE_NAMES}
        self._closed = False

        manifest = _load_manifest(self.root) if resume else None
        if manifest is not None:
            self.rows = int(manifest["rows"])
            self.segments = [int(s["rows"]) for s in manifest.get("segments", [])]
            self._sorted = bool(manifest.get("sorted", False))
            last = manifest.get("last_time")
            self._last_time = int(last) if last is not None else None
            for name in TABLE_NAMES:
                self._tables[name] = InternTable(_read_table(self.root, name))

        self._files = {}
        for name in COLUMN_NAMES:
            fpath = self.root / COLUMNS_DIR / f"{name}.bin"
            fh = open(fpath, "ab")
            # Drop uncommitted bytes past the manifest's row count (crash
            # leftovers) — or everything, when starting fresh.
            fh.truncate(self.rows * COLUMN_DTYPES[name].itemsize)
            self._files[name] = fh
        if manifest is None:
            self._commit()  # initialize an empty, openable store

    # ------------------------------------------------------------------ #

    def _remap(self, store: EventStore, table: str, ids: np.ndarray) -> np.ndarray:
        strings = store.table(table).strings
        mapping = np.array(
            [self._tables[table].intern(s) for s in strings] or [0],
            dtype=np.int32,
        )
        if table == "subcats":
            out = np.full(len(ids), UNCLASSIFIED, dtype=np.int32)
            mask = ids != UNCLASSIFIED
            if mask.any():
                out[mask] = mapping[ids[mask]]
            return out
        if len(ids) == 0:
            return np.asarray(ids, dtype=np.int32)
        return mapping[ids]

    def _note_times(self, times: np.ndarray) -> None:
        if len(times) == 0:
            return
        if self._sorted:
            if self._last_time is not None and int(times[0]) < self._last_time:
                self._sorted = False
            elif len(times) > 1 and bool(np.any(np.diff(times) < 0)):
                self._sorted = False
        self._last_time = int(times[-1])

    def _append_columns(self, columns: dict[str, np.ndarray]) -> int:
        n = len(columns["times"])
        self._note_times(columns["times"])
        for name in COLUMN_NAMES:
            arr = np.ascontiguousarray(columns[name], dtype=COLUMN_DTYPES[name])
            self._files[name].write(arr.tobytes())
        self.rows += n
        self.segments.append(n)
        self._commit()
        return n

    def append(self, store: EventStore) -> int:
        """Append a store chunk; returns the number of rows written."""
        if self._closed:
            raise StoreDirError("writer is closed")
        if len(store) == 0:
            return 0
        return self._append_columns(
            {
                "times": store.times,
                "severities": store.severities,
                "facilities": store.facilities,
                "jobs": store.jobs,
                "location_ids": self._remap(store, "locations", store.location_ids),
                "entry_ids": self._remap(store, "entries", store.entry_ids),
                "subcat_ids": self._remap(store, "subcats", store.subcat_ids),
            }
        )

    def append_events(self, events: Iterable[RasEvent]) -> int:
        """Append raw event objects in arrival order (live-ingestion path).

        No sorting happens here — the daemon's wire order is the record of
        arrival; the manifest's ``sorted`` flag reflects reality and
        :func:`open_store` re-sorts when needed.
        """
        if self._closed:
            raise StoreDirError("writer is closed")
        events = list(events)
        n = len(events)
        if n == 0:
            return 0
        columns = {
            name: np.empty(n, dtype=COLUMN_DTYPES[name]) for name in COLUMN_NAMES
        }
        locations = self._tables["locations"]
        entries = self._tables["entries"]
        subcats = self._tables["subcats"]
        for i, ev in enumerate(events):
            columns["times"][i] = ev.time
            columns["severities"][i] = int(ev.severity)
            columns["facilities"][i] = int(ev.facility)
            columns["jobs"][i] = ev.job_id
            columns["location_ids"][i] = locations.intern(ev.location)
            columns["entry_ids"][i] = entries.intern(ev.entry_data)
            columns["subcat_ids"][i] = (
                UNCLASSIFIED if ev.subcategory is None else subcats.intern(ev.subcategory)
            )
        return self._append_columns(columns)

    # ------------------------------------------------------------------ #

    def _commit(self) -> None:
        """Flush column bytes, persist tables, then atomically publish."""
        for fh in self._files.values():
            fh.flush()
            os.fsync(fh.fileno())
        for name in TABLE_NAMES:
            _write_table(self.root, name, self._tables[name].strings)
        _write_manifest(
            self.root,
            {
                "version": FORMAT_VERSION,
                "rows": self.rows,
                "sorted": self._sorted,
                "last_time": self._last_time,
                "columns": {
                    name: {"dtype": COLUMN_DTYPES[name].str}
                    for name in COLUMN_NAMES
                },
                "segments": [{"rows": int(n)} for n in self.segments],
                "tables": {
                    name: {"entries": len(self._tables[name])}
                    for name in TABLE_NAMES
                },
            },
        )

    def close(self) -> Path:
        """Commit and release file handles; returns the store directory."""
        if not self._closed:
            self._commit()
            for fh in self._files.values():
                fh.close()
            self._closed = True
        return self.root

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_table(root: Path, name: str) -> list[str]:
    path = root / TABLES_DIR / f"{name}.json"
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError, ValueError):
        return []
    if not isinstance(doc, list):
        return []
    return [str(s) for s in doc]


class ColumnarBackend:
    """Read-only memory-mapped view of a committed columnar store."""

    __slots__ = ("root", "_rows", "_sorted", "_segments", "_columns", "_tables")

    def __init__(self, path: Union[str, Path]) -> None:
        self.root = Path(path)
        manifest = _load_manifest(self.root)
        if manifest is None:
            raise StoreDirError(
                f"{self.root} has no readable columnar manifest "
                f"({MANIFEST_NAME} missing or corrupt)"
            )
        self._rows = int(manifest["rows"])
        self._sorted = bool(manifest.get("sorted", False))
        self._segments = [int(s["rows"]) for s in manifest.get("segments", [])]
        self._columns: dict[str, np.ndarray] = {}
        for name in COLUMN_NAMES:
            declared = manifest["columns"].get(name, {}).get("dtype")
            dtype = np.dtype(declared) if declared else COLUMN_DTYPES[name]
            fpath = self.root / COLUMNS_DIR / f"{name}.bin"
            needed = self._rows * dtype.itemsize
            try:
                actual = os.path.getsize(fpath)
            except OSError as exc:
                raise StoreDirError(f"{fpath} unreadable: {exc}") from exc
            if actual < needed:
                raise StoreDirError(
                    f"{fpath} holds {actual} bytes but the manifest commits "
                    f"{self._rows} rows ({needed} bytes)"
                )
            if self._rows == 0:
                self._columns[name] = np.empty(0, dtype=dtype)
            else:
                self._columns[name] = np.memmap(
                    fpath, dtype=dtype, mode="r", shape=(self._rows,)
                )
        self._tables = {
            name: InternTable(_read_table(self.root, name))
            for name in TABLE_NAMES
        }

    def __len__(self) -> int:
        return self._rows

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def table(self, name: str) -> InternTable:
        return self._tables[name]

    @property
    def kind(self) -> str:
        return "columnar"

    @property
    def storage_path(self) -> Optional[str]:
        return str(self.root)

    @property
    def time_sorted(self) -> bool:
        return self._sorted

    @property
    def segments(self) -> list[int]:
        return list(self._segments)

    def disk_bytes(self) -> int:
        """Total committed bytes across column files (manifest rows only)."""
        return sum(
            self._rows * COLUMN_DTYPES[name].itemsize for name in COLUMN_NAMES
        )

    # Whole-store pickling ships the *path*, not the bytes: a worker process
    # re-opens its own memory map (see docs/parallel.md).
    def __reduce__(self) -> tuple[Any, tuple[str]]:
        return (ColumnarBackend, (str(self.root),))


def open_store(path: Union[str, Path]) -> EventStore:
    """Open a columnar store directory as an :class:`EventStore`.

    Sorted stores (the bulk-write path) come back memory-mapped and
    zero-copy.  Unsorted stores (live-ingestion order) are sorted on open,
    which materializes the columns in RAM — re-compact with
    :func:`write_store` to restore out-of-core reads.
    """
    backend = ColumnarBackend(path)
    store = EventStore.from_backend(backend)
    if not backend.time_sorted:
        store = store.sorted_by_time()
    return store


def write_store(
    store: EventStore,
    path: Union[str, Path],
    *,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Path:
    """Write any store to ``path`` as a columnar store, chunk by chunk."""
    with ColumnarWriter(path) as writer:
        for chunk in store.iter_chunks(chunk_events):
            writer.append(chunk)
    return Path(path)
