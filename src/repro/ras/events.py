"""The per-record RAS event object.

:class:`RasEvent` carries exactly the attributes the paper's Table 2 lists:
event type, event time, job id, location, entry data (the free-text
description), facility and severity.  We add ``subcategory``, filled in by the
Phase-1 categorizer (``repro.taxonomy``), because every later phase keys on
it.

For bulk processing the columnar :class:`repro.ras.store.EventStore` is
preferred; ``RasEvent`` is the boundary type used at API edges, in the log
reader/writer and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ras.fields import Facility, Severity

#: Job id used for records not attributable to a user job (hardware and
#: service events carry no job in production logs).
NO_JOB: int = -1


@dataclass(frozen=True, slots=True)
class RasEvent:
    """A single RAS record (one line of the log, paper Table 2).

    Attributes
    ----------
    time:
        Event time as integer epoch seconds.  CMCS detects events at
        sub-millisecond granularity but records times at second granularity,
        which is why duplicate records share identical timestamps.
    location:
        Where the event occurred — a hierarchical location code such as
        ``R12-M0-N04-C32`` (rack, midplane, node card, compute chip).  See
        :mod:`repro.bgl.locations`.
    facility:
        The service/hardware component that reported the event.
    severity:
        Ordinal severity; ``FATAL``/``FAILURE`` are the prediction targets.
    entry_data:
        Short free-text description of the event.
    job_id:
        The job that detected the event, or :data:`NO_JOB`.
    event_type:
        The mechanism through which the event was recorded — ``"RAS"`` for
        everything CMCS collects.
    subcategory:
        Taxonomy label assigned during Phase-1 categorization (one of the 101
        subcategories), or ``None`` before classification.
    """

    time: int
    location: str
    facility: Facility
    severity: Severity
    entry_data: str
    job_id: int = NO_JOB
    event_type: str = "RAS"
    subcategory: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if not self.location:
            raise ValueError("location must be non-empty")

    @property
    def is_fatal(self) -> bool:
        """True if this record is a failure (severity FATAL or FAILURE)."""
        return self.severity.is_fatal

    def with_subcategory(self, subcategory: str) -> "RasEvent":
        """Return a copy labeled with a taxonomy subcategory."""
        return replace(self, subcategory=subcategory)

    def with_time(self, time: int) -> "RasEvent":
        """Return a copy at a different timestamp (used by compressors)."""
        return replace(self, time=time)

    def dedup_key_temporal(self) -> tuple[int, str]:
        """Key for temporal compression: identical JOB_ID and LOCATION.

        Records sharing this key within the compression threshold are
        duplicates produced by the same polling agent re-reporting one fault.
        """
        return (self.job_id, self.location)

    def dedup_key_spatial(self) -> tuple[int, str]:
        """Key for spatial compression: identical JOB_ID and ENTRY_DATA.

        Records sharing this key within the threshold but at *different*
        locations are the same fault reported by every chip of the job's
        partition.
        """
        return (self.job_id, self.entry_data)
