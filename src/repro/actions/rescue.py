"""Failure-aware job rescue simulation (absorbed from ``repro.evaluation``).

The paper's introduction cites fault-aware scheduling (its [25], Oliner et
al.) and adaptive fault tolerance (its [20], Li & Lan) as the consumers of
failure prediction.  :mod:`repro.actions.costmodel` prices prediction in
the abstract; this module replays the concrete machine: the generated
:class:`~repro.bgl.jobs.JobTrace` against the failures and warnings, at
node-second granularity.

Accounting (standard in the proactive-FT literature):

- A fatal event localized to a midplane kills the job occupying it.
- **Reactive** operation (no prediction): the job loses all work since its
  start — ``(t_fail - start) * nodes``.
- **Prediction-driven** operation: each *predicted failure* triggers one
  checkpoint of all running jobs (completed ``checkpoint_cost`` seconds
  after the warning's issue) — overlapping warnings matching the same
  fatal are deduped to the earliest one first (see
  :func:`dedupe_by_matched_fatal`); a killed job restarts from its most
  recent completed checkpoint, and every checkpoint costs its job
  ``checkpoint_cost * nodes`` of overhead.

The interesting output is the *rescue ratio*: how much of the reactively
lost work prediction recovers, net of checkpoint overhead — the end-to-end
number the paper's motivation appeals to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bgl.jobs import IDLE, JobTrace
from repro.bgl.locations import LocationKind
from repro.evaluation.spatial import _ancestor_at
from repro.predictors.base import FailureWarning
from repro.ras.store import EventStore
from repro.util.validation import check_positive

#: Compute nodes per midplane on the systems modeled here.
NODES_PER_MIDPLANE = 512


@dataclass(frozen=True)
class RescueOutcome:
    """Node-second accounting of one replay."""

    #: Work lost with no prediction (restart from job start).
    reactive_loss: float
    #: Work lost with prediction-driven checkpoints (excl. overhead).
    proactive_loss: float
    #: Checkpoint overhead paid (deduped warnings x running jobs).
    checkpoint_overhead: float
    #: Jobs killed by a localized failure.
    jobs_hit: int
    #: Killed jobs that had a completed proactive checkpoint to restart from.
    jobs_with_checkpoint: int

    @property
    def proactive_total(self) -> float:
        return self.proactive_loss + self.checkpoint_overhead

    @property
    def rescued(self) -> float:
        """Net node-seconds saved by prediction (can be negative)."""
        return self.reactive_loss - self.proactive_total

    @property
    def rescue_ratio(self) -> float:
        """Fraction of reactive loss recovered (0 when nothing was lost)."""
        if self.reactive_loss == 0:
            return 0.0
        return self.rescued / self.reactive_loss


def dedupe_by_matched_fatal(
    warnings: Sequence[FailureWarning],
    fatal_times: np.ndarray,
) -> list[FailureWarning]:
    """Keep the earliest warning per matched fatal (plus all false alarms).

    Overlapping warnings whose horizons contain the same failure describe
    *one* predicted event; charging a checkpoint per warning double-counts
    exactly the redundant alarms stream merging tends to emit.  A warning
    is keyed by the first fatal inside its horizon; unmatched warnings
    (false alarms) are all kept — they each waste a real checkpoint.
    """
    times = np.sort(np.asarray(fatal_times, dtype=np.int64))
    ordered = sorted(warnings, key=lambda w: (w.issued_at, -w.confidence))
    kept: list[FailureWarning] = []
    claimed: set[int] = set()
    for w in ordered:
        lo = int(np.searchsorted(times, int(w.horizon_start), side="left"))
        hi = int(np.searchsorted(times, int(w.horizon_end), side="right"))
        if lo >= hi:
            kept.append(w)  # false alarm: pays its own checkpoint
            continue
        if lo in claimed:
            continue  # a prior warning already covers this failure
        claimed.add(lo)
        kept.append(w)
    return kept


def _fatal_midplane_hits(
    events: EventStore, trace: JobTrace
) -> list[tuple[int, int, int]]:
    """(time, midplane_index, job_id) per localized job-killing failure."""
    fatal = events.fatal_events()
    midplane_index = {
        loc: i for i, loc in enumerate(trace.machine.midplane_locations)
    }
    loc_mid = [
        _ancestor_at(loc, LocationKind.MIDPLANE)
        for loc in fatal.location_table
    ]
    hits: list[tuple[int, int, int]] = []
    for i in range(len(fatal)):
        mloc = loc_mid[int(fatal.location_ids[i])]
        if mloc is None:
            continue  # system-wide records don't kill a specific job
        m = midplane_index.get(mloc)
        if m is None:
            continue
        t = int(fatal.times[i])
        jid = trace.job_at(m, t)
        if jid != IDLE:
            hits.append((t, m, jid))
    return hits


def simulate_rescue(
    trace: JobTrace,
    events: EventStore,
    warnings: Sequence[FailureWarning],
    checkpoint_cost: float = 120.0,
) -> RescueOutcome:
    """Replay failures and warnings against the job schedule.

    Warnings are machine-wide (the paper's predictor does not localize);
    each deduped warning triggers one checkpoint per job running when the
    checkpoint completes.  A job hit more than once only counts its first
    kill (after that it would rerun, which the trace does not model).
    """
    check_positive(checkpoint_cost, "checkpoint_cost")
    hits = _fatal_midplane_hits(events, trace)
    fatal_times = events.fatal_events().times.astype(np.int64)
    deduped = dedupe_by_matched_fatal(warnings, fatal_times)
    ckpt_done = np.array(
        sorted(int(w.issued_at + checkpoint_cost) for w in deduped),
        dtype=np.int64,
    )

    reactive = 0.0
    proactive = 0.0
    jobs_hit = 0
    jobs_with_ckpt = 0
    killed: set[int] = set()
    for t, _m, jid in hits:
        if jid in killed:
            continue
        killed.add(jid)
        job = trace.job(jid)
        width = len(job.midplane_indices) * NODES_PER_MIDPLANE
        jobs_hit += 1
        reactive += (t - job.start) * width
        # Most recent completed checkpoint within the job's lifetime.
        k = int(np.searchsorted(ckpt_done, t, side="right")) - 1
        restart_from = job.start
        while k >= 0:
            if ckpt_done[k] >= job.start:
                restart_from = int(ckpt_done[k])
                jobs_with_ckpt += 1
            break
        proactive += (t - restart_from) * width

    # Overhead: every completed checkpoint costs each then-running job
    # checkpoint_cost * its width.
    overhead = 0.0
    for done in ckpt_done:
        for m in range(len(trace.machine.midplane_locations)):
            jid = trace.job_at(m, int(done))
            if jid != IDLE:
                # Count once per job: attribute via its first midplane.
                job = trace.job(jid)
                if job.midplane_indices[0] == m:
                    overhead += checkpoint_cost * len(
                        job.midplane_indices
                    ) * NODES_PER_MIDPLANE
    return RescueOutcome(
        reactive_loss=float(reactive),
        proactive_loss=float(proactive),
        checkpoint_overhead=float(overhead),
        jobs_hit=jobs_hit,
        jobs_with_checkpoint=jobs_with_ckpt,
    )
