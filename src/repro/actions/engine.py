"""The prediction-to-action engine: decide, schedule, settle.

:class:`ActionEngine` folds an event stream plus the warnings a serving
stack raised over it into a :class:`~repro.actions.ledger.Ledger`.  It is
deliberately a *deterministic* fold: the same events and warnings in the
same order produce a byte-identical ledger whether fed as one store
(``serve-replay``) or chunk by chunk (the daemon) — the engine buffers
each warning until the first event strictly later than its issue time
arrives, so decision points and tie order never depend on chunk
boundaries.

Per absorbed event, in canonical order:

1. decide buffered warnings issued strictly before the event, oldest
   first (ties by confidence, source, detail);
2. expire open actions whose deadline has passed (``false_alarm``);
3. absorb the event into the job view and the hot-midplane tracker;
4. if the event is fatal and lands on an occupied midplane, settle the
   kill: a completed migration or quarantine dodges it, else the latest
   completed checkpoint bounds the rollback, and sibling actions on the
   same job settle ``redundant``/``late``.

The engine is seedable (``ctx.rng``) for stochastic policies; the seed is
recorded in the ledger so persisted state can only resume like-for-like.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.actions.cost import Action, CostModel
from repro.actions.jobview import JobView, StreamJobView
from repro.actions.ledger import Ledger, LedgerEntry, LedgerTracker
from repro.actions.policy import Policy, PolicyContext
from repro.obs import get_registry
from repro.predictors.base import FailureWarning
from repro.ras.store import EventStore
from repro.util.rng import as_generator

#: Fallback horizon for localizing risk: fatals older than this no longer
#: mark a midplane "hot".  Risk topology, not a price, so not in CostModel.
DEFAULT_HOT_WINDOW_SECONDS = 21_600.0


class _OpenAction:
    __slots__ = ("action", "seq")

    def __init__(self, action: Action, seq: int) -> None:
        self.action = action
        self.seq = seq


def _warning_order(w: FailureWarning) -> Tuple[int, float, str, str]:
    return (w.issued_at, -w.confidence, w.source, w.detail)


class ActionEngine:
    """Schedules actions for warnings and settles them against outcomes.

    Parameters
    ----------
    policy:
        The decision rule (see :mod:`repro.actions.policy`).
    cost:
        The price book shared by policies and settlements.
    view:
        Job-allocation provider; defaults to a fresh
        :class:`~repro.actions.jobview.StreamJobView` inferred from the
        events themselves.
    seed:
        Seeds ``ctx.rng`` for stochastic policies and is stamped into the
        ledger; the bundled policies are deterministic regardless.
    ledger:
        Optional pre-populated ledger (daemon restart: counters restored
        from ``--state`` resume in place).
    """

    def __init__(
        self,
        policy: Policy,
        cost: Optional[CostModel] = None,
        *,
        view: Optional[JobView] = None,
        seed: int = 0,
        hot_window_seconds: float = DEFAULT_HOT_WINDOW_SECONDS,
        ledger: Optional[Ledger] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.policy = policy
        self.cost = cost if cost is not None else CostModel()
        self.view: JobView = view if view is not None else StreamJobView()
        self.rng = as_generator(seed)
        self.hot_window = hot_window_seconds
        self.ledger = ledger if ledger is not None else Ledger()
        self.ledger.policy = policy.name
        self.ledger.seed = seed
        self._labels = dict(labels) if labels else {}
        #: Windowed settlement economics, PrecisionTracker-style: after a
        #: drift-triggered retrain the windowed net climbs back above zero
        #: while the cumulative ledger still remembers the bad stretch.
        self.tracker = LedgerTracker()
        self._pending: List[FailureWarning] = []
        self._open: List[_OpenAction] = []
        self._seq = 0
        self._ckpt_marks: Dict[int, int] = {}
        self._killed: set[int] = set()
        self._fatal_history: Deque[Tuple[float, int]] = deque()
        get_registry().gauge(
            "actions.engine", 1.0, policy=policy.name, **self._labels
        )

    # ------------------------------------------------------------- #
    # ActionSink surface (what serve's StreamChannel calls)
    # ------------------------------------------------------------- #

    def observe_store(
        self, store: EventStore, warnings: List[FailureWarning]
    ) -> None:
        """Absorb one chunk of events and the warnings raised over it."""
        self._pending.extend(warnings)
        times = store.times
        jobs = store.jobs
        loc_ids = store.location_ids
        loc_table = store.location_table
        fatal = store.fatal_mask()
        for i in range(len(times)):
            t = int(times[i])
            self._decide_before(t)
            self._expire_before(t)
            location = loc_table[int(loc_ids[i])]
            self.view.observe(t, location, int(jobs[i]))
            if fatal[i]:
                self._on_fatal(t, location)

    def finalize(self) -> Ledger:
        """Decide and settle everything still buffered; return the ledger."""
        self._decide_before(None)
        self._expire_before(None)
        self._publish_gauges()
        return self.ledger

    # ------------------------------------------------------------- #
    # Decisions
    # ------------------------------------------------------------- #

    def _decide_before(self, t: Optional[int]) -> None:
        if not self._pending:
            return
        if t is None:
            due = self._pending
            self._pending = []
        else:
            due = [w for w in self._pending if w.issued_at < t]
            if not due:
                return
            self._pending = [w for w in self._pending if w.issued_at >= t]
        due.sort(key=_warning_order)
        for warning in due:
            self._decide(warning)

    def _quarantined(self) -> frozenset[int]:
        return frozenset(
            o.action.midplane
            for o in self._open
            if o.action.kind == "quarantine"
        )

    def _decide(self, warning: FailureWarning) -> None:
        now = warning.issued_at
        hot_midplane, hot_share = self._hot_midplane(now)
        ctx = PolicyContext(
            warning=warning,
            now=now,
            view=self.view,
            cost=self.cost,
            rng=self.rng,
            hot_midplane=hot_midplane,
            hot_share=hot_share,
            restore_points=self._ckpt_marks,
            quarantined=self._quarantined(),
            dead_jobs=frozenset(self._killed),
        )
        registry = get_registry()
        for action in self.policy.decide(ctx):
            self.ledger.record_taken(action)
            self._open.append(_OpenAction(action, self._seq))
            self._seq += 1
            if action.kind == "checkpoint":
                mark = self._ckpt_marks.get(action.job_id, 0)
                self._ckpt_marks[action.job_id] = max(mark, action.completes_at)
            registry.counter("actions.taken", 1, kind=action.kind, **self._labels)

    def _hot_midplane(self, now: float) -> Tuple[int, float]:
        """(suspect midplane, its share of windowed fatals), or (-1, 0.0)."""
        history = self._fatal_history
        while history and history[0][0] <= now - self.hot_window:
            history.popleft()
        if not history:
            return -1, 0.0
        counts: Dict[int, int] = {}
        for _, mp in history:
            counts[mp] = counts.get(mp, 0) + 1
        # Highest count wins; ties go to the lowest midplane index.
        hot = min(counts, key=lambda mp: (-counts[mp], mp))
        return hot, counts[hot] / len(history)

    # ------------------------------------------------------------- #
    # Settlements
    # ------------------------------------------------------------- #

    def _settle(self, open_action: _OpenAction, outcome: str, settled_at: int,
                saved: float = 0.0) -> None:
        entry = LedgerEntry(
            action=open_action.action,
            outcome=outcome,
            settled_at=settled_at,
            saved=saved,
            lost=open_action.action.cost,
        )
        self.ledger.record_settlement(entry)
        self.tracker.observe(self.ledger)
        registry = get_registry()
        registry.counter("actions.settled", 1, outcome=outcome, **self._labels)
        if saved:
            registry.counter("actions.saved_node_seconds", saved, **self._labels)
        if outcome == "false_alarm":
            registry.counter(
                "actions.false_alarm_cost", entry.lost, **self._labels
            )

    def _expire_before(self, t: Optional[int]) -> None:
        if not self._open:
            return
        if t is None:
            expired = self._open
            self._open = []
        else:
            expired = [o for o in self._open if o.action.deadline < t]
            if not expired:
                return
            self._open = [o for o in self._open if o.action.deadline >= t]
        expired.sort(key=lambda o: (o.action.deadline, o.seq))
        for o in expired:
            self._settle(o, "false_alarm", o.action.deadline)

    def _on_fatal(self, t: int, location: str) -> None:
        mp = self.view.midplane_index(location)
        if mp < 0:
            return
        self._fatal_history.append((float(t), mp))
        occupant = self.view.occupant(mp, t)
        if occupant is None or occupant.job_id in self._killed:
            return
        job = occupant
        self._killed.add(job.job_id)
        self.ledger.record_kill(
            self.cost.reactive_loss(t, job.start, job.width_nodes)
        )
        scoped: List[_OpenAction] = []
        rest: List[_OpenAction] = []
        for o in self._open:
            a = o.action
            if a.job_id == job.job_id or (
                a.kind == "quarantine" and a.midplane == mp
            ):
                scoped.append(o)
            else:
                rest.append(o)
        self._open = rest
        scoped.sort(key=lambda o: o.seq)
        winner = self._claim_winner(scoped, job.start, t)
        for o in scoped:
            a = o.action
            if o is winner:
                if a.kind == "checkpoint":
                    saved = self.cost.checkpoint_saving(
                        a.completes_at, job.start, job.width_nodes
                    )
                else:
                    saved = self.cost.rescue_saving(
                        t, job.start, job.width_nodes
                    )
                self._settle(o, "hit", t, saved=saved)
            elif a.completes_at > t:
                self._settle(o, "late", t)
            else:
                self._settle(o, "redundant", t)
        self._ckpt_marks.pop(job.job_id, None)
        forget = getattr(self.view, "forget", None)
        if forget is not None:
            forget(job.job_id)

    def _claim_winner(
        self, scoped: List[_OpenAction], job_start: float, t: int
    ) -> Optional[_OpenAction]:
        """The one action credited with the save, by remedy strength.

        A completed migration dodged the kill outright; failing that, a
        cordon that predates the job diverted it; failing that, the latest
        completed checkpoint bounds the rollback.
        """
        def complete(o: _OpenAction) -> bool:
            return o.action.completes_at <= t

        migrations = [o for o in scoped if o.action.kind == "migrate" and complete(o)]
        if migrations:
            return min(migrations, key=lambda o: o.seq)
        cordons = [
            o
            for o in scoped
            if o.action.kind == "quarantine"
            and complete(o)
            and job_start > o.action.decided_at
        ]
        if cordons:
            return min(cordons, key=lambda o: o.seq)
        checkpoints = [
            o for o in scoped if o.action.kind == "checkpoint" and complete(o)
        ]
        if checkpoints:
            return max(checkpoints, key=lambda o: (o.action.completes_at, o.seq))
        return None

    # ------------------------------------------------------------- #
    # Observability
    # ------------------------------------------------------------- #

    def _publish_gauges(self) -> None:
        registry = get_registry()
        registry.gauge(
            "actions.net_node_seconds",
            self.ledger.net_node_seconds,
            **self._labels,
        )
        registry.gauge("actions.open", float(len(self._open)), **self._labels)
        registry.gauge(
            "actions.window_net_node_seconds",
            self.tracker.window_net(),
            **self._labels,
        )
        hit_rate = self.tracker.window_hit_rate()
        if hit_rate is not None:
            registry.gauge(
                "actions.window_hit_rate", hit_rate, **self._labels
            )
