"""Cost-aware prediction-to-action engine.

Failure prediction only matters if it drives preventive action.  This
layer turns the serving stack's warning stream into scheduled actions —
checkpoint, migrate, quarantine — under an explicit :class:`CostModel`,
and settles them against ground-truth outcomes into a :class:`Ledger`
denominated in node-seconds, the business metric precision/recall proxies
for.

Entry points:

- :class:`ActionEngine` — the deterministic decide/schedule/settle fold
  over events + warnings (implements serve's ``ActionSink`` protocol);
- :mod:`repro.actions.policy` — the pluggable decision rules, including
  the :class:`CostAwarePolicy` composite that never knowingly loses
  node-seconds;
- :mod:`repro.actions.costmodel` / :mod:`repro.actions.rescue` — the
  legacy abstract cost model and trace-replay rescue simulation, absorbed
  from ``repro.evaluation`` (which still re-exports them for compat).

Note: the legacy checkpoint-system parameter block
(:class:`repro.actions.costmodel.CheckpointPolicy`) stays module-qualified;
the :class:`CheckpointPolicy` exported here is the always-checkpoint
*action policy*.
"""

from repro.actions.cost import ACTION_KINDS, NODES_PER_MIDPLANE, Action, CostModel
from repro.actions.engine import ActionEngine
from repro.actions.jobview import (
    JobView,
    RunningJob,
    StreamJobView,
    TraceJobView,
)
from repro.actions.ledger import (
    OUTCOMES,
    Ledger,
    LedgerEntry,
    LedgerTracker,
)
from repro.actions.policy import (
    POLICY_NAMES,
    CheckpointPolicy,
    CostAwarePolicy,
    MigrationPolicy,
    NeverActPolicy,
    Policy,
    PolicyContext,
    QuarantinePolicy,
    build_policy,
)

__all__ = [
    "ACTION_KINDS",
    "NODES_PER_MIDPLANE",
    "OUTCOMES",
    "POLICY_NAMES",
    "Action",
    "ActionEngine",
    "CheckpointPolicy",
    "CostAwarePolicy",
    "CostModel",
    "JobView",
    "Ledger",
    "LedgerEntry",
    "LedgerTracker",
    "MigrationPolicy",
    "NeverActPolicy",
    "Policy",
    "PolicyContext",
    "QuarantinePolicy",
    "RunningJob",
    "StreamJobView",
    "TraceJobView",
    "build_policy",
]
