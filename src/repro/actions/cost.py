"""The explicit cost model every action price derives from.

Everything downstream of a prediction is an economic decision: a checkpoint
pays ``checkpoint_cost`` seconds of overhead on every node it touches to
bound the work lost to a failure; a migration pays more to avoid the loss
(and the restart) entirely; quarantining a midplane pays an opportunity
cost in idled capacity to divert *future* jobs away from sick hardware.
:class:`CostModel` owns all of those prices and the expected-value
arithmetic over them — lead-time-aware, in node-seconds, so policies and
the ledger agree on one currency.

Every pricing method returns a fully-populated :class:`Action`: the paid
cost, the time the action completes, the deadline after which it can no
longer pay off (the warning's horizon end), and the *expected* value given
the warning's confidence and how much of the horizon the action can still
cover.  The :class:`~repro.actions.ledger.Ledger` later settles the action
against what actually happened; the expected value only ranks candidates.

Cost arithmetic lives here and nowhere else — RL016 rejects direct
arithmetic on cost attributes outside :mod:`repro.actions`, so benchmark
and evaluation code must go through these methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.predictors.base import FailureWarning
from repro.util.validation import check_positive

#: Compute nodes per midplane on the systems modeled here (BG/L: 512).
NODES_PER_MIDPLANE = 512

#: The action kinds the engine knows how to settle.
ACTION_KINDS = ("checkpoint", "migrate", "quarantine")


@dataclass(frozen=True)
class Action:
    """One scheduled preventive action, priced at decision time.

    ``cost`` is node-seconds paid up front regardless of outcome;
    ``expected_value`` is the decision-time estimate the cost-aware policy
    ranks by.  Settlement (hit / false alarm / redundant) happens in the
    :class:`~repro.actions.engine.ActionEngine` against ground truth.
    """

    kind: str              # one of ACTION_KINDS
    decided_at: int        # warning issue time the decision was made at
    completes_at: int      # when the action's protection becomes effective
    deadline: int          # horizon end: past this the action cannot pay off
    job_id: int = -1       # scoped job (checkpoint / migrate), -1 otherwise
    midplane: int = -1     # scoped midplane (migrate origin / quarantine)
    width_nodes: int = 0   # nodes the action touches
    cost: float = 0.0      # node-seconds paid up front
    expected_value: float = 0.0
    confidence: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.completes_at < self.decided_at:
            raise ValueError("completes_at must be >= decided_at")


@dataclass(frozen=True)
class CostModel:
    """Prices of the preventive-action repertoire (seconds per node).

    Attributes
    ----------
    checkpoint_cost:
        Seconds to write one checkpoint; the job stalls for the duration.
    migration_cost:
        Seconds to migrate a job off a midplane (drain + restore elsewhere).
    restart_cost:
        Seconds to restart a failed job — avoided entirely by a successful
        migration or quarantine diversion, paid after any kill otherwise.
    quarantine_drain:
        Fraction of a cordoned midplane's capacity counted as the
        quarantine's opportunity cost over the cordon window.
    quarantine_occupancy:
        Expected fraction of a cordon window a diverted job would have run —
        the optimism knob in the quarantine expected value.
    work_cap_seconds:
        Cap on claimable work-at-risk per job: checkpointing cannot save
        more than this much history (models periodic safety-net restarts).
    hazard_decay_fraction:
        Time constant of the front-loaded kill prior, as a fraction of the
        horizon width.  Failures cluster just after their precursors, so
        the hazard inside a warning horizon is not uniform: the survival
        term decays with scale ``fraction * width`` past ``horizon_start``.
    front_load_weight:
        Mixture weight of the front-loaded component vs a uniform tail in
        :meth:`coverage` (1.0 = pure exponential, 0.0 = pure uniform).
    """

    checkpoint_cost: float = 120.0
    migration_cost: float = 180.0
    restart_cost: float = 300.0
    quarantine_drain: float = 0.10
    quarantine_occupancy: float = 0.5
    work_cap_seconds: float = 86_400.0
    hazard_decay_fraction: float = 0.03
    front_load_weight: float = 0.9

    def __post_init__(self) -> None:
        check_positive(self.checkpoint_cost, "checkpoint_cost")
        check_positive(self.migration_cost, "migration_cost")
        check_positive(self.restart_cost, "restart_cost")
        check_positive(self.work_cap_seconds, "work_cap_seconds")
        check_positive(self.hazard_decay_fraction, "hazard_decay_fraction")
        if not 0.0 <= self.quarantine_drain <= 1.0:
            raise ValueError("quarantine_drain must be in [0, 1]")
        if not 0.0 <= self.quarantine_occupancy <= 1.0:
            raise ValueError("quarantine_occupancy must be in [0, 1]")
        if not 0.0 <= self.front_load_weight <= 1.0:
            raise ValueError("front_load_weight must be in [0, 1]")

    # ------------------------------------------------------------- #
    # Lead-time geometry
    # ------------------------------------------------------------- #

    def hazard_scale(self, warning: FailureWarning) -> float:
        """Decay scale (seconds) of the kill prior inside one horizon."""
        width = max(warning.horizon_end - warning.horizon_start, 0)
        return self.hazard_decay_fraction * width

    def coverage(self, completes_at: float, warning: FailureWarning) -> float:
        """P(the predicted failure has not struck before the action is ready).

        An action ready before ``horizon_start`` protects the whole horizon
        (1.0); one ready only after ``horizon_end`` protects nothing (0.0).
        In between, the survival probability of a front-loaded kill prior —
        a ``front_load_weight`` mixture of an exponential with scale
        :meth:`hazard_scale` and a uniform tail — because failures land
        disproportionately early in their warning horizon.  This is the
        lead-time term of every expected value.
        """
        if completes_at <= warning.horizon_start:
            return 1.0
        if completes_at > warning.horizon_end:
            return 0.0
        width = warning.horizon_end - warning.horizon_start
        if width <= 0:
            return 0.0
        elapsed = completes_at - warning.horizon_start
        tail = (warning.horizon_end - completes_at) / width
        front = math.exp(-elapsed / self.hazard_scale(warning))
        return self.front_load_weight * front + (1.0 - self.front_load_weight) * tail

    def expected_kill_time(
        self, completes_at: float, warning: FailureWarning
    ) -> float:
        """E[kill time | the kill lands after the action completes]."""
        effective = max(completes_at, warning.horizon_start)
        return min(
            effective + self.hazard_scale(warning), float(warning.horizon_end)
        )

    def capped_work(self, seconds: float) -> float:
        """Claimable work-at-risk: non-negative and capped."""
        return min(max(seconds, 0.0), self.work_cap_seconds)

    # ------------------------------------------------------------- #
    # Pricing: one method per action kind
    # ------------------------------------------------------------- #

    def price_checkpoint(
        self,
        warning: FailureWarning,
        *,
        job_id: int,
        width_nodes: int,
        restore_point: float,
        attribution: float = 1.0,
    ) -> Action:
        """Price checkpointing one job against this warning.

        The job stalls ``checkpoint_cost`` seconds on ``width_nodes``
        nodes; if the predicted failure lands after the checkpoint
        completes, the rollback shrinks from (kill time − restore point)
        to (kill time − checkpoint) — the expected value claims the work
        accumulated since the current restore point, scaled by confidence,
        horizon coverage, and ``attribution`` — P(the one predicted
        failure lands on *this* job's hardware), typically the job's share
        of the occupied machine.
        """
        now = warning.issued_at
        completes_at = int(now + self.checkpoint_cost)
        cost = self.checkpoint_cost * width_nodes
        at_risk = self.capped_work(completes_at - restore_point)
        expected = (
            warning.confidence
            * self.coverage(completes_at, warning)
            * attribution
            * at_risk
            * width_nodes
            - cost
        )
        return Action(
            kind="checkpoint",
            decided_at=now,
            completes_at=completes_at,
            deadline=warning.horizon_end,
            job_id=job_id,
            width_nodes=width_nodes,
            cost=cost,
            expected_value=expected,
            confidence=warning.confidence,
            source=warning.source,
        )

    def price_migration(
        self,
        warning: FailureWarning,
        *,
        job_id: int,
        midplane: int,
        width_nodes: int,
        job_start: float,
        locality: float,
    ) -> Action:
        """Price migrating one job off a suspect midplane.

        A completed migration dodges the kill entirely: the job keeps all
        work since its start *and* skips the restart.  ``locality`` is the
        probability the machine-wide warning localizes to this job's
        midplane — the discount that keeps blanket migration unprofitable.
        """
        now = warning.issued_at
        completes_at = int(now + self.migration_cost)
        cost = self.migration_cost * width_nodes
        t_hat = self.expected_kill_time(completes_at, warning)
        saved_if_hit = self.capped_work(t_hat - job_start) + self.restart_cost
        expected = (
            warning.confidence
            * self.coverage(completes_at, warning)
            * locality
            * saved_if_hit
            * width_nodes
            - cost
        )
        return Action(
            kind="migrate",
            decided_at=now,
            completes_at=completes_at,
            deadline=warning.horizon_end,
            job_id=job_id,
            midplane=midplane,
            width_nodes=width_nodes,
            cost=cost,
            expected_value=expected,
            confidence=warning.confidence,
            source=warning.source,
        )

    def price_quarantine(
        self, warning: FailureWarning, *, midplane: int, locality: float = 1.0
    ) -> Action:
        """Price cordoning one midplane for the warning horizon.

        The cordon idles ``quarantine_drain`` of the midplane's capacity
        until the horizon closes; it pays off when the failure lands there
        and a job that would otherwise have been scheduled onto the sick
        midplane was diverted (credited at settlement only for jobs that
        started after the cordon began).  ``locality`` is the probability
        the machine-wide warning's failure lands on *this* midplane.
        """
        now = warning.issued_at
        nodes = NODES_PER_MIDPLANE
        window = max(warning.horizon_end - now, 0)
        cost = self.quarantine_drain * nodes * window
        # A diverted job has only been running since the cordon went up, so
        # the claimable work is the hazard scale, not half the horizon.
        saved_if_hit = (
            self.capped_work(self.hazard_scale(warning)) + self.restart_cost
        )
        expected = (
            warning.confidence
            * locality
            * self.quarantine_occupancy
            * saved_if_hit
            * nodes
            - cost
        )
        return Action(
            kind="quarantine",
            decided_at=now,
            completes_at=now,  # a cordon is effective immediately
            deadline=warning.horizon_end,
            midplane=midplane,
            width_nodes=nodes,
            cost=cost,
            expected_value=expected,
            confidence=warning.confidence,
            source=warning.source,
        )

    # ------------------------------------------------------------- #
    # Settlement values (the ledger's side of the same arithmetic)
    # ------------------------------------------------------------- #

    def checkpoint_saving(
        self, completes_at: float, job_start: float, width_nodes: int
    ) -> float:
        """Gross node-seconds a completed checkpoint saves at a kill."""
        return self.capped_work(completes_at - job_start) * width_nodes

    def rescue_saving(
        self, kill_time: float, job_start: float, width_nodes: int
    ) -> float:
        """Gross node-seconds a dodged kill saves (migration/quarantine)."""
        return (
            self.capped_work(kill_time - job_start) + self.restart_cost
        ) * width_nodes

    def reactive_loss(
        self, kill_time: float, job_start: float, width_nodes: int
    ) -> float:
        """Node-seconds a kill costs with no prediction (context metric)."""
        return self.capped_work(kill_time - job_start) * width_nodes
