"""Settlement ledger: what the actions actually bought.

Every :class:`~repro.actions.cost.Action` the engine schedules eventually
settles against ground truth into a :class:`LedgerEntry` — ``hit`` when
the predicted failure arrived and the action paid off, ``false_alarm``
when the deadline passed with no failure, ``redundant`` when a sibling
action already claimed the kill, ``late`` when the failure landed before
the action completed.  The :class:`Ledger` accumulates entries and the
aggregate node-second counters the benchmarks and obs gauges report.

The ledger is a pure fold over the settlement sequence: entries are kept
in settlement order and :meth:`Ledger.digest` hashes a canonical JSON
encoding, so two engines that settle the same actions in the same order
produce byte-identical digests — the bit-identity gate between
``serve-replay`` and the daemon drain rests on this.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.actions.cost import ACTION_KINDS, Action

#: Terminal states an action can settle into.
OUTCOMES = ("hit", "false_alarm", "redundant", "late")


@dataclass(frozen=True)
class LedgerEntry:
    """One settled action with its realized economics (node-seconds)."""

    action: Action
    outcome: str           # one of OUTCOMES
    settled_at: int
    saved: float = 0.0     # gross node-seconds the action saved
    lost: float = 0.0      # node-seconds paid (cost, or wasted overhead)

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r}")

    @property
    def net(self) -> float:
        return self.saved - self.lost

    def to_dict(self) -> Dict[str, Any]:
        a = self.action
        return {
            "kind": a.kind,
            "decided_at": a.decided_at,
            "completes_at": a.completes_at,
            "deadline": a.deadline,
            "job_id": a.job_id,
            "midplane": a.midplane,
            "width_nodes": a.width_nodes,
            "cost": a.cost,
            "expected_value": a.expected_value,
            "confidence": a.confidence,
            "source": a.source,
            "outcome": self.outcome,
            "settled_at": self.settled_at,
            "saved": self.saved,
            "lost": self.lost,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LedgerEntry":
        action = Action(
            kind=str(doc["kind"]),
            decided_at=int(doc["decided_at"]),
            completes_at=int(doc["completes_at"]),
            deadline=int(doc["deadline"]),
            job_id=int(doc["job_id"]),
            midplane=int(doc["midplane"]),
            width_nodes=int(doc["width_nodes"]),
            cost=float(doc["cost"]),
            expected_value=float(doc["expected_value"]),
            confidence=float(doc["confidence"]),
            source=str(doc["source"]),
        )
        return cls(
            action=action,
            outcome=str(doc["outcome"]),
            settled_at=int(doc["settled_at"]),
            saved=float(doc["saved"]),
            lost=float(doc["lost"]),
        )


@dataclass
class Ledger:
    """Accumulated settlements plus the aggregate counters derived from them.

    ``seed`` records the engine's RNG seed so a persisted ledger can only
    be resumed by an identically-seeded engine; ``reactive_loss`` tracks
    what the same kills would have cost with no prediction at all (the
    baseline every policy is judged against).
    """

    policy: str = ""
    seed: int = 0
    entries: List[LedgerEntry] = field(default_factory=list)
    taken: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    saved_node_seconds: float = 0.0
    cost_node_seconds: float = 0.0
    false_alarm_cost: float = 0.0
    reactive_loss: float = 0.0
    jobs_hit: int = 0

    def record_taken(self, action: Action) -> None:
        self.taken[action.kind] = self.taken.get(action.kind, 0) + 1
        self.cost_node_seconds += action.cost

    def record_settlement(self, entry: LedgerEntry) -> None:
        self.entries.append(entry)
        self.outcomes[entry.outcome] = self.outcomes.get(entry.outcome, 0) + 1
        self.saved_node_seconds += entry.saved
        if entry.outcome == "false_alarm":
            self.false_alarm_cost += entry.lost

    def record_kill(self, loss: float) -> None:
        self.reactive_loss += loss
        self.jobs_hit += 1

    @property
    def settled(self) -> int:
        return len(self.entries)

    @property
    def net_node_seconds(self) -> float:
        """Realized savings minus everything paid for actions."""
        return self.saved_node_seconds - self.cost_node_seconds

    def to_dict(self, *, include_entries: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "policy": self.policy,
            "seed": self.seed,
            "taken": {k: self.taken[k] for k in sorted(self.taken)},
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "saved_node_seconds": self.saved_node_seconds,
            "cost_node_seconds": self.cost_node_seconds,
            "false_alarm_cost": self.false_alarm_cost,
            "reactive_loss": self.reactive_loss,
            "jobs_hit": self.jobs_hit,
            "settled": self.settled,
            "net_node_seconds": self.net_node_seconds,
        }
        if include_entries:
            doc["entries"] = [e.to_dict() for e in self.entries]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Ledger":
        ledger = cls(
            policy=str(doc.get("policy", "")),
            seed=int(doc.get("seed", 0)),
            taken={str(k): int(v) for k, v in doc.get("taken", {}).items()},
            outcomes={
                str(k): int(v) for k, v in doc.get("outcomes", {}).items()
            },
            saved_node_seconds=float(doc.get("saved_node_seconds", 0.0)),
            cost_node_seconds=float(doc.get("cost_node_seconds", 0.0)),
            false_alarm_cost=float(doc.get("false_alarm_cost", 0.0)),
            reactive_loss=float(doc.get("reactive_loss", 0.0)),
            jobs_hit=int(doc.get("jobs_hit", 0)),
        )
        ledger.entries = [
            LedgerEntry.from_dict(e) for e in doc.get("entries", [])
        ]
        return ledger

    def digest(self) -> str:
        """SHA-256 over the canonical JSON encoding (entries included)."""
        blob = json.dumps(
            self.to_dict(include_entries=True), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def merge(self, other: "Ledger") -> "Ledger":
        """Fold another ledger's counters and entries into this one."""
        for kind in ACTION_KINDS:
            if kind in other.taken:
                self.taken[kind] = self.taken.get(kind, 0) + other.taken[kind]
        for outcome, n in other.outcomes.items():
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + n
        self.entries.extend(other.entries)
        self.saved_node_seconds += other.saved_node_seconds
        self.cost_node_seconds += other.cost_node_seconds
        self.false_alarm_cost += other.false_alarm_cost
        self.reactive_loss += other.reactive_loss
        self.jobs_hit += other.jobs_hit
        return self


class LedgerTracker:
    """Windowed view of recent settlements, PrecisionTracker-style.

    :meth:`observe` diffs the ledger's cumulative counters against the
    last observation and pushes one sample per newly settled action into
    a bounded window.  ``window_net()`` and ``window_hit_rate()`` then
    expose *recent* economics — a drift-triggered retrain shows up as the
    windowed net climbing back above zero while the cumulative ledger
    still remembers the bad stretch.
    """

    def __init__(self, window: int = 64) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._settled_seen = 0
        self._samples: Deque[tuple[float, bool]] = deque(maxlen=window)

    def observe(self, ledger: Ledger) -> int:
        """Absorb settlements since the last call; return how many."""
        new = ledger.entries[self._settled_seen :]
        for entry in new:
            self._samples.append((entry.net, entry.outcome == "hit"))
        self._settled_seen = len(ledger.entries)
        return len(new)

    def window_net(self) -> float:
        return sum(net for net, _ in self._samples)

    def window_hit_rate(self) -> Optional[float]:
        if not self._samples:
            return None
        hits = sum(1 for _, hit in self._samples if hit)
        return hits / len(self._samples)
