"""What the engine knows about the job allocation when it must decide.

Policies need to answer "which jobs run where, since when, how wide?" at
warning time.  Two providers implement the same :class:`JobView` protocol:

- :class:`TraceJobView` wraps a :class:`repro.bgl.jobs.JobTrace` — the
  exact schedule, available in replay/benchmark settings where the
  workload was simulated;
- :class:`StreamJobView` infers the allocation from the event stream
  itself (each RAS record carries the reporting job id and a location),
  which is all a live daemon ever sees.

Both are deterministic functions of their inputs: the stream view assigns
dense midplane indices in first-seen order and tracks job liveness with a
last-seen TTL, so feeding the same events in the same order — whole store
or chunk by chunk — reconstructs byte-identical state.  That invariance is
what lets the daemon's ledger match the one-shot replay ledger bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from repro.bgl.jobs import IDLE, JobTrace
from repro.serve.sharding import midplane_of

#: Default liveness window for stream-inferred jobs: a job with no event
#: for this long is presumed finished.  Mirrors the taxonomy's cluster gap
#: scale rather than any checkpoint price, hence not part of CostModel.
DEFAULT_JOB_TTL_SECONDS = 4 * 3600.0


@dataclass(frozen=True)
class RunningJob:
    """A job the view believes is running at the queried instant."""

    job_id: int
    start: int
    midplanes: tuple[int, ...]
    width_nodes: int


class JobView(Protocol):
    """The allocation queries policies and the engine rely on."""

    def running(self, now: float) -> List[RunningJob]:
        """Jobs running at ``now``, sorted by job id."""
        ...

    def occupant(self, midplane: int, now: float) -> Optional[RunningJob]:
        """The job occupying a midplane at ``now``, if any."""
        ...

    def midplane_index(self, location: str) -> int:
        """Dense index for an event location's midplane (-1 if unmappable)."""
        ...

    def n_midplanes(self) -> int:
        """Number of midplanes the view knows about (>= 1 once populated)."""
        ...

    def observe(self, time: float, location: str, job_id: int) -> None:
        """Absorb one event observation (no-op for exact-trace views)."""
        ...


class TraceJobView:
    """Exact allocation from a simulated :class:`JobTrace`."""

    def __init__(self, trace: JobTrace, *, nodes_per_midplane: int = 512) -> None:
        self._trace = trace
        self._nodes = nodes_per_midplane
        self._mp_index: Dict[str, int] = {
            midplane_of(loc): i
            for i, loc in enumerate(trace.machine.midplane_locations)
        }

    def running(self, now: float) -> List[RunningJob]:
        out: List[RunningJob] = []
        for job in self._trace.jobs:
            if job.start <= now < job.end:
                out.append(
                    RunningJob(
                        job_id=job.job_id,
                        start=job.start,
                        midplanes=job.midplane_indices,
                        width_nodes=self._nodes * len(job.midplane_indices),
                    )
                )
        out.sort(key=lambda j: j.job_id)
        return out

    def occupant(self, midplane: int, now: float) -> Optional[RunningJob]:
        if not 0 <= midplane < len(self._trace.machine.midplane_locations):
            return None
        jid = self._trace.job_at(midplane, now)
        if jid == IDLE:
            return None
        job = self._trace.job(jid)
        return RunningJob(
            job_id=job.job_id,
            start=job.start,
            midplanes=job.midplane_indices,
            width_nodes=self._nodes * len(job.midplane_indices),
        )

    def midplane_index(self, location: str) -> int:
        return self._mp_index.get(midplane_of(location), -1)

    def n_midplanes(self) -> int:
        return len(self._trace.machine.midplane_locations)

    def observe(self, time: float, location: str, job_id: int) -> None:
        return None  # the trace already knows everything


class _SeenJob:
    __slots__ = ("job_id", "first_seen", "last_seen", "midplanes")

    def __init__(self, job_id: int, time: float, midplane: int) -> None:
        self.job_id = job_id
        self.first_seen = time
        self.last_seen = time
        self.midplanes: set[int] = {midplane} if midplane >= 0 else set()


class StreamJobView:
    """Allocation inferred from the RAS stream's (time, location, job) triples.

    A job is first seen at its earliest event, widens to every midplane it
    reports from, and is presumed finished ``ttl_seconds`` after its last
    event.  Midplane strings get dense indices in first-seen stream order —
    deterministic for a fixed event order, chunked or not.
    """

    def __init__(
        self,
        *,
        ttl_seconds: float = DEFAULT_JOB_TTL_SECONDS,
        nodes_per_midplane: int = 512,
    ) -> None:
        self._ttl = ttl_seconds
        self._nodes = nodes_per_midplane
        self._mp_index: Dict[str, int] = {}
        self._jobs: Dict[int, _SeenJob] = {}

    def observe(self, time: float, location: str, job_id: int) -> None:
        mp = self.midplane_index(location) if location else -1
        if job_id < 0:
            return
        seen = self._jobs.get(job_id)
        if seen is None:
            self._jobs[job_id] = _SeenJob(job_id, time, mp)
            return
        seen.last_seen = max(seen.last_seen, time)
        if mp >= 0:
            seen.midplanes.add(mp)

    def midplane_index(self, location: str) -> int:
        if not location:
            return -1
        key = midplane_of(location)
        idx = self._mp_index.get(key)
        if idx is None:
            idx = len(self._mp_index)
            self._mp_index[key] = idx
        return idx

    def n_midplanes(self) -> int:
        return max(len(self._mp_index), 1)

    def _as_running(self, seen: _SeenJob) -> RunningJob:
        width = self._nodes * max(len(seen.midplanes), 1)
        return RunningJob(
            job_id=seen.job_id,
            start=int(seen.first_seen),
            midplanes=tuple(sorted(seen.midplanes)),
            width_nodes=width,
        )

    def running(self, now: float) -> List[RunningJob]:
        out = [
            self._as_running(seen)
            for seen in self._jobs.values()
            if seen.first_seen <= now <= seen.last_seen + self._ttl
        ]
        out.sort(key=lambda j: j.job_id)
        return out

    def occupant(self, midplane: int, now: float) -> Optional[RunningJob]:
        best: Optional[_SeenJob] = None
        for seen in self._jobs.values():
            if midplane not in seen.midplanes:
                continue
            if not seen.first_seen <= now <= seen.last_seen + self._ttl:
                continue
            if best is None or seen.job_id < best.job_id:
                best = seen
        return self._as_running(best) if best is not None else None

    def forget(self, job_id: int) -> None:
        """Drop a job the engine knows was killed (frees occupancy)."""
        self._jobs.pop(job_id, None)
