"""Pluggable prediction-to-action policies.

A :class:`Policy` turns one resolved warning plus the engine's view of the
world (:class:`PolicyContext`) into zero or more priced
:class:`~repro.actions.cost.Action` records.  The single-minded policies
(:class:`CheckpointPolicy`, :class:`MigrationPolicy`,
:class:`QuarantinePolicy`) each apply their one remedy unconditionally —
they exist as baselines and building blocks.  :class:`CostAwarePolicy`
prices the whole repertoire for every warning and takes the single best
action only when its expected value is positive; it never knowingly loses
node-seconds, which is the property the seeded tests pin down.

Policies are pure functions of the context: any randomness must come from
``ctx.rng`` (seeded by the engine), never ambient state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Protocol

import numpy as np

from repro.actions.cost import Action, CostModel
from repro.actions.jobview import JobView, RunningJob
from repro.predictors.base import FailureWarning

#: CLI-facing policy names, in help order.
POLICY_NAMES = ("cost-aware", "checkpoint", "migrate", "quarantine", "never")


@dataclass
class PolicyContext:
    """Everything a policy may consult when deciding on one warning.

    ``hot_midplane`` is the engine's current suspect (-1 when no fatal
    history localizes the risk) and ``hot_share`` the fraction of windowed
    fatals that landed there; ``restore_points`` maps job ids to the
    completion time of their latest scheduled checkpoint; ``quarantined``
    holds midplanes with a cordon still open; ``dead_jobs`` holds jobs the
    engine has already settled a kill for — their work is gone, so no
    further action on them can pay off.
    """

    warning: FailureWarning
    now: int
    view: JobView
    cost: CostModel
    rng: np.random.Generator
    hot_midplane: int = -1
    hot_share: float = 0.0
    restore_points: Dict[int, int] = field(default_factory=dict)
    quarantined: FrozenSet[int] = frozenset()
    dead_jobs: FrozenSet[int] = frozenset()

    def restore_point(self, job: RunningJob) -> float:
        """Rollback point for a job: its latest checkpoint, else its start."""
        mark = self.restore_points.get(job.job_id)
        return float(mark) if mark is not None else float(job.start)


class Policy(Protocol):
    """Maps a warning (in context) to the actions to schedule."""

    name: str

    def decide(self, ctx: PolicyContext) -> List[Action]:
        ...


class NeverActPolicy:
    """Ignore every warning — the reactive baseline the others must beat."""

    name = "never"

    def decide(self, ctx: PolicyContext) -> List[Action]:
        return []


class CheckpointPolicy:
    """Checkpoint every running job on every warning.

    Deliberately naive: it is the always-checkpoint baseline the
    cost-aware composite must beat, and the building block it prices.
    Each checkpoint's expected value is attributed by the job's share of
    the occupied machine — the warning predicts one failure somewhere,
    not one per job.
    """

    name = "checkpoint"

    def decide(self, ctx: PolicyContext) -> List[Action]:
        running = ctx.view.running(ctx.now)
        total_nodes = sum(j.width_nodes for j in running)
        out: List[Action] = []
        for job in running:
            out.append(
                ctx.cost.price_checkpoint(
                    ctx.warning,
                    job_id=job.job_id,
                    width_nodes=job.width_nodes,
                    restore_point=ctx.restore_point(job),
                    attribution=job.width_nodes / total_nodes,
                )
            )
        return out


class MigrationPolicy:
    """Migrate the hot midplane's occupant away on every warning.

    Requires genuinely localized risk: moving a job only pays off when
    the origin midplane is likelier to take the fatal than the
    destination, so the locality term is the *differential* fatal
    concentration — hot share minus the per-midplane share of the rest —
    and the policy stands down when the history is uniform.
    """

    name = "migrate"

    def decide(self, ctx: PolicyContext) -> List[Action]:
        if ctx.hot_midplane < 0:
            return []
        job = ctx.view.occupant(ctx.hot_midplane, ctx.now)
        if job is None:
            return []
        n = ctx.view.n_midplanes()
        if n <= 1:
            return []
        locality = ctx.hot_share - (1.0 - ctx.hot_share) / (n - 1)
        if locality <= 0.0:
            return []
        return [
            ctx.cost.price_migration(
                ctx.warning,
                job_id=job.job_id,
                midplane=ctx.hot_midplane,
                width_nodes=job.width_nodes,
                job_start=job.start,
                locality=locality,
            )
        ]


class QuarantinePolicy:
    """Cordon the hot midplane for the warning horizon (one cordon at a time)."""

    name = "quarantine"

    def decide(self, ctx: PolicyContext) -> List[Action]:
        if ctx.hot_midplane < 0 or ctx.hot_midplane in ctx.quarantined:
            return []
        return [
            ctx.cost.price_quarantine(
                ctx.warning,
                midplane=ctx.hot_midplane,
                locality=ctx.hot_share,
            )
        ]


class CostAwarePolicy:
    """Price the whole repertoire; keep the best positive-EV action per scope.

    Candidates per warning: a checkpoint for each running job, a migration
    of the hot midplane's occupant, and a cordon of the hot midplane.  The
    composite then selects per *scope* — for each threatened job the single
    cheapest-effective remedy (checkpoint vs migration), plus a cordon when
    it is independently profitable — because one warning can put several
    jobs at risk and protecting only the best one forfeits the rest.
    Anything with a non-positive expected value is discarded — the policy
    never schedules an action it expects to lose node-seconds on — as is
    any action scoped to a job the engine already settled a kill for
    (``ctx.dead_jobs``): its work is already lost, so protecting it buys
    nothing.  Ties break deterministically by (expected value, lower
    cost, kind name, job id) so replays are reproducible.
    """

    name = "cost-aware"

    def __init__(self) -> None:
        self._checkpoint = CheckpointPolicy()
        self._migrate = MigrationPolicy()
        self._quarantine = QuarantinePolicy()

    def candidates(self, ctx: PolicyContext) -> List[Action]:
        """All priced candidates, profitable or not (for introspection)."""
        out: List[Action] = []
        out.extend(self._checkpoint.decide(ctx))
        out.extend(self._migrate.decide(ctx))
        out.extend(self._quarantine.decide(ctx))
        return out

    @staticmethod
    def _rank(a: Action) -> tuple:
        return (a.expected_value, -a.cost, a.kind, -a.job_id)

    def decide(self, ctx: PolicyContext) -> List[Action]:
        best: Dict[tuple, Action] = {}
        for a in self.candidates(ctx):
            if a.expected_value <= 0.0:
                continue
            if a.kind != "quarantine" and a.job_id in ctx.dead_jobs:
                continue
            key = (
                ("mp", a.midplane) if a.kind == "quarantine"
                else ("job", a.job_id)
            )
            cur = best.get(key)
            if cur is None or self._rank(a) > self._rank(cur):
                best[key] = a
        return sorted(
            best.values(), key=lambda a: (a.kind, a.job_id, a.midplane)
        )


def build_policy(name: str) -> Policy:
    """Instantiate a policy by its CLI name."""
    table: Dict[str, Policy] = {
        "cost-aware": CostAwarePolicy(),
        "checkpoint": CheckpointPolicy(),
        "migrate": MigrationPolicy(),
        "quarantine": QuarantinePolicy(),
        "never": NeverActPolicy(),
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {', '.join(POLICY_NAMES)}"
        ) from None
