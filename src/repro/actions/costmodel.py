"""Proactive fault-tolerance cost model (absorbed from ``repro.evaluation``).

The paper's introduction motivates failure prediction with checkpointing,
job migration and failure-aware scheduling (its reference [20] — Li & Lan,
"Exploit Failure Prediction for Adaptive Fault-Tolerance in Cluster
Computing" — develops exactly this use).  This module closes the loop: given
a predictor's measured recall, precision and lead-time distribution, how
much computation does prediction-driven checkpointing actually save?

Model (standard in the proactive-FT literature):

- Without prediction, the application checkpoints every ``interval`` seconds
  (cost ``checkpoint_cost`` each) and loses on average half an interval of
  work per failure, plus the restart cost.
- With prediction, each *predicted failure* triggers one proactive
  checkpoint — overlapping warnings that match the same fatal are deduped
  to a single action (the system would not re-checkpoint for a repeat of
  the same alarm).  A failure whose earliest warning lead is at least
  ``checkpoint_cost`` (the action fits in the notice) loses only the work
  since that proactive checkpoint instead of half a periodic interval;
  missed failures and failures with insufficient lead behave as in the
  baseline.  False alarms cost one checkpoint each.

``savings`` returns the difference in expected lost node-seconds over the
evaluated period — positive when prediction helps.  The model deliberately
ignores second-order effects (checkpoint contention, migration targets); it
ranks predictors, which is all the paper's argument needs.

Note the name collision: :class:`CheckpointPolicy` here is the legacy
*checkpoint-system parameter block*, distinct from the action policy
:class:`repro.actions.policy.CheckpointPolicy`.  This module keeps the
legacy name module-qualified only; the ``repro.actions`` facade exports
the action policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.matching import MatchResult
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CheckpointPolicy:
    """Parameters of the checkpoint/restart system.

    Attributes
    ----------
    interval:
        Periodic checkpoint interval, seconds (baseline policy).
    checkpoint_cost:
        Wall-clock cost of taking one checkpoint, seconds.
    restart_cost:
        Fixed restart/recovery cost per failure, seconds.
    """

    interval: float = 3600.0
    checkpoint_cost: float = 300.0
    restart_cost: float = 600.0

    def __post_init__(self) -> None:
        check_positive(self.interval, "interval")
        check_positive(self.checkpoint_cost, "checkpoint_cost")
        check_positive(self.restart_cost, "restart_cost")
        if self.checkpoint_cost >= self.interval:
            raise ValueError("checkpoint_cost must be below the interval")


@dataclass(frozen=True)
class CostReport:
    """Expected costs (seconds of lost computation) over the period."""

    #: Baseline: periodic checkpoints + rollback losses.
    baseline_cost: float
    #: With prediction: proactive checkpoints + reduced rollback losses.
    predicted_cost: float
    #: Failures whose warning lead allowed a proactive checkpoint.
    actionable_failures: int
    #: Failures missed or warned too late (behave as baseline).
    unactionable_failures: int
    #: Warnings that cost a checkpoint without any failure.
    false_alarm_checkpoints: int

    @property
    def saving(self) -> float:
        """Positive when prediction reduces expected lost time."""
        return self.baseline_cost - self.predicted_cost

    @property
    def saving_fraction(self) -> float:
        if self.baseline_cost == 0:
            return 0.0
        return self.saving / self.baseline_cost


def proactive_checkpoint_count(match: MatchResult) -> int:
    """True-warning checkpoints charged: one per *distinct* matched fatal.

    Overlapping warnings that match the same failure trigger one proactive
    checkpoint, not one each — the historical per-warning charge double-
    counted exactly the redundant alarms the merge step is prone to emit.
    Falls back to the per-warning count on hand-built results that carry
    no ``warning_fatal`` mapping.
    """
    wf = match.warning_fatal
    if wf is None:
        return int(match.metrics.tp_warnings)
    matched = wf[wf >= 0]
    return int(np.unique(matched).size)


def evaluate_policy(
    match: MatchResult,
    policy: CheckpointPolicy,
    period_seconds: float,
) -> CostReport:
    """Score a prediction run under a checkpoint policy.

    Parameters
    ----------
    match:
        Output of :func:`repro.evaluation.matching.match_warnings` for the
        evaluated period.
    period_seconds:
        Length of the evaluated period (sets the periodic-checkpoint count).
    """
    check_positive(period_seconds, "period_seconds")
    n_failures = int(match.metrics.n_fatals)
    leads = match.lead_seconds

    # Baseline: periodic checkpoints plus mean rollback of interval/2 and
    # the restart cost per failure.
    n_periodic = period_seconds / policy.interval
    rollback = policy.interval / 2.0
    baseline = (
        n_periodic * policy.checkpoint_cost
        + n_failures * (rollback + policy.restart_cost)
    )

    # Prediction: a failure is actionable when its earliest warning precedes
    # it by at least the checkpoint cost — the proactive checkpoint
    # completes in time, and the rollback shrinks to the residual lead
    # beyond the checkpoint (bounded by the periodic rollback).
    covered = ~np.isnan(leads)
    actionable_mask = covered & (leads >= policy.checkpoint_cost)
    actionable = int(actionable_mask.sum())
    unactionable = n_failures - actionable

    residual = np.minimum(
        leads[actionable_mask] - policy.checkpoint_cost, rollback
    )
    false_alarms = int(match.metrics.fp_warnings)
    predicted = (
        n_periodic * policy.checkpoint_cost  # periodic safety net retained
        + float(residual.sum())
        + actionable * policy.restart_cost
        + unactionable * (rollback + policy.restart_cost)
        + (proactive_checkpoint_count(match) + false_alarms)
        * policy.checkpoint_cost
    )
    return CostReport(
        baseline_cost=float(baseline),
        predicted_cost=float(predicted),
        actionable_failures=actionable,
        unactionable_failures=unactionable,
        false_alarm_checkpoints=false_alarms,
    )


def breakeven_precision(
    policy: CheckpointPolicy, mean_lead: float
) -> float:
    """Precision below which warnings cost more than they save (rough).

    A true warning on an actionable failure saves about
    ``interval/2 - max(0, mean_lead - checkpoint_cost residual)`` ~
    ``interval/2`` seconds; every warning costs one checkpoint.  Prediction
    pays when  P * saving > checkpoint_cost, i.e.
    ``P > checkpoint_cost / (interval/2)`` for leads that fit the action.
    Returns 1.0 when the mean lead cannot fit a checkpoint at all.
    """
    if mean_lead < policy.checkpoint_cost:
        return 1.0
    saving_per_tp = policy.interval / 2.0
    return min(1.0, policy.checkpoint_cost / saving_per_tp)
