"""Coverage-based stacked generalization (paper §3.3).

The meta-learner "adaptively integrates the statistical based method and the
rule based method": on the testing set it observes the events inside the
trailing observation window and

1. if there are non-fatal events, applies the rule-based method (a warning is
   raised when a rule's body is fully observed);
2. if no non-fatal event is observed, applies the statistical method to the
   fatal history (a warning is raised when a trigger-category failure is
   reported after an earlier trigger — an isolated first failure is the
   potential *start* of a pattern, not evidence of one);
3. if both non-fatal and fatal events are present, uses the base method whose
   candidate prediction carries the higher confidence.

The dispatch logic lives in :class:`MetaStream`, a strictly forward,
event-at-a-time state machine: :meth:`MetaLearner.predict` drives it over a
store, and :class:`repro.online.detector.OnlineDetector` drives it from a
live feed — by construction both produce identical warnings, which is the
paper's online-deployability claim made testable.  Cost per event is O(rules
containing the arriving item), "about the same as the rule-based method".
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.mining.rules import Rule, RuleMatcher, RuleSet
from repro.obs import get_registry
from repro.predictors.base import FailureWarning, Predictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.store import EventStore
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import MINUTE
from repro.util.validation import check_positive


class MetaStream:
    """Forward-only dispatch state machine of the meta-learner.

    Holds exactly the state an online daemon needs: the rule matcher over
    the trailing prediction window, the last hour of fatal history (the
    paper: an online engine "will require maintaining the history of all the
    events for the duration of 1 hour after a failure has been reported"),
    and the active-warning tables used for deduplication.

    Events must be fed in non-decreasing time order; :meth:`step` returns
    the warnings raised by that event (usually none).
    """

    def __init__(
        self,
        ruleset: RuleSet,
        statistical: StatisticalPredictor,
        prediction_window: float,
        source: str = "meta",
    ) -> None:
        self.ruleset = ruleset
        self.statistical = statistical
        self.w = int(prediction_window)
        self.source = source
        self.stat_lo = max(int(statistical.lead), 1)
        self.stat_hi = int(statistical.window)
        self.trigger_set = set(statistical.trigger_categories)
        self.dispatch_counts = {"rule": 0, "statistical": 0}

        self._matcher = RuleMatcher(ruleset)
        self._window_events: deque[tuple[int, int]] = deque()  # non-fatal
        self._fatal_history: deque[int] = deque()
        self._trigger_history: deque[int] = deque()
        self._rule_active_until: dict[frozenset[int], int] = {}
        self._stat_active_until: dict[str, int] = {}
        self._stat_conf_until: list[tuple[int, float]] = []
        self._last_time: Optional[int] = None

    # -- internals ------------------------------------------------------ #

    def _best_satisfied(self) -> Optional[Rule]:
        # Kept incrementally by the matcher (lazy satisfied-index heap)
        # instead of rescanning every rule per arrival.
        return self._matcher.best_satisfied()

    def _active_stat_conf(self, t: int) -> float:
        """Max confidence among statistical warnings covering ``t``."""
        return max(
            (c for end, c in self._stat_conf_until if t <= end), default=0.0
        )

    def _emit_rule(self, t: int, rule: Rule) -> Optional[FailureWarning]:
        end = self._rule_active_until.get(rule.body)
        if end is not None and t <= end:
            return None
        warning = FailureWarning(
            issued_at=t,
            horizon_start=t + 1,
            horizon_end=t + self.w,
            confidence=rule.confidence,
            source=self.source,
            detail="rule: " + rule.format(self.ruleset.item_names),
        )
        self._rule_active_until[rule.body] = warning.horizon_end
        self.dispatch_counts["rule"] += 1
        return warning

    def _emit_stat(
        self, t: int, category: MainCategory, conf: float
    ) -> Optional[FailureWarning]:
        # One active statistical warning per trigger category: within a
        # failure burst the first trigger's horizon already covers the
        # cluster, so re-warning on every member would only add duplicates.
        end = self._stat_active_until.get(category.value)
        if end is not None and t <= end:
            return None
        warning = FailureWarning(
            issued_at=t,
            horizon_start=t + self.stat_lo,
            horizon_end=t + self.stat_hi,
            confidence=conf,
            source=self.source,
            detail=f"statistical: {category.value}",
        )
        self._stat_active_until[category.value] = warning.horizon_end
        self._stat_conf_until.append((warning.horizon_end, conf))
        if len(self._stat_conf_until) > 8:
            del self._stat_conf_until[0]
        self.dispatch_counts["statistical"] += 1
        return warning

    def _advance(self, t: int) -> None:
        while self._window_events and self._window_events[0][0] < t - self.w:
            _, old_item = self._window_events.popleft()
            self._matcher.remove(old_item)
        while self._fatal_history and self._fatal_history[0] < t - self.stat_hi:
            self._fatal_history.popleft()
        while (
            self._trigger_history
            and self._trigger_history[0] < t - self.stat_hi
        ):
            self._trigger_history.popleft()

    # -- public --------------------------------------------------------- #

    def step(
        self,
        t: int,
        subcat_id: int,
        is_fatal: bool,
        category: MainCategory,
    ) -> list[FailureWarning]:
        """Process one event; returns the warnings it raised (0 or 1)."""
        t = int(t)
        if self._last_time is not None and t < self._last_time:
            raise ValueError(
                f"events must arrive in time order ({t} < {self._last_time})"
            )
        self._last_time = t
        self._advance(t)
        out: list[FailureWarning] = []

        if not is_fatal:
            self._window_events.append((t, subcat_id))
            completed = self._matcher.add(subcat_id)
            if completed:
                best = self._best_satisfied()
                if best is not None:
                    if self._fatal_history:
                        # Case 3 at a non-fatal arrival: defer to the
                        # statistical method only if one of its warnings is
                        # actually active and more confident.
                        if best.confidence >= self._active_stat_conf(t):
                            w = self._emit_rule(t, best)
                            if w:
                                out.append(w)
                    else:
                        # Case 1: only non-fatal context.
                        w = self._emit_rule(t, best)
                        if w:
                            out.append(w)
            return out

        # Fatal event: the statistical method's trigger point.
        stat_conf = self.statistical.candidate_confidence(category)
        if stat_conf is not None and not self._trigger_history:
            # The learned pattern is "trigger-category failure, then more
            # failures"; a trigger with no trigger-category history is the
            # potential *start* of a pattern, not evidence of one.
            stat_conf = None
        nonfatal_present = self._matcher.has_observed()
        best = self._best_satisfied() if nonfatal_present else None
        if stat_conf is not None:
            if not nonfatal_present:
                # Case 2: only fatal context -> statistical method.
                w = self._emit_stat(t, category, stat_conf)
                if w:
                    out.append(w)
            else:
                # Case 3: both present -> higher confidence wins.  The rule
                # side's candidate is the best currently satisfied rule; if
                # it wins, its warning is already active (or is (re)issued
                # here), so the statistical warning is suppressed.
                rule_conf = best.confidence if best is not None else 0.0
                if stat_conf > rule_conf:
                    w = self._emit_stat(t, category, stat_conf)
                    if w:
                        out.append(w)
                elif best is not None:
                    w = self._emit_rule(t, best)
                    if w:
                        out.append(w)
        elif best is not None:
            # Case 1 with a fatal of a non-trigger category: the rule method
            # covers what the statistical method cannot.
            w = self._emit_rule(t, best)
            if w:
                out.append(w)
        self._fatal_history.append(t)
        if category in self.trigger_set:
            self._trigger_history.append(t)
        return out

    def step_batch(
        self,
        times: np.ndarray,
        subcat_ids: np.ndarray,
        fatal_mask: np.ndarray,
        categories: Sequence[MainCategory],
    ) -> list[FailureWarning]:
        """Process a column batch of events; returns all warnings raised.

        The batched fast path of :meth:`step`: semantically identical (the
        equivalence suite in ``tests/serve`` enforces element-for-element
        equality with the per-event path), but per-event dispatch overhead is
        amortized across the batch — the columns are bulk-converted to Python
        scalars once, every attribute/method lookup is hoisted out of the
        loop, and the statistical candidate-confidence table is precomputed.

        ``categories`` is the label-indexed category table: entry ``i`` is
        the :class:`MainCategory` of subcategory id ``i`` (only consulted for
        fatal arrivals).  Time-order validation happens once, vectorized,
        instead of per event.
        """
        times = np.asarray(times, dtype=np.int64)
        n = len(times)
        if n == 0:
            return []
        late = np.flatnonzero(np.diff(times) < 0) if n > 1 else np.empty(0)
        if late.size:
            i = int(late[0]) + 1
            raise ValueError(
                f"events must arrive in time order "
                f"({int(times[i])} < {int(times[i - 1])})"
            )
        if self._last_time is not None and int(times[0]) < self._last_time:
            raise ValueError(
                f"events must arrive in time order "
                f"({int(times[0])} < {self._last_time})"
            )
        t_list = times.tolist()
        sc_list = np.asarray(subcat_ids).tolist()
        fatal_list = np.asarray(fatal_mask, dtype=bool).tolist()

        out: list[FailureWarning] = []
        out_append = out.append
        w = self.w
        stat_hi = self.stat_hi
        trigger_set = self.trigger_set
        matcher = self._matcher
        matcher_add = matcher.add
        matcher_remove = matcher.remove
        best_satisfied = matcher.best_satisfied
        has_observed = matcher.has_observed
        window_events = self._window_events
        win_append = window_events.append
        win_popleft = window_events.popleft
        fatal_history = self._fatal_history
        fatal_append = fatal_history.append
        fatal_popleft = fatal_history.popleft
        trigger_history = self._trigger_history
        trigger_append = trigger_history.append
        trigger_popleft = trigger_history.popleft
        stat_conf_until = self._stat_conf_until  # mutated in place, never rebound
        stat_conf_map = self.statistical.candidate_confidence_map()
        emit_rule = self._emit_rule
        emit_stat = self._emit_stat

        for t, sc, is_fatal in zip(t_list, sc_list, fatal_list):
            # _advance, inlined.
            cutoff = t - w
            while window_events and window_events[0][0] < cutoff:
                matcher_remove(win_popleft()[1])
            cutoff = t - stat_hi
            while fatal_history and fatal_history[0] < cutoff:
                fatal_popleft()
            while trigger_history and trigger_history[0] < cutoff:
                trigger_popleft()

            if not is_fatal:
                win_append((t, sc))
                if matcher_add(sc):
                    best = best_satisfied()
                    if best is not None:
                        if fatal_history:
                            # Case 3 at a non-fatal arrival (see step()).
                            active = 0.0
                            for end, c in stat_conf_until:
                                if t <= end and c > active:
                                    active = c
                            if best.confidence >= active:
                                warning = emit_rule(t, best)
                                if warning:
                                    out_append(warning)
                        else:
                            warning = emit_rule(t, best)
                            if warning:
                                out_append(warning)
                continue

            # Fatal arrival: statistical trigger point.
            category = categories[sc]
            stat_conf = stat_conf_map[category]
            if stat_conf is not None and not trigger_history:
                stat_conf = None
            nonfatal_present = has_observed()
            best = best_satisfied() if nonfatal_present else None
            if stat_conf is not None:
                if not nonfatal_present:
                    warning = emit_stat(t, category, stat_conf)
                    if warning:
                        out_append(warning)
                else:
                    rule_conf = best.confidence if best is not None else 0.0
                    if stat_conf > rule_conf:
                        warning = emit_stat(t, category, stat_conf)
                        if warning:
                            out_append(warning)
                    elif best is not None:
                        warning = emit_rule(t, best)
                        if warning:
                            out_append(warning)
            elif best is not None:
                warning = emit_rule(t, best)
                if warning:
                    out_append(warning)
            fatal_append(t)
            if category in trigger_set:
                trigger_append(t)

        self._last_time = t_list[-1]
        return out


class MetaLearner(Predictor):
    """Stacked combination of the statistical and rule-based predictors.

    Parameters
    ----------
    prediction_window:
        The observation/prediction window W: rule bodies are matched over the
        trailing W seconds and rule warnings' horizons end W seconds after
        issue (swept 5-60 min in the paper's Figure 5).
    rule_window:
        Rule-generation window for the embedded rule-based predictor.
    statistical / rulebased:
        Pre-configured base predictors; freshly constructed when omitted.
        ``fit`` (re)fits both on the training store.  The statistical method
        keeps its own fixed band (paper: 5 min to 1 hour) regardless of W —
        its horizon is a property of the failure process, not of the sweep
        parameter.
    """

    name = "meta"

    def __init__(
        self,
        prediction_window: float = 30 * MINUTE,
        rule_window: float = 15 * MINUTE,
        statistical: Optional[StatisticalPredictor] = None,
        rulebased: Optional[RuleBasedPredictor] = None,
    ) -> None:
        super().__init__()
        check_positive(prediction_window, "prediction_window")
        self.prediction_window = float(prediction_window)
        self.statistical = statistical or StatisticalPredictor()
        self.rulebased = rulebased or RuleBasedPredictor(
            rule_window=rule_window, prediction_window=prediction_window
        )
        #: Diagnostics: number of emitted warnings per base method.
        self.dispatch_counts: dict[str, int] = {"rule": 0, "statistical": 0}

    @classmethod
    def from_state(
        cls,
        *,
        prediction_window: float,
        statistical: StatisticalPredictor,
        rulebased: RuleBasedPredictor,
    ) -> "MetaLearner":
        """Rebuild a *fitted* meta-learner from fitted base predictors.

        The public restore path used by model deserialization and the
        artifact cache.  Both bases must already be fitted (restored via
        their own ``from_state``/``restore_state``).
        """
        if not statistical.is_fitted or not rulebased.is_fitted:
            raise ValueError(
                "MetaLearner.from_state requires fitted base predictors"
            )
        meta = cls(
            prediction_window=prediction_window,
            statistical=statistical,
            rulebased=rulebased,
        )
        meta.mark_fitted()
        return meta

    def fit(self, events: EventStore) -> "MetaLearner":
        """Fit both base predictors on the training store (paper step 1)."""
        self.statistical.fit(events)
        self.rulebased.fit(events)
        self._fitted = True
        return self

    def stream(self) -> MetaStream:
        """A fresh online dispatch stream sharing this learner's models."""
        self._check_fitted()
        assert self.rulebased.ruleset is not None
        return MetaStream(
            ruleset=self.rulebased.ruleset,
            statistical=self.statistical,
            prediction_window=self.prediction_window,
            source=self.name,
        )

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Drive the dispatch stream over a whole store (batched path)."""
        obs = get_registry()
        stream = self.stream()
        warnings: list[FailureWarning] = []
        if len(events) == 0:
            self.dispatch_counts = dict(stream.dispatch_counts)
            return warnings
        with obs.span("phase3.dispatch"):
            clf = self.statistical.classifier
            cat_table = [clf.category_of_label(n) for n in events.subcat_table]
            warnings = stream.step_batch(
                events.times, events.subcat_ids, events.fatal_mask(), cat_table
            )
        self.dispatch_counts = dict(stream.dispatch_counts)
        # Which base method each emitted warning came from — the paper's
        # case-1/2/3 coverage dispatch made visible per run.
        obs.counter(
            "meta.dispatch", self.dispatch_counts["rule"], method="rule"
        )
        obs.counter(
            "meta.dispatch",
            self.dispatch_counts["statistical"],
            method="statistical",
        )
        obs.counter("predictor.warnings", len(warnings), source=self.name)
        return warnings
