"""Phase 3 — meta-learning prediction (paper §3.3).

- :mod:`repro.meta.stacked` — the paper's coverage-based stacked
  generalization: dispatch between the rule-based and statistical base
  predictors according to what the observation window contains.
- :mod:`repro.meta.ensembles` — alternative combination policies (union,
  intersection, confidence-max, single-base) used by the dispatch ablation.
"""

from repro.meta.ensembles import PolicyEnsemble
from repro.meta.multi import MultiMeta
from repro.meta.stacked import MetaLearner, MetaStream

__all__ = ["MetaLearner", "MetaStream", "MultiMeta", "PolicyEnsemble"]
