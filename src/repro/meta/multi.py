"""Generalized N-base meta-learning (paper future work).

The paper's summary calls for the "proposed meta-learning mechanism [to] be
further examined for advancing failure prediction", and its related-work
section cites ensemble learning over arbitrary base learners.
:class:`MultiMeta` extends the two-base coverage dispatch to any number of
:class:`~repro.predictors.base.Predictor` bases:

- every base is fitted on the training store and predicts independently;
- warnings are merged in issue order; a warning is *suppressed* when a more
  confident warning from another base is still active over an overlapping
  horizon (the pairwise generalization of the paper's case-3 rule);
- per-base contribution statistics are kept for diagnosis.

With ``bases=[StatisticalPredictor(...), RuleBasedPredictor(...)]`` this is
a close relative of the two-base meta-learner; adding e.g. the periodicity
predictor extends coverage to failure modes neither paper method sees.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.predictors.base import FailureWarning, Predictor
from repro.ras.store import EventStore


class MultiMeta(Predictor):
    """Confidence-arbitrated combination of N base predictors."""

    name = "multi-meta"

    def __init__(self, bases: Sequence[Predictor]) -> None:
        super().__init__()
        if not bases:
            raise ValueError("at least one base predictor required")
        names = [b.name for b in bases]
        if len(set(names)) != len(names):
            raise ValueError(f"base predictor names must be unique: {names}")
        self.bases: list[Predictor] = list(bases)
        #: Post-predict diagnostics: warnings contributed per base.
        self.contributions: dict[str, int] = {}
        #: Post-predict diagnostics: warnings suppressed per base.
        self.suppressed: dict[str, int] = {}

    def fit(self, events: EventStore) -> "MultiMeta":
        for base in self.bases:
            base.fit(events)
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        """Merge the bases' streams under confidence arbitration.

        A warning loses arbitration when, at its issue time, another base
        has an already-issued warning with an overlapping horizon and
        strictly higher confidence.  Ties keep both (they cover for each
        other in the recall accounting and are deduplicated by horizon
        overlap only across *different* bases, so a single base's stream is
        never thinned — its own deduplication already happened).
        """
        self._check_fitted()
        self.contributions = {b.name: 0 for b in self.bases}
        self.suppressed = {b.name: 0 for b in self.bases}

        streams = [(b.name, b.predict(events)) for b in self.bases]
        merged: list[tuple[int, float, str, FailureWarning]] = []
        for name, stream in streams:
            for w in stream:
                merged.append((w.issued_at, -w.confidence, name, w))
        merged.sort(key=lambda item: (item[0], item[1]))

        #: Active horizons per base: (horizon_end, confidence) heaps.
        active: dict[str, list[tuple[int, float, FailureWarning]]] = {
            b.name: [] for b in self.bases
        }
        kept: list[FailureWarning] = []
        for issued, _negconf, name, w in merged:
            # Evict expired horizons.
            for heap in active.values():
                while heap and heap[0][0] < issued:
                    heapq.heappop(heap)
            dominated = False
            for other, heap in active.items():
                if other == name:
                    continue
                for end, conf, ow in heap:
                    if (
                        conf > w.confidence
                        and ow.horizon_start <= w.horizon_end
                        and w.horizon_start <= end
                    ):
                        dominated = True
                        break
                if dominated:
                    break
            if dominated:
                self.suppressed[name] += 1
                continue
            heapq.heappush(active[name], (w.horizon_end, w.confidence, w))
            self.contributions[name] += 1
            kept.append(w)
        return kept
