"""Alternative combination policies (dispatch ablation).

The paper motivates its coverage-based dispatch qualitatively; these
ensembles make the choice measurable.  Each policy combines the *warning
streams* of the two base predictors post hoc:

- ``union`` — every warning from either base (maximal recall, precision is
  the warning-weighted mix of the bases);
- ``intersection`` — a warning survives only when the other base has an
  overlapping active warning (maximal precision, minimal recall);
- ``confidence_max`` — like union, but when warnings from both bases are
  simultaneously active only the more confident one is kept;
- ``rule_only`` / ``statistical_only`` — single-base references.

The paper's coverage-based dispatch (:class:`repro.meta.stacked.MetaLearner`)
should dominate these on the recall/precision trade-off, which
``benchmarks/bench_ablation_dispatch.py`` verifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.predictors.base import (
    FailureWarning,
    Predictor,
    merge_warning_streams,
)
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.ras.store import EventStore

POLICIES = (
    "union",
    "intersection",
    "confidence_max",
    "rule_only",
    "statistical_only",
)


def _overlapping(w: FailureWarning, others: Sequence[FailureWarning]) -> Optional[FailureWarning]:
    """A warning from ``others`` whose horizon overlaps ``w``'s, if any."""
    for o in others:
        if o.horizon_start <= w.horizon_end and w.horizon_start <= o.horizon_end:
            return o
    return None


class PolicyEnsemble(Predictor):
    """Post-hoc combination of the two base predictors' warning streams."""

    def __init__(
        self,
        policy: str,
        statistical: Optional[StatisticalPredictor] = None,
        rulebased: Optional[RuleBasedPredictor] = None,
    ) -> None:
        super().__init__()
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.policy = policy
        self.statistical = statistical or StatisticalPredictor(lead=0.0)
        self.rulebased = rulebased or RuleBasedPredictor()
        self.name = f"ensemble[{policy}]"

    def fit(self, events: EventStore) -> "PolicyEnsemble":
        self.statistical.fit(events)
        self.rulebased.fit(events)
        self._fitted = True
        return self

    def predict(self, events: EventStore) -> list[FailureWarning]:
        self._check_fitted()
        stat = self.statistical.predict(events)
        rule = self.rulebased.predict(events)
        if self.policy == "rule_only":
            return rule
        if self.policy == "statistical_only":
            return stat
        if self.policy == "union":
            return merge_warning_streams(stat, rule)
        if self.policy == "intersection":
            kept = [w for w in stat if _overlapping(w, rule) is not None]
            kept += [w for w in rule if _overlapping(w, stat) is not None]
            return merge_warning_streams(kept)
        # confidence_max: drop the less confident of overlapping pairs.
        kept = []
        for w in stat:
            o = _overlapping(w, rule)
            if o is None or w.confidence >= o.confidence:
                kept.append(w)
        for w in rule:
            o = _overlapping(w, stat)
            if o is None or w.confidence > o.confidence:
                kept.append(w)
        return merge_warning_streams(kept)
