"""Per-stream ingestion channels behind the daemon's wire protocol.

A *stream* is one independent RAS event source (one machine, one tenant,
one replayed log).  Each stream gets a :class:`StreamChannel`: a bounded
``asyncio.Queue`` in front of its own :class:`~repro.serve.pool.DetectorPool`,
consumed by one worker task.  The queue bound is the backpressure contract —
when a stream's consumer falls behind, :meth:`StreamChannel.offer` returns
``"busy"`` instead of growing memory, and the daemon surfaces that to the
producer as a ``BUSY`` response (the producer retries the unsent tail).

The worker drains the queue in chunks of at most ``chunk_events`` and feeds
each chunk through :meth:`DetectorPool.process_store` — the persistent-
session columnar path, which is chunk-size invariant, so the resolved
session statistics equal a per-event replay of the same stream regardless
of how arrivals were batched on the wire.

Lifecycle integration is duck-typed: a channel built with a
``manager_factory`` buffers its first ``reference_events`` events into the
drift-reference store, builds the manager (anything with ``feed(chunk)``,
in practice :class:`repro.lifecycle.manager.LifecycleManager`), and from
then on feeds *fixed-size* chunks so retrain/swap barriers land at
deterministic stream positions.  :mod:`repro.serve` never imports
:mod:`repro.lifecycle` — the factory is injected by the CLI — keeping the
package DAG acyclic (lifecycle already imports ``serve.pool``).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.meta.stacked import MetaLearner
from repro.obs import get_registry
from repro.online.resolution import SessionStats
from repro.predictors.base import FailureWarning
from repro.ras.events import RasEvent
from repro.ras.store import EventStore
from repro.serve.pool import DetectorPool
from repro.util.validation import check_positive


class ChunkConsumer(Protocol):
    """What a lifecycle manager looks like from the daemon's side."""

    pool: DetectorPool

    def feed(self, chunk: EventStore) -> list[FailureWarning]: ...


class ActionSink(Protocol):
    """What an action engine looks like from the daemon's side.

    Like lifecycle, the actions layer sits above serve in the package DAG,
    so serve only ever sees this protocol; the concrete
    ``repro.actions.ActionEngine`` is injected by the CLI.  ``finalize``
    returns the engine's ledger — typed ``object`` here because serve
    never inspects it, only carries it into reports and state docs.
    """

    def observe_store(
        self, store: EventStore, warnings: list[FailureWarning]
    ) -> None: ...

    def finalize(self) -> object: ...


#: Builds a lifecycle manager once the drift-reference store is assembled.
ManagerFactory = Callable[[DetectorPool, EventStore], ChunkConsumer]

#: Builds one action sink per stream (keyed by stream id).
ActionFactory = Callable[[str], ActionSink]

#: Queue sentinel that tells the worker to exit after flushing.
_CLOSE = object()


@dataclass
class StreamStats:
    """Operator-facing counters of one ingestion stream."""

    ingested: int = 0        # accepted into the queue
    processed: int = 0       # fed through the detector pool
    dropped_busy: int = 0    # rejected by backpressure (producer retries)
    rejected_order: int = 0  # rejected for violating time order
    warnings: int = 0        # warnings raised so far
    last_time: int = -1      # newest accepted event timestamp

    def to_dict(self) -> dict[str, int]:
        return {
            "ingested": self.ingested,
            "processed": self.processed,
            "dropped_busy": self.dropped_busy,
            "rejected_order": self.rejected_order,
            "warnings": self.warnings,
            "last_time": self.last_time,
        }


class StreamChannel:
    """One stream's bounded queue, worker loop and detector pool."""

    def __init__(
        self,
        stream_id: str,
        meta: MetaLearner,
        *,
        queue_bound: int = 4096,
        shards: int = 4,
        key: str = "midplane",
        chunk_events: int = 512,
        warning_ring: int = 256,
        manager_factory: Optional[ManagerFactory] = None,
        reference_events: int = 0,
        action_factory: Optional[ActionFactory] = None,
    ) -> None:
        check_positive(queue_bound, "queue_bound")
        check_positive(chunk_events, "chunk_events")
        if manager_factory is not None:
            check_positive(reference_events, "reference_events")
        self.stream_id = stream_id
        self.pool = DetectorPool(meta, shards=shards, key=key)
        self.chunk_events = int(chunk_events)
        self.stats = StreamStats()
        self.recent_warnings: deque[FailureWarning] = deque(maxlen=warning_ring)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_bound)
        self._classifier = meta.statistical.classifier
        self._manager_factory = manager_factory
        self._manager: Optional[ChunkConsumer] = None
        self.action_sink: Optional[ActionSink] = (
            action_factory(stream_id) if action_factory is not None else None
        )
        self._reference_events = int(reference_events)
        self._reference: list[RasEvent] = []  # pre-manager warm-up buffer
        self._chunk: list[RasEvent] = []      # lifecycle-mode partial chunk
        self._closing = False
        self._task: Optional[asyncio.Task] = None

    # ---------------------------------------------------------------- #
    # Producer side (called from connection handlers, synchronously)
    # ---------------------------------------------------------------- #

    @property
    def lag(self) -> int:
        """Events accepted but not yet fed through the pool."""
        return self.queue.qsize() + len(self._chunk) + len(self._reference)

    @property
    def pending_warnings(self) -> int:
        return self.pool.pending_count

    def offer(self, event: RasEvent) -> str:
        """Try to enqueue one event; returns ``"ok"``, ``"busy"`` or ``"order"``.

        Never blocks and never grows the queue past its bound — a full
        queue is the producer's problem (retry after the busy response).
        Events must arrive in non-decreasing time order per stream; the
        detector's dispatch machine is forward-only.
        """
        if self._closing:
            return "busy"
        if event.time < self.stats.last_time:
            self.stats.rejected_order += 1
            return "order"
        try:
            self.queue.put_nowait(event)
        except asyncio.QueueFull:
            self.stats.dropped_busy += 1
            return "busy"
        self.stats.ingested += 1
        self.stats.last_time = event.time
        return "ok"

    # ---------------------------------------------------------------- #
    # Consumer side (one worker task per channel)
    # ---------------------------------------------------------------- #

    def start(self) -> None:
        """Spawn the worker task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"stream-{self.stream_id}"
            )

    async def _run(self) -> None:
        queue = self.queue
        while True:
            item = await queue.get()
            if item is _CLOSE:
                break
            batch = [item]
            # Opportunistically drain whatever is already queued so wire
            # batching converts into columnar batching, up to the chunk cap.
            while len(batch) < self.chunk_events:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _CLOSE:
                    self._feed(batch)
                    self._flush()
                    return
                batch.append(extra)
            self._feed(batch)
            # Yield so other channels and connection handlers get a turn
            # even when this queue never runs empty.
            await asyncio.sleep(0)
        self._flush()

    def _classified(self, events: list[RasEvent]) -> list[RasEvent]:
        classify = self._classifier.classify
        return [
            ev if ev.subcategory is not None
            else ev.with_subcategory(classify(ev.entry_data))
            for ev in events
        ]

    def _feed(self, events: list[RasEvent]) -> None:
        """Feed accepted events to the pool (plain) or manager (lifecycle)."""
        if self._manager_factory is None:
            self._consume(events)
            return
        # Lifecycle mode: fill the drift-reference window first, then feed
        # exact chunk_events-sized chunks so retrain barriers are placed
        # deterministically, independent of wire batching.
        if self._manager is None:
            need = self._reference_events - len(self._reference)
            self._reference.extend(events[:need])
            events = events[need:]
            if len(self._reference) < self._reference_events:
                return
            reference = EventStore.from_events_in_memory(self._classified(self._reference))
            self._manager = self._manager_factory(self.pool, reference)
            self._consume_chunks([self._reference])
            self._reference = []
        if events:
            self._chunk.extend(events)
            full, rest = [], self._chunk
            while len(rest) >= self.chunk_events:
                full.append(rest[: self.chunk_events])
                rest = rest[self.chunk_events:]
            self._chunk = rest
            self._consume_chunks(full)

    def _consume(self, events: list[RasEvent]) -> None:
        """Feed one batch through the persistent pool sessions."""
        if not events:
            return
        store = EventStore.from_events_in_memory(self._classified(events))
        raised = self.pool.process_store(store)
        if self.action_sink is not None:
            self.action_sink.observe_store(store, list(raised))
        self.recent_warnings.extend(raised)
        self.stats.processed += len(events)
        self.stats.warnings += len(raised)
        obs = get_registry()
        obs.counter("serve.daemon.events", len(events), stream=self.stream_id)
        obs.observe("serve.daemon.batch_events", float(len(events)))
        if raised:
            obs.counter(
                "serve.daemon.warnings", len(raised), stream=self.stream_id
            )

    def _consume_chunks(self, chunks: list[list[RasEvent]]) -> None:
        """Feed full chunks through the lifecycle manager's serving loop."""
        assert self._manager is not None
        obs = get_registry()
        for chunk in chunks:
            if not chunk:
                continue
            store = EventStore.from_events_in_memory(self._classified(chunk))
            raised = self._manager.feed(store)
            if self.action_sink is not None:
                self.action_sink.observe_store(store, list(raised))
            self.recent_warnings.extend(raised)
            self.stats.processed += len(chunk)
            self.stats.warnings += len(raised)
            obs.counter("serve.daemon.events", len(chunk), stream=self.stream_id)
            obs.observe("serve.daemon.batch_events", float(len(chunk)))
            if raised:
                obs.counter(
                    "serve.daemon.warnings", len(raised), stream=self.stream_id
                )

    # ---------------------------------------------------------------- #
    # Shutdown
    # ---------------------------------------------------------------- #

    async def close(self) -> None:
        """Stop accepting, let the worker drain everything, join it."""
        if self._closing:
            if self._task is not None:
                await self._task
            return
        self._closing = True
        if self._task is None:
            self._flush()
            return
        await self.queue.put(_CLOSE)
        await self._task

    def _flush(self) -> None:
        """Push any lifecycle-mode partial chunk / warm-up remainder through."""
        if self._reference:
            # Stream ended before the drift reference filled: feed the
            # buffered events plainly — no manager, no retraining.
            buffered, self._reference = self._reference, []
            self._manager_factory = None
            self._consume(buffered)
        if self._chunk:
            tail, self._chunk = self._chunk, []
            if self._manager is not None:
                self._consume_chunks([tail])
            else:
                self._consume(tail)

    def finish(self) -> SessionStats:
        """Finalize the pool's sessions (resolve pending warnings)."""
        return self.pool.finish()

    @property
    def manager(self) -> Optional[ChunkConsumer]:
        """The lifecycle manager, once the reference window has filled."""
        return self._manager


@dataclass
class StreamRouter:
    """Lazily creates and tracks one :class:`StreamChannel` per stream id."""

    meta: MetaLearner
    queue_bound: int = 4096
    shards: int = 4
    key: str = "midplane"
    chunk_events: int = 512
    warning_ring: int = 256
    max_streams: int = 64
    manager_factory: Optional[ManagerFactory] = None
    reference_events: int = 0
    action_factory: Optional[ActionFactory] = None
    channels: dict[str, StreamChannel] = field(default_factory=dict)

    def channel(self, stream_id: str) -> StreamChannel:
        """The stream's channel, created (and its worker started) on first use."""
        existing = self.channels.get(stream_id)
        if existing is not None:
            return existing
        if len(self.channels) >= self.max_streams:
            raise ValueError(
                f"stream limit reached ({self.max_streams}); "
                f"refusing new stream {stream_id!r}"
            )
        channel = StreamChannel(
            stream_id,
            self.meta,
            queue_bound=self.queue_bound,
            shards=self.shards,
            key=self.key,
            chunk_events=self.chunk_events,
            warning_ring=self.warning_ring,
            manager_factory=self.manager_factory,
            reference_events=self.reference_events,
            action_factory=self.action_factory,
        )
        self.channels[stream_id] = channel
        channel.start()
        get_registry().gauge("serve.daemon.streams", float(len(self.channels)))
        return channel

    async def close_all(self) -> None:
        """Drain every channel, in stream-id order (deterministic)."""
        for stream_id in sorted(self.channels):
            await self.channels[stream_id].close()
