"""The live ingestion daemon: an always-on front end for the detector pool.

:class:`IngestDaemon` runs one asyncio TCP server speaking the NDJSON line
protocol of :mod:`repro.serve.protocol`.  Each connection writes request
frames; ``event``/``batch`` frames are routed by stream id to a
:class:`~repro.serve.streams.StreamChannel` (bounded queue + worker + its
own :class:`~repro.serve.pool.DetectorPool`), everything else is answered
inline.  The same port answers ``GET /metrics``, ``GET /health`` and
``GET /drain`` over plain HTTP, so scrape jobs need no custom client.

Backpressure is end to end: a stream whose worker falls behind fills its
bounded queue, ``offer`` returns busy, and the producer receives a
``BUSY`` response naming how many events of its batch were accepted —
memory stays bounded no matter how fast producers push.

Shutdown is a *drain*, not a stop: on SIGTERM (or a ``drain`` frame, or
``GET /drain``) the daemon refuses new events, lets every worker empty its
queue, finalizes every pool session so all pending warnings resolve, and
returns a :class:`DrainReport` whose combined statistics are — by the
chunk-invariance of the columnar feed path — identical to a batch replay
of the same per-stream traffic.  :func:`state_to_dict` /
:func:`state_from_dict` round-trip the resolved counters so a kill/restart
cycle carries them forward losslessly (the CLI persists them; no file I/O
happens inside the event loop).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

from repro.obs import get_registry
from repro.online.resolution import SessionStats
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    busy_response,
    decode_request,
    encode_frame,
    error_response,
    event_to_dict,
    http_request_path,
    http_response,
    is_http_request,
    ok_response,
    warning_to_dict,
)
from repro.serve.streams import (
    ActionFactory,
    ManagerFactory,
    StreamChannel,
    StreamRouter,
)
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of one daemon instance (see docs/operations.md for a table)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 -> OS-assigned; read the bound port off `daemon.port`
    queue_bound: int = 4096
    shards: int = 4
    key: str = "midplane"
    chunk_events: int = 512
    max_streams: int = 64
    warning_ring: int = 256
    max_line_bytes: int = MAX_LINE_BYTES
    #: Columnar store directory for ingestion persistence (None = off).
    #: Accepted events append durably in arrival order; a restarted daemon
    #: resumes the same store, and the archive replays later with
    #: ``repro.ras.columnar.open_store`` (which re-sorts wire order).
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive(self.queue_bound, "queue_bound")
        check_positive(self.chunk_events, "chunk_events")
        check_positive(self.max_streams, "max_streams")
        check_positive(self.max_line_bytes, "max_line_bytes")


@dataclass(frozen=True)
class StreamReport:
    """One stream's contribution to a drain."""

    stream_id: str
    ingested: int
    processed: int
    dropped_busy: int
    rejected_order: int
    warnings: int
    stats: SessionStats
    #: The stream's action ledger (a ``repro.actions.Ledger``, duck-typed:
    #: serve only carries it into reports and the state doc), or ``None``
    #: when the daemon runs without an action policy.
    ledger: Optional[Any] = None


@dataclass(frozen=True)
class DrainReport:
    """The daemon's final accounting after a graceful drain."""

    streams: list[StreamReport]
    seconds: float
    baseline: Optional[SessionStats] = None
    combined: SessionStats = field(init=False)

    def __post_init__(self) -> None:
        combined = SessionStats()
        for report in self.streams:
            combined.merge(report.stats)
        object.__setattr__(self, "combined", combined)

    @property
    def events(self) -> int:
        return sum(r.processed for r in self.streams)

    def total(self) -> SessionStats:
        """Combined stats including the restored pre-restart baseline."""
        total = SessionStats()
        if self.baseline is not None:
            total.merge(self.baseline)
        total.merge(self.combined)
        return total


# --------------------------------------------------------------------- #
# Resolved-state round-trip (consumed by the CLI's --state file)
# --------------------------------------------------------------------- #


def stats_to_dict(stats: SessionStats) -> dict[str, Any]:
    return {
        "events": stats.events,
        "failures": stats.failures,
        "warnings": stats.warnings,
        "hits": stats.hits,
        "false_alarms": stats.false_alarms,
        "caught_failures": stats.caught_failures,
        "missed_failures": stats.missed_failures,
        "lead_seconds": list(stats.lead_seconds),
    }


def stats_from_dict(doc: dict[str, Any]) -> SessionStats:
    return SessionStats(
        events=int(doc.get("events", 0)),
        failures=int(doc.get("failures", 0)),
        warnings=int(doc.get("warnings", 0)),
        hits=int(doc.get("hits", 0)),
        false_alarms=int(doc.get("false_alarms", 0)),
        caught_failures=int(doc.get("caught_failures", 0)),
        missed_failures=int(doc.get("missed_failures", 0)),
        lead_seconds=[float(x) for x in doc.get("lead_seconds", [])],
    )


def state_to_dict(
    report: DrainReport,
    carried_ledgers: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """JSON-ready restart state: per-stream and total resolved counters.

    When streams carry action ledgers, their aggregate counters persist
    under ``"ledgers"`` (entries elided — a restarted engine resumes the
    running totals, not the per-action history).  ``carried_ledgers`` are
    ledger documents restored from the previous life; a stream that sent
    no traffic this life keeps its restored aggregates rather than losing
    them at the rewrite.
    """
    doc: dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "total": stats_to_dict(report.total()),
        "streams": {
            r.stream_id: stats_to_dict(r.stats) for r in report.streams
        },
    }
    ledgers = dict(carried_ledgers or {})
    ledgers.update(
        (r.stream_id, r.ledger.to_dict(include_entries=False))
        for r in report.streams
        if r.ledger is not None
    )
    if ledgers:
        doc["ledgers"] = ledgers
    return doc


def state_from_dict(doc: dict[str, Any]) -> SessionStats:
    """The total resolved counters a restarted daemon carries forward."""
    return stats_from_dict(doc.get("total", {}))


class IngestDaemon:
    """One live ingestion endpoint in front of per-stream detector pools.

    Construction is cheap and sync; :meth:`start` binds the socket on the
    running loop.  Drive it either with :meth:`serve_until_drained`
    (install signal handlers, block until drained) or by calling
    :meth:`start` / :meth:`request_drain` / :meth:`drain` yourself (tests).
    """

    def __init__(
        self,
        meta: Any,
        config: DaemonConfig = DaemonConfig(),
        *,
        manager_factory: Optional[ManagerFactory] = None,
        reference_events: int = 0,
        action_factory: Optional[ActionFactory] = None,
        baseline: Optional[SessionStats] = None,
        registry: Any = None,
    ) -> None:
        self.config = config
        self.router = StreamRouter(
            meta=meta,
            queue_bound=config.queue_bound,
            shards=config.shards,
            key=config.key,
            chunk_events=config.chunk_events,
            warning_ring=config.warning_ring,
            max_streams=config.max_streams,
            manager_factory=manager_factory,
            reference_events=reference_events,
            action_factory=action_factory,
        )
        self.baseline = baseline
        self.obs = registry if registry is not None else get_registry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = asyncio.Event()
        self._started_at = 0.0
        self.drain_report: Optional[DrainReport] = None
        # Columnar ingestion archive: accepted events buffer in arrival
        # order and flush every `chunk_events` (each flush is one durable
        # append + manifest commit, amortizing the fsync).
        self._store_writer = None
        self._store_buffer: list[Any] = []
        if config.store_dir:
            from repro.ras.columnar import ColumnarWriter

            self._store_writer = ColumnarWriter(config.store_dir, resume=True)

    # ---------------------------------------------------------------- #
    # Lifecycle
    # ---------------------------------------------------------------- #

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._started_at = perf_counter()
        self._server = await asyncio.start_server(
            self._on_client,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the OS's choice)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def request_drain(self) -> None:
        """Flip the daemon into draining mode (signal-handler safe)."""
        self._draining.set()

    async def serve_until_drained(
        self, *, install_signal_handlers: bool = True
    ) -> DrainReport:
        """Start, run until a drain is requested, drain, and report."""
        await self.start()
        if install_signal_handlers:
            self._install_signal_handlers()
        await self._draining.wait()
        return await self.drain()

    def _install_signal_handlers(self) -> None:
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (CLI tests) or an unsupported
                # platform; callers fall back to the drain op / endpoint.
                break

    async def drain(self) -> DrainReport:
        """Graceful shutdown: stop accepting, flush, finalize, report."""
        if self.drain_report is not None:
            return self.drain_report
        self._draining.set()
        t0 = perf_counter()
        if self._server is not None:
            # close() only; wait_closed() on 3.12 waits for in-flight
            # connection handlers, which may themselves be awaiting us.
            self._server.close()
        await self.router.close_all()
        loop = asyncio.get_running_loop()
        reports = []
        for stream_id in sorted(self.router.channels):
            channel = self.router.channels[stream_id]
            stats = channel.finish()
            manager = channel.manager
            if manager is not None:
                # Tag the registry ref of the model serving at shutdown so
                # a restart can resume from it.  tag() writes files —
                # off-loop, the event loop stays non-blocking.
                registry = getattr(
                    getattr(manager, "retrainer", None), "model_registry", None
                )
                serving = getattr(manager, "serving_snapshot", None)
                if registry is not None and serving is not None:
                    await loop.run_in_executor(
                        None, registry.tag, serving, f"serving-{stream_id}"
                    )
            sink = channel.action_sink
            ledger = sink.finalize() if sink is not None else None
            s = channel.stats
            reports.append(
                StreamReport(
                    stream_id=stream_id,
                    ingested=s.ingested,
                    processed=s.processed,
                    dropped_busy=s.dropped_busy,
                    rejected_order=s.rejected_order,
                    warnings=s.warnings,
                    stats=stats,
                    ledger=ledger,
                )
            )
        if self._store_writer is not None:
            # Final flush + close off-loop: the manifest commit fsyncs.
            await loop.run_in_executor(None, self._close_store)
        seconds = perf_counter() - t0
        self.obs.observe("serve.daemon.drain_seconds", seconds)
        self.drain_report = DrainReport(
            streams=reports, seconds=seconds, baseline=self.baseline
        )
        return self.drain_report

    # ---------------------------------------------------------------- #
    # Ingestion archive (columnar persistence)
    # ---------------------------------------------------------------- #

    @property
    def store_rows(self) -> int:
        """Rows committed + buffered in the ingestion archive (0 when off)."""
        if self._store_writer is None:
            return 0
        return self._store_writer.rows + len(self._store_buffer)

    def _archive(self, event: Any) -> None:
        if self._store_writer is None:
            return
        self._store_buffer.append(event)
        if len(self._store_buffer) >= self.config.chunk_events:
            self._flush_store()

    def _flush_store(self) -> None:
        if self._store_writer is None or not self._store_buffer:
            return
        self._store_writer.append_events(self._store_buffer)
        self.obs.counter("serve.daemon.store_rows", len(self._store_buffer))
        self._store_buffer.clear()

    def _close_store(self) -> None:
        self._flush_store()
        if self._store_writer is not None:
            self._store_writer.close()

    # ---------------------------------------------------------------- #
    # Connection handling
    # ---------------------------------------------------------------- #

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.obs.counter("serve.daemon.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Over-long line (StreamReader limit) or a dropped peer.
                    self.obs.counter("serve.daemon.rejected", reason="protocol")
                    break
                if not line:
                    break
                if is_http_request(line):
                    await self._serve_http(line, reader, writer)
                    break  # HTTP is one-shot: respond and close
                response = self._handle_line(line)
                writer.write(encode_frame(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.obs.counter("serve.daemon.rejected", reason="protocol")
            return error_response(str(exc))
        self.obs.counter("serve.daemon.frames", op=request.op)
        try:
            return self._respond(request)
        except ValueError as exc:  # e.g. stream limit reached
            self.obs.counter("serve.daemon.rejected", reason="protocol")
            return error_response(str(exc))

    def _respond(self, request: Request) -> dict[str, Any]:
        op = request.op
        if op == "ping":
            return ok_response(version=PROTOCOL_VERSION)
        if op == "health":
            return ok_response(**self.health_doc())
        if op == "metrics":
            return ok_response(metrics=self.metrics_doc())
        if op == "drain":
            self.request_drain()
            return ok_response(draining=True)
        if op in ("event", "batch"):
            return self._ingest(request)
        if op == "stats":
            channel = self.router.channels.get(request.stream)
            if channel is None:
                return error_response(f"unknown stream {request.stream!r}")
            session = channel.pool.combined_stats()
            return ok_response(
                stream=request.stream,
                counters=channel.stats.to_dict(),
                pending_warnings=channel.pending_warnings,
                session=stats_to_dict(session),
            )
        if op == "warnings":
            channel = self.router.channels.get(request.stream)
            if channel is None:
                return error_response(f"unknown stream {request.stream!r}")
            drained = [warning_to_dict(w) for w in channel.recent_warnings]
            channel.recent_warnings.clear()
            return ok_response(stream=request.stream, warnings=drained)
        raise AssertionError(f"unreachable op {op!r}")

    def _ingest(self, request: Request) -> dict[str, Any]:
        if self.draining:
            self.obs.counter("serve.daemon.rejected", reason="draining")
            return error_response("draining", draining=True)
        channel = self.router.channel(request.stream)
        accepted = 0
        for event in request.events:
            verdict = channel.offer(event)
            if verdict == "ok":
                accepted += 1
                self._archive(event)
                continue
            if verdict == "order":
                self.obs.counter("serve.daemon.rejected", reason="order")
                return error_response(
                    f"event time {event.time} precedes stream high-water "
                    f"mark {channel.stats.last_time}",
                    accepted=accepted,
                )
            self.obs.counter("serve.daemon.rejected", reason="busy")
            self.obs.counter(
                "serve.daemon.drops",
                len(request.events) - accepted,
                stream=request.stream,
            )
            return busy_response(accepted, channel.queue.qsize())
        return ok_response(accepted=accepted, queue_depth=channel.queue.qsize())

    # ---------------------------------------------------------------- #
    # Scrape documents
    # ---------------------------------------------------------------- #

    def health_doc(self) -> dict[str, Any]:
        channels = self.router.channels
        return {
            "status": "draining" if self.draining else "ok",
            "version": PROTOCOL_VERSION,
            "streams": len(channels),
            "ingested": sum(c.stats.ingested for c in channels.values()),
            "processed": sum(c.stats.processed for c in channels.values()),
            "pending_warnings": sum(
                c.pending_warnings for c in channels.values()
            ),
            "queued": sum(c.lag for c in channels.values()),
            "uptime_seconds": round(perf_counter() - self._started_at, 3),
        }

    def metrics_doc(self) -> dict[str, Any]:
        """Refresh the daemon gauges, then snapshot the whole registry."""
        obs = self.obs
        channels = self.router.channels
        uptime = max(perf_counter() - self._started_at, 1e-9)
        processed = 0
        for stream_id in sorted(channels):
            channel = channels[stream_id]
            processed += channel.stats.processed
            obs.gauge(
                "serve.daemon.queue_depth",
                float(channel.queue.qsize()),
                stream=stream_id,
            )
            obs.gauge("serve.daemon.lag", float(channel.lag), stream=stream_id)
            obs.gauge(
                "serve.daemon.pending_warnings",
                float(channel.pending_warnings),
                stream=stream_id,
            )
        obs.gauge("serve.daemon.streams", float(len(channels)))
        obs.gauge("serve.daemon.ingest_events_per_sec", processed / uptime)
        if self._store_writer is not None:
            obs.gauge("serve.daemon.store_rows_total", float(self.store_rows))
        to_dict = getattr(obs, "to_dict", None)
        return to_dict() if callable(to_dict) else {}

    # ---------------------------------------------------------------- #
    # HTTP bridging
    # ---------------------------------------------------------------- #

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # Consume (bounded) headers so well-behaved clients see a clean
        # response; StreamReader's limit caps each header line.
        for _ in range(64):
            try:
                header = await reader.readline()
            except (ValueError, ConnectionError):
                return
            if header in (b"\r\n", b"\n", b""):
                break
        try:
            path = http_request_path(request_line)
        except ProtocolError:
            writer.write(http_response(404, '{"error":"bad request"}\n'))
            await writer.drain()
            return
        import json

        if path == "/metrics":
            body = json.dumps(self.metrics_doc(), sort_keys=True) + "\n"
            writer.write(http_response(200, body))
        elif path == "/health":
            doc = self.health_doc()
            status = 503 if self.draining else 200
            writer.write(
                http_response(status, json.dumps(doc, sort_keys=True) + "\n")
            )
        elif path == "/drain":
            self.request_drain()
            writer.write(http_response(200, '{"draining":true}\n'))
        else:
            writer.write(http_response(404, '{"error":"not found"}\n'))
        await writer.drain()

    # Convenience for tests: drive a daemon completely inside asyncio.run().

    async def __aenter__(self) -> "IngestDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        if self.drain_report is None:
            await self.drain()


def channel_of(daemon: IngestDaemon, stream_id: str) -> StreamChannel:
    """Test/CLI helper: the daemon's channel for ``stream_id`` (must exist)."""
    return daemon.router.channels[stream_id]
