"""High-throughput serving engine for the fitted meta-learner.

The paper positions the meta-learner as cheap enough to run online; this
package is the deployment-shaped surface for doing that at installation
scale.  It layers three mechanisms, each individually tested for
equivalence with the reference event-at-a-time path:

- **Batched columnar feed** — :meth:`repro.online.detector.OnlineDetector.feed_batch`
  / ``feed_store`` push whole column batches through the dispatch state
  machine with hoisted lookups and no per-event object construction.
- **Heap-based warning resolution** — :class:`repro.online.resolution.WarningResolver`
  resolves warnings against failures in O(log P) amortized per event.
- **Sharded detector pool** — :class:`repro.serve.pool.DetectorPool` runs one
  independent detector per midplane/job shard, optionally across processes.

See ``docs/serving.md`` for the architecture and the equivalence guarantees.
"""

from repro.serve.pool import DetectorPool, PoolReport, ShardReport
from repro.serve.sharding import SHARD_KEYS, midplane_of, shard_ids, shard_of_key

__all__ = [
    "DetectorPool",
    "PoolReport",
    "ShardReport",
    "SHARD_KEYS",
    "midplane_of",
    "shard_ids",
    "shard_of_key",
]
