"""High-throughput serving engine for the fitted meta-learner.

The paper positions the meta-learner as cheap enough to run online; this
package is the deployment-shaped surface for doing that at installation
scale.  It layers four mechanisms, each individually tested for
equivalence with the reference event-at-a-time path:

- **Batched columnar feed** — :meth:`repro.online.detector.OnlineDetector.feed_batch`
  / ``feed_store`` push whole column batches through the dispatch state
  machine with hoisted lookups and no per-event object construction.
- **Heap-based warning resolution** — :class:`repro.online.resolution.WarningResolver`
  resolves warnings against failures in O(log P) amortized per event.
- **Sharded detector pool** — :class:`repro.serve.pool.DetectorPool` runs one
  independent detector per midplane/job shard, optionally across processes.
- **Live ingestion daemon** — :class:`repro.serve.daemon.IngestDaemon`
  accepts RAS events over an NDJSON line protocol, multiplexes independent
  stream ids onto per-stream pools through bounded queues with explicit
  backpressure, and drains losslessly on SIGTERM.

See ``docs/serving.md`` for the architecture and the equivalence
guarantees, and ``docs/operations.md`` for running the daemon.
"""

from repro.serve.client import EmitReport, StreamTally, emit_events
from repro.serve.daemon import (
    DaemonConfig,
    DrainReport,
    IngestDaemon,
    StreamReport,
)
from repro.serve.pool import DetectorPool, PoolReport, ShardReport
from repro.serve.sharding import SHARD_KEYS, midplane_of, shard_ids, shard_of_key
from repro.serve.streams import StreamChannel, StreamRouter, StreamStats

__all__ = [
    "DaemonConfig",
    "DetectorPool",
    "DrainReport",
    "EmitReport",
    "IngestDaemon",
    "PoolReport",
    "ShardReport",
    "StreamChannel",
    "StreamReport",
    "StreamRouter",
    "StreamStats",
    "StreamTally",
    "SHARD_KEYS",
    "emit_events",
    "midplane_of",
    "shard_ids",
    "shard_of_key",
]
