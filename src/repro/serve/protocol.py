"""Wire protocol of the live ingestion daemon (:mod:`repro.serve.daemon`).

Frames are newline-delimited JSON ("NDJSON"): the client writes one JSON
object per line, the server answers with one JSON object per line, on one
long-lived TCP connection.  The codec here is deliberately pure — no
asyncio, no sockets — so every encode/decode path is unit-testable and the
daemon's network layer stays a thin shell around it.

Request frames (``op`` selects the verb)::

    {"op": "event",  "stream": "anl-prod", "event": {...}}
    {"op": "batch",  "stream": "anl-prod", "events": [{...}, ...]}
    {"op": "stats",  "stream": "anl-prod"}      # per-stream counters
    {"op": "warnings", "stream": "anl-prod"}    # drain the warning ring
    {"op": "health"} / {"op": "metrics"}        # the scrape endpoints
    {"op": "drain"} / {"op": "ping"}

Event payloads carry the RAS attributes of paper Table 2 (``time``,
``location``, ``facility``, ``severity``, ``entry_data``, optional
``job_id``/``event_type``/``subcategory``).  Responses are
``{"ok": true, ...}`` on success, ``{"ok": false, "error": ...}`` on a
protocol violation and ``{"ok": false, "busy": true, "accepted": k}`` when
backpressure rejects part of a batch (the producer retries the unsent
tail).  Malformed input raises :class:`ProtocolError` — never a bare
``KeyError``/``ValueError`` — so the daemon can turn any bad frame into a
clean error response without dropping the connection.

The same port also answers plain ``GET /metrics``, ``GET /health`` and
``GET /drain`` HTTP requests (detected by the request line), so ``curl``
and scrape jobs need no custom client; see ``docs/operations.md`` for the
full contract.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.predictors.base import FailureWarning
from repro.ras.events import NO_JOB, RasEvent
from repro.ras.fields import Facility, Severity

#: Bumped on any wire-visible change; echoed by ``ping``/``health``.
PROTOCOL_VERSION = 1
#: Hard cap on one frame line (bytes); longer lines are a protocol error.
MAX_LINE_BYTES = 1 << 20
#: Hard cap on events per ``batch`` frame.
MAX_BATCH_EVENTS = 4096

#: Every request verb the daemon understands.
OPS = frozenset(
    {"event", "batch", "stats", "warnings", "metrics", "health", "drain", "ping"}
)

#: Stream ids are path/metric-label safe: short, printable, no whitespace.
_STREAM_RE = re.compile(r"^[A-Za-z0-9._\-]{1,64}$")

#: HTTP paths the daemon serves next to the line protocol.
HTTP_PATHS = ("/metrics", "/health", "/drain")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, unknown, oversized)."""


# --------------------------------------------------------------------- #
# Event / warning payload codecs
# --------------------------------------------------------------------- #


def event_to_dict(event: RasEvent) -> dict[str, Any]:
    """JSON-ready payload for one RAS event (Table-2 attributes)."""
    doc: dict[str, Any] = {
        "time": event.time,
        "location": event.location,
        "facility": event.facility.name,
        "severity": event.severity.name,
        "entry_data": event.entry_data,
    }
    if event.job_id != NO_JOB:
        doc["job_id"] = event.job_id
    if event.event_type != "RAS":
        doc["event_type"] = event.event_type
    if event.subcategory is not None:
        doc["subcategory"] = event.subcategory
    return doc


def _require_str(doc: dict, key: str) -> str:
    value = doc.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"event field {key!r} must be a non-empty string")
    return value


def _require_int(doc: dict, key: str, default: Optional[int] = None) -> int:
    value = doc.get(key, default)
    # bool is an int subclass; `true` is not a timestamp.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"event field {key!r} must be an integer")
    return value


def event_from_dict(doc: Any) -> RasEvent:
    """Decode one event payload; any malformation raises :class:`ProtocolError`."""
    if not isinstance(doc, dict):
        raise ProtocolError("event payload must be a JSON object")
    time = _require_int(doc, "time")
    location = _require_str(doc, "location")
    entry_data = _require_str(doc, "entry_data")
    facility_name = _require_str(doc, "facility").upper()
    severity_name = _require_str(doc, "severity").upper()
    try:
        facility = Facility[facility_name]
    except KeyError:
        raise ProtocolError(f"unknown facility {facility_name!r}") from None
    try:
        severity = Severity[severity_name]
    except KeyError:
        raise ProtocolError(f"unknown severity {severity_name!r}") from None
    subcategory = doc.get("subcategory")
    if subcategory is not None and not isinstance(subcategory, str):
        raise ProtocolError("event field 'subcategory' must be a string")
    event_type = doc.get("event_type", "RAS")
    if not isinstance(event_type, str):
        raise ProtocolError("event field 'event_type' must be a string")
    try:
        return RasEvent(
            time=time,
            location=location,
            facility=facility,
            severity=severity,
            entry_data=entry_data,
            job_id=_require_int(doc, "job_id", NO_JOB),
            event_type=event_type,
            subcategory=subcategory,
        )
    except ValueError as exc:  # RasEvent's own invariants (time >= 0, ...)
        raise ProtocolError(str(exc)) from None


def warning_to_dict(warning: FailureWarning) -> dict[str, Any]:
    """JSON-ready payload for one emitted failure warning."""
    return {
        "issued_at": warning.issued_at,
        "horizon_start": warning.horizon_start,
        "horizon_end": warning.horizon_end,
        "confidence": warning.confidence,
        "source": warning.source,
        "detail": warning.detail,
    }


# --------------------------------------------------------------------- #
# Frame codec
# --------------------------------------------------------------------- #


def encode_frame(doc: dict[str, Any]) -> bytes:
    """One request/response object as a newline-terminated JSON line."""
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_frame(data: Union[bytes, str]) -> dict[str, Any]:
    """Parse one line into a JSON object (the shared request/response shell)."""
    if isinstance(data, str):
        data = data.encode()
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame exceeds {MAX_LINE_BYTES} bytes ({len(data)} received)"
        )
    text = data.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("frame must be a JSON object")
    return doc


@dataclass(frozen=True)
class Request:
    """One decoded, validated client request."""

    op: str
    stream: str = ""
    events: tuple[RasEvent, ...] = ()


def decode_request(data: Union[bytes, str]) -> Request:
    """Decode and validate one request line into a :class:`Request`."""
    doc = decode_frame(data)
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {sorted(OPS)}")

    stream = doc.get("stream", "")
    if op in ("event", "batch") or stream:
        if not isinstance(stream, str) or not _STREAM_RE.match(stream):
            raise ProtocolError(
                "'stream' must match [A-Za-z0-9._-]{1,64}"
            )

    events: tuple[RasEvent, ...] = ()
    if op == "event":
        if "event" not in doc:
            raise ProtocolError("'event' op requires an 'event' payload")
        events = (event_from_dict(doc["event"]),)
    elif op == "batch":
        payload = doc.get("events")
        if not isinstance(payload, list):
            raise ProtocolError("'batch' op requires an 'events' array")
        if len(payload) > MAX_BATCH_EVENTS:
            raise ProtocolError(
                f"batch exceeds {MAX_BATCH_EVENTS} events ({len(payload)} sent)"
            )
        events = tuple(event_from_dict(item) for item in payload)
    return Request(op=op, stream=stream, events=events)


# --------------------------------------------------------------------- #
# Response helpers
# --------------------------------------------------------------------- #


def ok_response(**fields: Any) -> dict[str, Any]:
    """A success response shell."""
    return {"ok": True, **fields}


def error_response(reason: str, **fields: Any) -> dict[str, Any]:
    """A protocol/state error response shell (connection stays usable)."""
    return {"ok": False, "error": reason, **fields}


def busy_response(accepted: int, queue_depth: int) -> dict[str, Any]:
    """The backpressure response: retry the unsent tail after a pause."""
    return {
        "ok": False,
        "busy": True,
        "accepted": accepted,
        "queue_depth": queue_depth,
    }


# --------------------------------------------------------------------- #
# Minimal HTTP bridging (GET-only scrape endpoints on the same port)
# --------------------------------------------------------------------- #

_HTTP_STATUS = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}


def is_http_request(line: bytes) -> bool:
    """True if the first line of a connection looks like an HTTP request."""
    return line.startswith((b"GET ", b"HEAD "))


def http_request_path(line: bytes) -> str:
    """The request path of an HTTP request line (query string stripped)."""
    parts = line.decode("ascii", errors="replace").split()
    if len(parts) < 2:
        raise ProtocolError("malformed HTTP request line")
    return parts[1].partition("?")[0]


def http_response(status: int, body: str) -> bytes:
    """A complete minimal HTTP/1.0 response (server closes after writing)."""
    payload = body.encode()
    head = (
        f"HTTP/1.0 {status} {_HTTP_STATUS.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload
