"""Stream partitioning for the detector pool.

A Blue Gene/L installation is not one event stream: midplanes fail (and are
serviced) independently, and jobs land on disjoint partitions.  The serving
engine therefore shards the incoming stream by a *key* and runs one detector
per shard.  Shard assignment must be

- **deterministic** — the same event always lands on the same shard, across
  processes and replay orders (no ``hash()``, which is salted per process);
- **vectorizable** — whole stores are partitioned in one pass over the
  (small) intern tables, never per row.

``crc32`` of the key string satisfies both; job ids shard by value directly.
"""

from __future__ import annotations

from zlib import crc32

import numpy as np

from repro.ras.store import EventStore
from repro.util.validation import check_positive

#: Supported shard keys.
SHARD_KEYS = ("midplane", "job")


def midplane_of(location: str) -> str:
    """The midplane prefix of a location code (``R00-M1-N03-C02`` -> ``R00-M1``).

    Locations above midplane granularity (a bare rack, a service card path,
    or free-form text) shard by their full string — stable, just coarser.
    """
    parts = location.split("-", 2)
    if len(parts) >= 2 and parts[1][:1] == "M":
        return parts[0] + "-" + parts[1]
    return location


def shard_of_key(key: str, shards: int) -> int:
    """Deterministic shard of one key string (process-stable, unsalted)."""
    return crc32(key.encode("utf-8")) % shards


def shard_ids(store: EventStore, key: str, shards: int) -> np.ndarray:
    """Per-row shard assignment for a whole store, vectorized.

    ``key="midplane"`` maps each interned location to its midplane and
    shards by ``crc32``; ``key="job"`` shards by job id.  Work is
    O(intern-table size + n) — the per-row step is one fancy-indexing or
    modulo operation.
    """
    check_positive(shards, "shards")
    if key == "job":
        return (store.jobs % shards).astype(np.int64)
    if key == "midplane":
        table = np.array(
            [shard_of_key(midplane_of(loc), shards) for loc in store.location_table]
            or [0],
            dtype=np.int64,
        )
        return table[store.location_ids]
    raise ValueError(f"unknown shard key {key!r}; choose from {SHARD_KEYS}")
