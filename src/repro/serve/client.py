"""Synthetic-load client for the ingestion daemon (the CLI ``emit`` verb).

:func:`emit_events` partitions a time-sorted event list round-robin across
``streams`` stream ids (round-robin over a sorted list keeps every
sub-stream individually time-ordered), opens one connection per stream and
pushes ``batch`` frames concurrently.  A ``BUSY`` response is the
daemon's backpressure contract — the client backs off and resends the
unsent tail, so the tally distinguishes throughput limited by the wire
from events genuinely rejected.

This is the reference producer implementation: anything that speaks the
protocol the same way (batch, watch for ``busy``, retry the tail) will
interoperate; see docs/operations.md.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional, Sequence

from repro.ras.events import RasEvent
from repro.serve.protocol import decode_frame, encode_frame, event_to_dict


@dataclass
class StreamTally:
    """What one emitter coroutine managed to deliver."""

    stream_id: str
    sent: int = 0
    busy_retries: int = 0
    errors: list[str] = field(default_factory=list)
    final_stats: Optional[dict[str, Any]] = None


@dataclass
class EmitReport:
    """Aggregate outcome of one synthetic-load run."""

    tallies: list[StreamTally]
    seconds: float

    @property
    def sent(self) -> int:
        return sum(t.sent for t in self.tallies)

    @property
    def busy_retries(self) -> int:
        return sum(t.busy_retries for t in self.tallies)

    @property
    def errors(self) -> list[str]:
        return [e for t in self.tallies for e in t.errors]

    @property
    def events_per_sec(self) -> float:
        if self.seconds <= 0.0:
            return float("inf") if self.sent else 0.0
        return self.sent / self.seconds


def partition_round_robin(
    events: Sequence[RasEvent], streams: Sequence[str]
) -> dict[str, list[RasEvent]]:
    """Deal a time-sorted event sequence across stream ids, round-robin."""
    parts: dict[str, list[RasEvent]] = {s: [] for s in streams}
    n = len(streams)
    for i, event in enumerate(events):
        parts[streams[i % n]].append(event)
    return parts


async def _emit_stream(
    host: str,
    port: int,
    stream_id: str,
    events: list[RasEvent],
    *,
    batch: int,
    retry_delay: float,
    max_retries: int,
    fetch_stats: bool,
) -> StreamTally:
    tally = StreamTally(stream_id=stream_id)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        position = 0
        retries_left = max_retries
        while position < len(events):
            chunk = events[position : position + batch]
            frame = {
                "op": "batch",
                "stream": stream_id,
                "events": [event_to_dict(ev) for ev in chunk],
            }
            writer.write(encode_frame(frame))
            await writer.drain()
            response = decode_frame(await reader.readline())
            if response.get("ok"):
                accepted = int(response.get("accepted", len(chunk)))
                tally.sent += accepted
                position += accepted
                retries_left = max_retries
            elif response.get("busy"):
                accepted = int(response.get("accepted", 0))
                tally.sent += accepted
                position += accepted
                tally.busy_retries += 1
                retries_left -= 1
                if retries_left <= 0:
                    tally.errors.append(
                        f"{stream_id}: gave up after {max_retries} busy retries"
                    )
                    break
                await asyncio.sleep(retry_delay)
            else:
                tally.errors.append(
                    f"{stream_id}: {response.get('error', 'unknown error')}"
                )
                break
        if fetch_stats and not tally.errors:
            writer.write(encode_frame({"op": "stats", "stream": stream_id}))
            await writer.drain()
            response = decode_frame(await reader.readline())
            if response.get("ok"):
                tally.final_stats = response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    return tally


async def _request_drain(host: str, port: int) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame({"op": "drain"}))
        await writer.drain()
        await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def emit_events(
    events: Sequence[RasEvent],
    *,
    host: str = "127.0.0.1",
    port: int,
    streams: Sequence[str] = ("stream-0", "stream-1", "stream-2"),
    batch: int = 256,
    retry_delay: float = 0.02,
    max_retries: int = 200,
    fetch_stats: bool = True,
    drain_after: bool = False,
) -> EmitReport:
    """Drive ``events`` at the daemon across concurrent per-stream emitters."""
    parts = partition_round_robin(events, list(streams))
    t0 = perf_counter()
    tallies = await asyncio.gather(
        *(
            _emit_stream(
                host,
                port,
                stream_id,
                part,
                batch=batch,
                retry_delay=retry_delay,
                max_retries=max_retries,
                fetch_stats=fetch_stats,
            )
            for stream_id, part in parts.items()
        )
    )
    if drain_after:
        await _request_drain(host, port)
    return EmitReport(tallies=list(tallies), seconds=perf_counter() - t0)
