"""Sharded detector pool: many independent streams, one fitted model.

:class:`DetectorPool` runs one :class:`~repro.online.detector.OnlineSession`
per shard of the incoming stream (see :mod:`repro.serve.sharding` for the
partition keys).  Two entry points:

- :meth:`DetectorPool.process` — daemon mode: route one event to its shard's
  persistent session and return the warnings it raised.
- :meth:`DetectorPool.replay` — throughput mode: partition a whole classified
  store, replay every shard through the batched columnar path
  (:meth:`~repro.online.detector.OnlineSession.process_store`), and return a
  :class:`PoolReport` with per-shard and combined statistics.

Replay optionally fans shards out across processes
(``jobs > 1`` or ``REPRO_JOBS``), reusing the evaluation engine's
worker-shipping pattern: the fitted meta-learner travels once per worker via
the pool initializer, shard sub-stores travel once per task, and results come
back in shard order — serial and parallel replays are bit-for-bit identical.

Observability (parent process): a ``serve.replay`` span,
``serve.shard_events`` counter, ``serve.feed_seconds`` per-shard histogram,
``serve.pending_warnings`` per-shard histogram and a ``serve.events_per_sec``
gauge.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from repro.evaluation.engine import resolve_jobs
from repro.meta.stacked import MetaLearner
from repro.obs import get_registry
from repro.online.detector import OnlineSession
from repro.online.resolution import SessionStats
from repro.predictors.base import FailureWarning
from repro.ras.events import RasEvent
from repro.ras.store import EventStore
from repro.serve.sharding import SHARD_KEYS, midplane_of, shard_ids, shard_of_key
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ShardReport:
    """Replay result of one shard (its events, in stream order)."""

    shard: int
    events: int
    seconds: float
    stats: SessionStats
    warnings: list[FailureWarning]


@dataclass(frozen=True)
class PoolReport:
    """Aggregate replay result across every shard of a store."""

    key: str
    shards: list[ShardReport]
    seconds: float
    combined: SessionStats = field(init=False)

    def __post_init__(self) -> None:
        combined = SessionStats()
        for shard in self.shards:
            combined.merge(shard.stats)
        object.__setattr__(self, "combined", combined)

    @property
    def events(self) -> int:
        return sum(s.events for s in self.shards)

    @property
    def warnings_total(self) -> int:
        return sum(len(s.warnings) for s in self.shards)

    @property
    def events_per_sec(self) -> float:
        if self.seconds <= 0.0:
            return float("inf") if self.events else 0.0
        return self.events / self.seconds


def _replay_shard(
    meta: MetaLearner, shard: int, store: EventStore, finalize: bool
) -> ShardReport:
    """Replay one shard's sub-store on a fresh session (both backends)."""
    t0 = perf_counter()
    session = OnlineSession(meta)
    warnings = session.process_store(store)
    stats = session.finish() if finalize else session.stats
    return ShardReport(
        shard=shard,
        events=len(store),
        seconds=perf_counter() - t0,
        stats=stats,
        warnings=warnings,
    )


# Per-worker global, installed once by the pool initializer so the fitted
# meta-learner is not re-pickled for every shard task.
_WORKER_META: Optional[MetaLearner] = None


def _init_worker(meta: MetaLearner) -> None:
    global _WORKER_META
    _WORKER_META = meta


def _replay_in_worker(task: tuple[int, EventStore, bool]) -> ShardReport:
    assert _WORKER_META is not None, "worker initializer did not run"
    shard, store, finalize = task
    return _replay_shard(_WORKER_META, shard, store, finalize)


class DetectorPool:
    """A fixed set of detector shards fed from one fitted meta-learner.

    Each shard owns an independent :class:`OnlineSession` (its own dispatch
    state machine and warning resolver); events are routed by ``key``
    (``"midplane"`` or ``"job"``).  Sharding deliberately changes the stream
    a detector sees — that is the deployment model, one detector per
    midplane/job partition, not an approximation of the unsharded stream.
    With ``shards=1`` the pool degenerates to a single plain session and its
    output is bit-identical to :class:`OnlineSession` (tested).
    """

    def __init__(self, meta: MetaLearner, shards: int = 4, key: str = "midplane"):
        if key not in SHARD_KEYS:
            raise ValueError(f"unknown shard key {key!r}; choose from {SHARD_KEYS}")
        check_positive(shards, "shards")
        if not meta.is_fitted:
            raise ValueError("MetaLearner must be fitted before serving")
        self.meta = meta
        self.shards = int(shards)
        self.key = key
        self._sessions: dict[int, OnlineSession] = {}

    # ---------------------------------------------------------------- #
    # Daemon mode (event-at-a-time)
    # ---------------------------------------------------------------- #

    def shard_of(self, event: RasEvent) -> int:
        """The shard this event routes to (consistent with :func:`shard_ids`)."""
        if self.key == "job":
            return int(event.job_id % self.shards)
        return shard_of_key(midplane_of(event.location), self.shards)

    def session(self, shard: int) -> OnlineSession:
        """The shard's persistent session (created lazily)."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard must be in [0, {self.shards}), got {shard}")
        existing = self._sessions.get(shard)
        if existing is None:
            existing = self._sessions[shard] = OnlineSession(self.meta)
        return existing

    def process(self, event: RasEvent) -> list[FailureWarning]:
        """Route one event to its shard and process it there."""
        return self.session(self.shard_of(event)).process(event)

    def process_store(self, store: EventStore) -> list[FailureWarning]:
        """Feed a classified chunk through the *persistent* shard sessions.

        The daemon-mode counterpart of :meth:`replay`: shard state (window
        machines, pending warnings) carries over across calls, so a stream
        can be fed chunk by chunk — the lifecycle manager's serving loop.
        Warnings are returned grouped by shard, ascending (each shard's
        sub-list is in stream order).
        """
        warnings: list[FailureWarning] = []
        for shard, part in self.partition(store):
            warnings.extend(self.session(shard).process_store(part))
        return warnings

    def swap_model(self, model: object) -> int:
        """Hot-swap every live session onto a new fitted model.

        ``model`` is a fitted :class:`MetaLearner`, anything exposing one as
        ``.meta`` (e.g. a three-phase predictor or a loaded lifecycle
        snapshot) — the pool stays decoupled from the registry.  The swap
        happens at a warning-safe barrier: callers invoke it between events
        or chunks, each session's detector restarts cold on the new model,
        and pending old-model warnings keep resolving (see
        :meth:`~repro.online.detector.OnlineSession.swap_model`).  Returns
        the number of sessions swapped; later lazily-created sessions pick
        up the new model automatically.
        """
        meta = getattr(model, "meta", model)
        if not isinstance(meta, MetaLearner):
            raise TypeError(
                f"swap_model needs a MetaLearner or an object exposing one "
                f"as .meta, got {type(model).__name__}"
            )
        if not meta.is_fitted:
            raise ValueError("MetaLearner must be fitted before serving")
        obs = get_registry()
        t0 = perf_counter()
        pending = 0
        self.meta = meta
        for shard in sorted(self._sessions):
            session = self._sessions[shard]
            pending += session.pending_count
            session.swap_model(meta)
        seconds = perf_counter() - t0
        obs.observe("serve.swap_seconds", seconds)
        obs.counter("serve.swaps")
        obs.observe("serve.swap_pending_warnings", float(pending))
        return len(self._sessions)

    @property
    def pending_count(self) -> int:
        """Warnings pending across the persistent shard sessions."""
        return sum(s.pending_count for s in self._sessions.values())

    def combined_stats(self) -> SessionStats:
        """Merged counters across the persistent shard sessions."""
        combined = SessionStats()
        for shard in sorted(self._sessions):
            combined.merge(self._sessions[shard].stats)
        return combined

    def finish(self) -> SessionStats:
        """Finalize every persistent session; returns merged counters."""
        combined = SessionStats()
        for shard in sorted(self._sessions):
            combined.merge(self._sessions[shard].finish())
        return combined

    # ---------------------------------------------------------------- #
    # Replay mode (whole classified store, batched)
    # ---------------------------------------------------------------- #

    def partition(self, store: EventStore) -> list[tuple[int, EventStore]]:
        """Non-empty ``(shard, sub-store)`` pairs, ascending by shard.

        Each sub-store preserves stream order within its shard; intern
        tables are shared with the parent store (``select`` semantics).
        """
        assignment = shard_ids(store, self.key, self.shards)
        parts = []
        for shard in range(self.shards):
            idx = np.flatnonzero(assignment == shard)
            if len(idx):
                parts.append((shard, store.select(idx)))
        return parts

    def replay(
        self,
        store: EventStore,
        *,
        jobs: Optional[int] = None,
        finalize: bool = True,
        chunk_events: Optional[int] = None,
    ) -> PoolReport:
        """Partition and replay a whole classified store; returns the report.

        Replay uses fresh sessions (one per non-empty shard) so it never
        perturbs the persistent daemon-mode sessions.  ``finalize=True``
        resolves warnings still pending at end of stream (end-of-shift
        accounting); ``jobs`` follows the evaluation engine's convention
        (``None`` -> ``REPRO_JOBS`` -> serial).

        ``chunk_events`` switches to the streaming path: the store is read
        in contiguous slices of at most that many rows and each slice is
        partitioned and fed to per-shard sessions that persist across
        chunks.  On a columnar store this keeps only one chunk's shard
        materializations in RAM at a time; the report (per-shard warnings
        and stats) is identical to the whole-store replay.  Streaming
        replay is serial — ``jobs`` is ignored.
        """
        if chunk_events is not None:
            return self._replay_streaming(
                store, chunk_events=chunk_events, finalize=finalize
            )
        jobs = resolve_jobs(jobs)
        parts = self.partition(store)
        obs = get_registry()
        backend = "process" if (jobs > 1 and len(parts) > 1) else "serial"
        t0 = perf_counter()
        with obs.span(
            "serve.replay", backend=backend, key=self.key, shards=str(self.shards)
        ):
            if backend == "serial":
                reports = [
                    _replay_shard(self.meta, shard, part, finalize)
                    for shard, part in parts
                ]
            else:
                workers = min(jobs, len(parts))
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(self.meta,),
                ) as pool:
                    reports = list(
                        pool.map(
                            _replay_in_worker,
                            [(shard, part, finalize) for shard, part in parts],
                        )
                    )
        report = PoolReport(key=self.key, shards=reports, seconds=perf_counter() - t0)
        self._emit_replay_metrics(report)
        return report

    def _replay_streaming(
        self, store: EventStore, *, chunk_events: int, finalize: bool
    ) -> PoolReport:
        """Chunk-at-a-time replay with per-shard sessions carried across chunks.

        Chunks are zero-copy slices; only one chunk's shard partitions are
        materialized at any moment, so peak RSS is bounded by the chunk
        size, not the log size.  Per-shard event sequences are identical to
        :meth:`partition` of the whole store (partitioning preserves order
        and chunking only inserts boundaries), so warnings and stats match
        the batch replay bit for bit.
        """
        check_positive(chunk_events, "chunk_events")
        obs = get_registry()
        t0 = perf_counter()
        sessions: dict[int, OnlineSession] = {}
        warnings: dict[int, list[FailureWarning]] = {}
        events: dict[int, int] = {}
        seconds: dict[int, float] = {}
        with obs.span(
            "serve.replay",
            backend="streaming",
            key=self.key,
            shards=str(self.shards),
        ):
            for chunk in store.iter_chunks(chunk_events):
                for shard, part in self.partition(chunk):
                    s0 = perf_counter()
                    session = sessions.get(shard)
                    if session is None:
                        session = sessions[shard] = OnlineSession(self.meta)
                        warnings[shard] = []
                        events[shard] = 0
                        seconds[shard] = 0.0
                    warnings[shard].extend(session.process_store(part))
                    events[shard] += len(part)
                    seconds[shard] += perf_counter() - s0
            reports = []
            for shard in sorted(sessions):
                session = sessions[shard]
                stats = session.finish() if finalize else session.stats
                reports.append(
                    ShardReport(
                        shard=shard,
                        events=events[shard],
                        seconds=seconds[shard],
                        stats=stats,
                        warnings=warnings[shard],
                    )
                )
        report = PoolReport(key=self.key, shards=reports, seconds=perf_counter() - t0)
        self._emit_replay_metrics(report)
        return report

    def _emit_replay_metrics(self, report: PoolReport) -> None:
        obs = get_registry()
        for shard_report in report.shards:
            obs.counter(
                "serve.shard_events",
                shard_report.events,
                shard=str(shard_report.shard),
            )
            obs.observe("serve.feed_seconds", shard_report.seconds)
            obs.observe(
                "serve.pending_warnings",
                float(
                    shard_report.stats.warnings
                    - shard_report.stats.hits
                    - shard_report.stats.false_alarms
                ),
            )
        obs.gauge("serve.events_per_sec", report.events_per_sec)
