"""Extension — end-to-end job rescue (the paper's §1 use case, concretely).

Replays the generated ANL machine — its actual job schedule, failures and
the meta-learner's warnings — through prediction-driven checkpointing, and
reports the node-seconds of computation rescued.  This is the whole paper's
argument in one number: prediction turns a measurable share of
restart-from-scratch losses into restart-from-checkpoint losses.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.scheduling import simulate_rescue
from repro.meta.stacked import MetaLearner
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


@pytest.fixture(scope="module")
def replay(anl_bench_log, anl_bench_events):
    cut = int(len(anl_bench_events) * 0.6)
    train = anl_bench_events.select(slice(0, cut))
    test = anl_bench_events.select(slice(cut, len(anl_bench_events)))
    return anl_bench_log.job_trace, train, test


def test_ext_rescue_with_meta(replay, benchmark):
    trace, train, test = replay

    def run():
        meta = MetaLearner(
            prediction_window=30 * MINUTE, rule_window=15 * MINUTE
        ).fit(train)
        warnings = meta.predict(test)
        return simulate_rescue(trace, test, warnings, checkpoint_cost=60)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — job rescue with the meta-learner (ANL, ckpt=60 s)",
        [
            ("jobs killed by localized failures", out.jobs_hit),
            ("... restarting from a proactive checkpoint",
             out.jobs_with_checkpoint),
            ("reactive loss (node-hours)", round(out.reactive_loss / 3600)),
            ("proactive loss + overhead (node-hours)",
             round(out.proactive_total / 3600)),
            ("rescued (node-hours)", round(out.rescued / 3600)),
            ("rescue ratio", f"{out.rescue_ratio:.1%}"),
        ],
    )
    assert out.jobs_hit > 0
    assert out.rescued > 0, "prediction must rescue net node-hours"
    assert out.jobs_with_checkpoint / out.jobs_hit > 0.3


def test_ext_rescue_meta_vs_statistical(replay, benchmark):
    trace, train, test = replay

    def run():
        meta = MetaLearner(
            prediction_window=30 * MINUTE, rule_window=15 * MINUTE
        ).fit(train)
        stat = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(train)
        return (
            simulate_rescue(trace, test, meta.predict(test),
                            checkpoint_cost=60),
            simulate_rescue(trace, test, stat.predict(test),
                            checkpoint_cost=60),
        )

    meta_out, stat_out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — rescue ratio by predictor (ANL)",
        [
            ("meta", f"{meta_out.rescue_ratio:.1%}"),
            ("statistical", f"{stat_out.rescue_ratio:.1%}"),
        ],
    )
    assert meta_out.rescued >= stat_out.rescued
