"""Table 5 — statistical predictor precision/recall (10-fold CV).

The paper's protocol: trigger categories network and I/O-stream, prediction
band 5 minutes to 1 hour after the trigger failure, 10-fold cross-validation.
Paper numbers: ANL P=0.5157 R=0.4872; SDSC P=0.2837 R=0.3117.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.evaluation.paper import TABLE5
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE


def _factory():
    return StatisticalPredictor(
        window=HOUR,
        lead=5 * MINUTE,
        categories=[MainCategory.NETWORK, MainCategory.IOSTREAM],
    )


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_table5_statistical_cv(
    system, anl_bench_events, sdsc_bench_events, benchmark
):
    events = anl_bench_events if system == "ANL" else sdsc_bench_events
    cv = benchmark.pedantic(
        lambda: cross_validate(_factory, events, k=10), rounds=1, iterations=1
    )
    paper = TABLE5[system]
    report(
        f"Table 5 — {system} statistical predictor (10-fold CV)",
        [
            ("precision (measured)", round(cv.precision, 4)),
            ("precision (paper)", paper["precision"]),
            ("recall (measured)", round(cv.recall, 4)),
            ("recall (paper)", paper["recall"]),
        ],
    )
    assert cv.precision == pytest.approx(paper["precision"], abs=0.10)
    assert cv.recall == pytest.approx(paper["recall"], abs=0.10)


def test_table5_anl_dominates_sdsc(
    anl_bench_events, sdsc_bench_events, benchmark
):
    """The paper's cross-system observation: accuracy 'may vary
    significantly for different Blue Gene/L systems', with ANL higher."""

    def run():
        anl = cross_validate(_factory, anl_bench_events, k=10)
        sdsc = cross_validate(_factory, sdsc_bench_events, k=10)
        return anl, sdsc

    anl, sdsc = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Table 5 — cross-system ordering",
        [
            ("ANL  P/R", f"{anl.precision:.3f} / {anl.recall:.3f}"),
            ("SDSC P/R", f"{sdsc.precision:.3f} / {sdsc.recall:.3f}"),
        ],
    )
    assert anl.precision > sdsc.precision
    assert anl.recall > sdsc.recall


def test_table5_trigger_autoselection(anl_bench_events, benchmark):
    """Without forcing categories, training discovers network/iostream as
    the temporally-correlated triggers (paper §3.2.1's analysis step)."""
    sp = benchmark.pedantic(
        lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(
            anl_bench_events
        ),
        rounds=1,
        iterations=1,
    )
    probs = {c.value: round(p, 3) for c, p in sp.follow_probability.items()}
    report(
        "Table 5 — learned follow-up probabilities (ANL)",
        sorted(probs.items(), key=lambda kv: -kv[1]),
    )
    assert MainCategory.NETWORK in sp.trigger_categories
    assert MainCategory.IOSTREAM in sp.trigger_categories
