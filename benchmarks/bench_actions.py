"""Benchmark — the prediction-to-action engine's economics and determinism.

Two gates for ``repro.actions`` (see docs/actions.md):

1. **Economics** — on the generated ANL machine, the cost-aware policy nets
   positive node-seconds and beats both the always-checkpoint policy and
   never-acting, across three checkpoint-cost regimes (cheap, paper-ish,
   expensive).  Always-checkpoint degrades as checkpoints get pricier; the
   cost-aware composite declines unprofitable actions instead.
2. **Bit identity** — the ledger from a one-shot replay (the serve-replay
   path) is byte-identical, digest and all, to the ledger drained from a
   live daemon fed the same stream over the wire in arbitrary batches.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import report
from repro.actions import ActionEngine, CostModel, TraceJobView, build_policy
from repro.meta.stacked import MetaLearner
from repro.serve import DetectorPool
from repro.serve.daemon import DaemonConfig, IngestDaemon
from repro.serve.protocol import decode_frame, encode_frame, event_to_dict
from repro.util.timeutil import MINUTE

#: Checkpoint-cost regimes (seconds): cheap, the rescue bench's 2×, pricey.
REGIMES = (30.0, 120.0, 240.0)


@pytest.fixture(scope="module")
def replay(anl_bench_log, anl_bench_events):
    cut = int(len(anl_bench_events) * 0.6)
    train = anl_bench_events.select(slice(0, cut))
    test = anl_bench_events.select(slice(cut, len(anl_bench_events)))
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(train)
    return anl_bench_log.job_trace, test, meta.predict(test)


def _ledger(policy_name, trace, test, warnings, checkpoint_cost):
    engine = ActionEngine(
        build_policy(policy_name),
        CostModel(checkpoint_cost=checkpoint_cost),
        view=TraceJobView(trace),
        seed=0,
    )
    engine.observe_store(test, list(warnings))
    return engine.finalize()


def test_bench_cost_aware_beats_baselines(replay, benchmark):
    trace, test, warnings = replay

    def run():
        return {
            ckpt: {
                name: _ledger(name, trace, test, warnings, ckpt)
                for name in ("cost-aware", "checkpoint", "never")
            }
            for ckpt in REGIMES
        }

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for ckpt in REGIMES:
        ledgers = grid[ckpt]
        rows.append((
            f"ckpt={ckpt:g}s  cost-aware / always-ckpt (net node-hours)",
            round(ledgers["cost-aware"].net_node_seconds / 3600),
            round(ledgers["checkpoint"].net_node_seconds / 3600),
        ))
    reactive = grid[REGIMES[0]]["never"].reactive_loss
    rows.append(("reactive loss, no action (node-hours)",
                 round(reactive / 3600)))
    report("Actions — policy economics across checkpoint-cost regimes (ANL)",
           rows)

    for ckpt in REGIMES:
        aware = grid[ckpt]["cost-aware"]
        always = grid[ckpt]["checkpoint"]
        never = grid[ckpt]["never"]
        assert never.net_node_seconds == 0.0
        assert never.taken == {}
        assert aware.net_node_seconds > 0.0, (
            f"cost-aware must net positive node-seconds at ckpt={ckpt}"
        )
        assert aware.net_node_seconds > always.net_node_seconds, (
            f"cost-aware must beat always-checkpoint at ckpt={ckpt}"
        )
        assert aware.net_node_seconds > never.net_node_seconds


async def _send_frames(port, frames):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for frame in frames:
            writer.write(encode_frame(frame))
            await writer.drain()
            responses.append(decode_frame(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


def test_bench_replay_and_daemon_drain_bit_identical(replay, benchmark):
    _, test, _ = replay
    config = DaemonConfig(port=0, queue_bound=4096, shards=2, chunk_events=256)
    events = list(test)
    cut = int(len(test) * 0.5)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(test.select(slice(0, cut)))

    def factory(stream_id):
        return ActionEngine(build_policy("cost-aware"), CostModel(), seed=7)

    async def daemon_run():
        async with IngestDaemon(meta, config, action_factory=factory) as daemon:
            frames = [
                {
                    "op": "batch",
                    "stream": "s",
                    "events": [event_to_dict(e) for e in events[i:i + 500]],
                }
                for i in range(0, len(events), 500)
            ]
            responses = await _send_frames(daemon.port, frames)
            assert all(r["ok"] for r in responses)
            return await daemon.drain()

    def run():
        drained = asyncio.run(daemon_run()).streams[0].ledger
        pool = DetectorPool(meta, shards=config.shards, key=config.key)
        warnings = pool.process_store(test)
        one_shot = ActionEngine(build_policy("cost-aware"), CostModel(), seed=7)
        one_shot.observe_store(test, list(warnings))
        return drained, one_shot.finalize()

    drained, one_shot = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Actions — serve-replay vs daemon-drain ledger identity (ANL)",
        [
            ("events over the wire", len(events)),
            ("actions settled", drained.settled),
            ("net node-hours", round(drained.net_node_seconds / 3600)),
            ("digests equal", drained.digest() == one_shot.digest()),
        ],
    )
    assert drained.digest() == one_shot.digest(), (
        "daemon-drained ledger must be bit-identical to the one-shot replay"
    )
