"""§3.3 — rule-generation and matching cost.

The paper: "the rule generation process varies from 35 seconds for a
5-minute prediction window to 167 seconds for a 1-hour prediction window;
and the rule matching process is trivial.  Therefore, it is practical to
deploy the meta-learner as an online prediction engine."

Absolute times are testbed-specific (2007 hardware, full-scale log); we
reproduce the *shape*: generation cost grows with the window (bigger
event-sets), matching is orders of magnitude cheaper than generation per
event, and the meta-learner's cost stays within a small factor of the
rule-based method's.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.evaluation.paper import RULE_GENERATION_SECONDS
from repro.meta.stacked import MetaLearner
from repro.mining.transactions import build_event_sets
from repro.mining.rules import generate_rules
from repro.predictors.rulebased import RuleBasedPredictor
from repro.util.timeutil import MINUTE


@pytest.mark.parametrize("window_min", [5, 15, 30, 60])
def test_timing_rule_generation(window_min, anl_bench_events, benchmark):
    def generate():
        db = build_event_sets(anl_bench_events, rule_window=window_min * MINUTE)
        return generate_rules(db)

    ruleset = benchmark(generate)
    assert ruleset is not None


def test_timing_generation_grows_with_window(anl_bench_events, benchmark):
    """The paper's cost growth comes from bigger event-sets at bigger
    windows.  At bench scale absolute times are fractions of a millisecond
    and jittery, so the asserted quantity is the deterministic workload
    (total items across transactions); wall-clock is reported alongside."""

    def measure():
        out = {}
        for m in (5, 60):
            db = build_event_sets(anl_bench_events, rule_window=m * MINUTE)
            work = sum(len(t) for t in db.transactions())
            t0 = time.perf_counter()
            for _ in range(5):
                generate_rules(db)
            out[m] = (work, (time.perf_counter() - t0) / 5)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "§3.3 — rule generation cost vs window (scaled substrate)",
        [
            ("5-min window: items / seconds",
             f"{out[5][0]} / {out[5][1]:.4f}"),
            ("60-min window: items / seconds",
             f"{out[60][0]} / {out[60][1]:.4f}"),
            ("workload growth factor", round(out[60][0] / out[5][0], 2)),
            ("paper: 35 s -> 167 s, factor", round(
                RULE_GENERATION_SECONDS["1h_window"]
                / RULE_GENERATION_SECONDS["5min_window"], 2)),
        ],
    )
    assert out[60][0] > out[5][0], "event-set workload must grow with window"


def test_timing_matching_is_trivial(anl_bench_events, benchmark):
    """Rule matching per event is microseconds — 'trivial' vs generation."""
    cut = int(len(anl_bench_events) * 0.7)
    rb = RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=30 * MINUTE
    ).fit(anl_bench_events.select(slice(0, cut)))
    test = anl_bench_events.select(slice(cut, len(anl_bench_events)))

    t0 = time.perf_counter()
    benchmark(lambda: rb.predict(test))
    elapsed = time.perf_counter() - t0
    per_event_us = elapsed / max(1, len(test)) * 1e6
    report(
        "§3.3 — rule matching cost",
        [
            ("events matched", len(test)),
            ("per-event cost (us, bench overhead incl.)", round(per_event_us, 1)),
        ],
    )


def test_timing_meta_cost_comparable_to_rule(anl_bench_events, benchmark):
    """'Its overall cost is about the same as the rule-based method.'"""
    cut = int(len(anl_bench_events) * 0.7)
    train = anl_bench_events.select(slice(0, cut))
    test = anl_bench_events.select(slice(cut, len(anl_bench_events)))

    def run():
        t0 = time.perf_counter()
        RuleBasedPredictor(
            rule_window=15 * MINUTE, prediction_window=30 * MINUTE
        ).fit(train).predict(test)
        rule_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        MetaLearner(
            prediction_window=30 * MINUTE, rule_window=15 * MINUTE
        ).fit(train).predict(test)
        meta_t = time.perf_counter() - t0
        return rule_t, meta_t

    rule_t, meta_t = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "§3.3 — meta vs rule end-to-end cost",
        [
            ("rule fit+predict (s)", round(rule_t, 3)),
            ("meta fit+predict (s)", round(meta_t, 3)),
            ("ratio", round(meta_t / rule_t, 2)),
            ("paper", "about the same"),
        ],
    )
    assert meta_t < 4 * rule_t
