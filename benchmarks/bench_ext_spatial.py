"""Extension — spatial failure statistics (context: Liang et al., DSN'06).

The paper's closest related work analyzes spatial as well as temporal
correlation; our substrate carries full location codes, so this bench
reports the classic spatial statistics on both generated logs: hotspot
ranking, spatial concentration, and co-location of temporally close
failures.
"""

import math

from benchmarks.conftest import report
from repro.bgl.locations import LocationKind
from repro.evaluation.spatial import (
    colocated_fraction,
    failure_counts_by_location,
    hotspots,
    spatial_concentration,
)
from repro.util.timeutil import HOUR


def test_ext_spatial_midplane_counts(anl_bench_events, benchmark):
    counts = benchmark(
        lambda: failure_counts_by_location(
            anl_bench_events, LocationKind.MIDPLANE
        )
    )
    rows = [(loc, n) for loc, n in sorted(counts.items())]
    report("Extension — ANL failures per midplane", rows)
    assert sum(counts.values()) == len(anl_bench_events.fatal_events())
    # Both midplanes of the single-rack system see failures.
    assert counts.get("R00-M0", 0) > 0 and counts.get("R00-M1", 0) > 0


def test_ext_spatial_hotspots_and_concentration(
    anl_bench_events, sdsc_bench_events, benchmark
):
    def run():
        return {
            "ANL": (
                hotspots(anl_bench_events, LocationKind.NODECARD, top=5),
                spatial_concentration(anl_bench_events, LocationKind.NODECARD),
            ),
            "SDSC": (
                hotspots(sdsc_bench_events, LocationKind.NODECARD, top=5),
                spatial_concentration(sdsc_bench_events, LocationKind.NODECARD),
            ),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for system, (top, gini) in out.items():
        rows.append((f"{system} gini", round(gini, 3)))
        for loc, n in top[:3]:
            rows.append((f"  {system} hotspot", f"{loc}: {n}"))
    report("Extension — node-card hotspots and concentration", rows)
    for system, (top, gini) in out.items():
        assert 0.0 <= gini < 0.9
        assert top[0][1] >= top[-1][1]


def test_ext_spatial_colocation(anl_bench_events, benchmark):
    def run():
        return (
            colocated_fraction(anl_bench_events, within_seconds=HOUR,
                               level=LocationKind.MIDPLANE),
            colocated_fraction(anl_bench_events, within_seconds=HOUR,
                               level=LocationKind.NODECARD),
        )

    mid, card = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — co-location of failures within 1 h (ANL)",
        [
            ("same midplane", round(mid, 3)),
            ("same node card", round(card, 3)),
            ("expected", "midplane >> node card (2 vs 32 elements)"),
        ],
    )
    assert not math.isnan(mid)
    # Coarser levels are hit more often by construction.
    assert mid >= card
