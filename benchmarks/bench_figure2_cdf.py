"""Figure 2 — CDF of failure probability (waiting time to the next failure).

Regenerates the paper's Figure 2 series for both logs: for each time offset,
the fraction of failures followed by another failure within that offset.
The paper's qualitative findings: a significant share of failures happen in
close proximity, with ANL showing stronger short-range correlation than
SDSC, dominated by network and I/O-stream failures.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.predictors.statistical import failure_gap_cdf
from repro.taxonomy.categories import MainCategory
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.util.timeutil import HOUR, MINUTE

GRID = np.array(
    [5 * MINUTE, 15 * MINUTE, 30 * MINUTE, HOUR, 2 * HOUR, 6 * HOUR,
     24 * HOUR], dtype=float,
)


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_figure2_cdf(system, anl_bench_events, sdsc_bench_events, benchmark):
    events = anl_bench_events if system == "ANL" else sdsc_bench_events
    grid, cdf = benchmark(lambda: failure_gap_cdf(events, GRID))

    rows = [("offset", "P(next failure within offset)")]
    for g, c in zip(grid, cdf):
        label = f"{int(g // MINUTE)} min" if g < HOUR else f"{g / HOUR:g} h"
        rows.append((label, round(float(c), 3)))
    report(f"Figure 2 — {system} failure-gap CDF", rows)

    # Shape assertions: monotone; substantial mass within the hour
    # ("a significant number of failures happen in close proximity").
    assert np.all(np.diff(cdf) >= 0)
    within_hour = float(cdf[GRID.tolist().index(HOUR)])
    assert within_hour > 0.25
    assert float(cdf[-1]) > 0.7


def test_figure2_anl_stronger_short_range_correlation(
    anl_bench_events, sdsc_bench_events, benchmark
):
    def curve():
        _, anl = failure_gap_cdf(anl_bench_events, GRID)
        _, sdsc = failure_gap_cdf(sdsc_bench_events, GRID)
        return anl, sdsc

    anl, sdsc = benchmark.pedantic(curve, rounds=1, iterations=1)
    report(
        "Figure 2 — short-range correlation (within 1 h)",
        [("ANL", round(float(anl[3]), 3)), ("SDSC", round(float(sdsc[3]), 3))],
    )
    # Table 5's ANL >> SDSC statistical accuracy implies this ordering.
    assert anl[3] > sdsc[3]


def test_figure2_netio_dominates_proximity(anl_bench_events, benchmark):
    """Paper: 'network and I/O stream related failures form a majority of
    such failures' (the close-proximity ones)."""

    def netio_share():
        clf = TaxonomyClassifier()
        fatal = anl_bench_events.fatal_events()
        cat_ids = clf.main_category_ids(fatal)
        cats = list(MainCategory)
        times = fatal.times.astype(float)
        gaps_prev = np.diff(times, prepend=times[0] - 1e12)
        gaps_next = np.diff(times, append=times[-1] + 1e12)
        close = (gaps_prev <= HOUR) | (gaps_next <= HOUR)
        netio = np.isin(
            cat_ids,
            [cats.index(MainCategory.NETWORK), cats.index(MainCategory.IOSTREAM)],
        )
        return float(netio[close].mean())

    share = benchmark.pedantic(netio_share, rounds=1, iterations=1)
    report(
        "Figure 2 — net/io share of close-proximity failures",
        [("measured", round(share, 3)), ("paper", "majority (> 0.5)")],
    )
    assert share > 0.5
