"""Incremental mining engine: O(delta) retrains vs from-scratch refits.

Two measurements, each with a built-in bit-identity gate (the engine's whole
contract is "exactly the from-scratch result, cheaper" — a fast-but-different
fit would be a correctness bug, not a win):

- **Sliding-window retrain speedup** — a lifecycle-shaped scenario: the
  training window slides across the bench stream in chunk-sized steps (the
  stream's event mix drifts as it goes, so every step adds and evicts real
  transactions), and each step fits the same rule spec twice: from scratch
  (``spec.build().fit``) and through the maintained
  :class:`~repro.evaluation.incremental.IncrementalFitter`.  Gates: every
  step's learned state is byte-identical, and the **steady-state** median
  speedup (excluding the first incremental fit, which builds the maintained
  state from scratch) is at least :data:`MIN_SPEEDUP`.
- **spec.grid() fit reuse** — a ``prediction_window`` sweep runs twice,
  plain and incremental.  Every grid point shares one mining recipe, so the
  incremental run syncs one maintained miner across the whole grid x folds
  matrix.  Gates: fold metrics are identical, and the reuse counters show
  the maintained structure actually carried work across points (suffix
  partitions reused, every supported fit routed through the fitter).

The spec mines at ``min_support=0.01`` over a 2 h rule window — a deliberately
mining-heavy configuration (the paper's 0.04 cutoff on this bench log mines
in milliseconds, which would benchmark fixed overheads, not the engine).
Everything is seeded; reruns are bit-identical.
"""

from __future__ import annotations

import statistics
from time import perf_counter

from benchmarks.conftest import report
from repro.core.serialize import learned_state_to_dict
from repro.evaluation.incremental import IncrementalFitter
from repro.evaluation.spec import PredictorSpec
from repro.evaluation.sweep import sweep
from repro.obs import get_registry
from repro.util.timeutil import MINUTE

#: Mining-heavy rule configuration (see module docstring).
RULE_WINDOW = 120 * MINUTE
MIN_SUPPORT = 0.01

#: Sliding scenario: window span and per-retrain slide, as stream fractions.
WINDOW_FRAC = 0.6
STEP_FRAC = 0.002
RETRAINS = 8

#: Acceptance gate: steady-state incremental retrains must be at least this
#: much faster than from-scratch refits of the same windows.
MIN_SPEEDUP = 5.0

#: Sweep-reuse scenario: predict-only axis, so one mining recipe spans it.
SWEEP_WINDOWS = [10 * MINUTE, 20 * MINUTE, 30 * MINUTE]
SWEEP_FOLDS = 3


def _spec() -> PredictorSpec:
    return PredictorSpec.rule(
        rule_window=RULE_WINDOW, min_support=MIN_SUPPORT
    )


def test_sliding_window_retrain_speedup(anl_bench_events):
    """Steady-state O(delta) retrains vs from-scratch, bit-identical."""
    events = anl_bench_events
    n = len(events)
    window_events = int(n * WINDOW_FRAC)
    step = max(1, int(n * STEP_FRAC))
    spec = _spec()
    fitter = IncrementalFitter()

    scratch_s: list[float] = []
    incremental_s: list[float] = []
    for i in range(RETRAINS):
        lo = i * step
        window = events.select(slice(lo, lo + window_events))

        t0 = perf_counter()
        direct = spec.build().fit(window)
        scratch_s.append(perf_counter() - t0)

        t0 = perf_counter()
        incremental = fitter.fit(spec, window)
        incremental_s.append(perf_counter() - t0)

        # The gate that makes the speedup meaningful: same learned state,
        # byte for byte, at every step of the schedule.
        assert learned_state_to_dict(incremental) == learned_state_to_dict(
            direct
        ), f"incremental fit diverged from scratch at step {i}"

    # Steady state: the first incremental fit builds the maintained state
    # from scratch and is expected to cost as much as a plain fit.
    scratch_med = statistics.median(scratch_s[1:])
    steady_med = statistics.median(incremental_s[1:])
    speedup = scratch_med / steady_med
    assert speedup >= MIN_SPEEDUP, (
        f"steady-state incremental retrain speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x gate (scratch {scratch_med * 1e3:.1f} ms, "
        f"incremental {steady_med * 1e3:.1f} ms)"
    )

    obs = get_registry()
    counters = {
        key[0] if isinstance(key, tuple) else key: value
        for key, value in obs.counters.items()
    }
    report(
        "incremental mining: sliding-window retrains "
        f"(window {window_events} events, slide {step})",
        [
            ("retrains", RETRAINS),
            ("from-scratch fit (median)", f"{scratch_med * 1e3:.1f} ms"),
            ("incremental cold fit", f"{incremental_s[0] * 1e3:.1f} ms"),
            ("incremental steady fit (median)", f"{steady_med * 1e3:.1f} ms"),
            ("steady-state speedup", f"{speedup:.1f}x (gate >= {MIN_SPEEDUP:.0f}x)"),
            ("suffixes reused / re-mined",
             f"{counters.get('mining.incremental.suffix_reused', 0)} / "
             f"{counters.get('mining.incremental.suffix_mined', 0)}"),
            ("body-count cache hits",
             counters.get("mining.incremental.body_cache_hits", 0)),
        ],
    )
    obs.gauge("mining.bench_incremental_speedup", speedup)
    obs.gauge("mining.bench_scratch_fit_ms", scratch_med * 1e3)
    obs.gauge("mining.bench_incremental_fit_ms", steady_med * 1e3)


def test_spec_grid_sweep_fit_reuse(anl_bench_events):
    """A predict-only sweep shares one maintained miner across the grid."""
    events = anl_bench_events
    spec = _spec()

    t0 = perf_counter()
    plain = sweep(
        spec.grid("prediction_window", SWEEP_WINDOWS), events, k=SWEEP_FOLDS
    )
    plain_seconds = perf_counter() - t0

    t0 = perf_counter()
    fast = sweep(
        spec.grid("prediction_window", SWEEP_WINDOWS),
        events,
        k=SWEEP_FOLDS,
        incremental=True,
    )
    fast_seconds = perf_counter() - t0

    # Identical fold metrics: the reuse must be invisible in the results.
    assert [p.window for p in plain] == [p.window for p in fast]
    for a, b in zip(plain, fast):
        assert a.result.fold_metrics == b.result.fold_metrics

    obs = get_registry()
    counters = {
        key[0] if isinstance(key, tuple) else key: value
        for key, value in obs.counters.items()
    }
    tasks = len(SWEEP_WINDOWS) * SWEEP_FOLDS
    fits = counters.get("engine.incremental_fits", 0)
    reused = counters.get("mining.incremental.suffix_reused", 0)
    assert fits == tasks, (
        f"expected all {tasks} sweep fits through the fitter, saw {fits}"
    )
    assert reused > 0, "sweep reused no suffix partitions across grid points"

    report(
        "incremental mining: spec.grid() prediction_window sweep "
        f"({len(SWEEP_WINDOWS)} points x {SWEEP_FOLDS} folds)",
        [
            ("plain sweep", f"{plain_seconds:.2f} s"),
            ("incremental sweep", f"{fast_seconds:.2f} s"),
            ("speedup", f"{plain_seconds / fast_seconds:.2f}x"),
            ("fits through maintained miner", fits),
            ("zero-delta fits",
             counters.get("engine.incremental_zero_delta", 0)),
            ("suffixes reused / re-mined",
             f"{reused} / {counters.get('mining.incremental.suffix_mined', 0)}"),
            ("body-count cache hits",
             counters.get("mining.incremental.body_cache_hits", 0)),
        ],
    )
    obs.gauge("mining.bench_sweep_speedup", plain_seconds / fast_seconds)
