"""Shared benchmark fixtures.

Benches run at ``BENCH_SCALE`` (a quarter of the paper's log span) unless a
particular table needs full-scale fatal structure; generation and Phase 1 are
session-scoped so the suite generates each log once.

Every bench prints a paper-vs-measured block; ``EXPERIMENTS.md`` records the
same numbers.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.ras.store import EventStore
from repro.synth.generator import GeneratedLog, LogGenerator
from repro.synth.profiles import anl_profile, sdsc_profile

#: Default bench scale: large enough for stable 10-fold CV, small enough to
#: keep the whole suite in minutes.
BENCH_SCALE = 0.25
BENCH_SEED = 11


@pytest.fixture(scope="session")
def anl_bench_log() -> GeneratedLog:
    return LogGenerator(anl_profile(), scale=BENCH_SCALE, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def sdsc_bench_log() -> GeneratedLog:
    return LogGenerator(sdsc_profile(), scale=BENCH_SCALE, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def anl_bench_events(anl_bench_log) -> EventStore:
    return ThreePhasePredictor().preprocess(anl_bench_log.raw).events


@pytest.fixture(scope="session")
def sdsc_bench_events(sdsc_bench_log) -> EventStore:
    return ThreePhasePredictor().preprocess(sdsc_bench_log.raw).events


def report(title: str, rows: list[tuple]) -> None:
    """Print a paper-vs-measured block (captured with ``-s``)."""
    width = max(len(str(r[0])) for r in rows) if rows else 10
    print(f"\n=== {title} ===")
    for row in rows:
        label, *values = row
        print(f"  {str(label):<{width}}  " + "  ".join(str(v) for v in values))
