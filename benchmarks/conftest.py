"""Shared benchmark fixtures.

Benches run at ``BENCH_SCALE`` (a quarter of the paper's log span) unless a
particular table needs full-scale fatal structure; generation and Phase 1 are
session-scoped so the suite generates each log once.

Every bench prints a paper-vs-measured block; ``EXPERIMENTS.md`` records the
same numbers.  Every bench also runs under a fresh
:class:`repro.obs.MetricsRegistry` (the ``bench_metrics`` autouse fixture),
so instrumented phases emit a per-test phase-time breakdown, and — when
``REPRO_BENCH_METRICS_DIR`` is set — a ``BENCH_<test>.json`` trajectory file
per bench (format documented in ``docs/benchmarks.md``).
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.core.pipeline import ThreePhasePredictor
from repro.obs import MetricsRegistry, snapshot, span_totals, use
from repro.ras.store import EventStore
from repro.synth.generator import GeneratedLog, LogGenerator
from repro.synth.profiles import anl_profile, sdsc_profile

#: Default bench scale: large enough for stable 10-fold CV, small enough to
#: keep the whole suite in minutes.
BENCH_SCALE = 0.25
BENCH_SEED = 11


@pytest.fixture(scope="session")
def anl_bench_log() -> GeneratedLog:
    return LogGenerator(anl_profile(), scale=BENCH_SCALE, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def sdsc_bench_log() -> GeneratedLog:
    return LogGenerator(sdsc_profile(), scale=BENCH_SCALE, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def anl_bench_events(anl_bench_log) -> EventStore:
    return ThreePhasePredictor().preprocess(anl_bench_log.raw).events


@pytest.fixture(scope="session")
def sdsc_bench_events(sdsc_bench_log) -> EventStore:
    return ThreePhasePredictor().preprocess(sdsc_bench_log.raw).events


def report(title: str, rows: list[tuple]) -> None:
    """Print a paper-vs-measured block (captured with ``-s``)."""
    width = max(len(str(r[0])) for r in rows) if rows else 10
    print(f"\n=== {title} ===")
    for row in rows:
        label, *values = row
        print(f"  {str(label):<{width}}  " + "  ".join(str(v) for v in values))


def _flatten_trajectory(registry: MetricsRegistry) -> list[dict]:
    """Depth-annotated, completion-ordered span list (the trajectory)."""
    out: list[dict] = []

    def walk(span, depth: int) -> None:
        entry = {"name": span.name, "duration_s": span.duration, "depth": depth}
        if span.labels:
            entry["labels"] = dict(span.labels)
        out.append(entry)
        for child in span.children:
            walk(child, depth + 1)

    for root in registry.spans:
        walk(root, 0)
    return out


@pytest.fixture(autouse=True)
def bench_metrics(request):
    """Attach a fresh metrics registry to every bench.

    Instrumented library phases (Phase 1 compression, mining, CV folds)
    record into it; afterwards the fixture prints a phase-time breakdown
    (visible with ``-s``) and, when ``REPRO_BENCH_METRICS_DIR`` names a
    directory, writes ``BENCH_<test>.json`` with the full snapshot plus the
    flattened span trajectory.
    """
    registry = MetricsRegistry()
    with use(registry):
        yield registry
    totals = span_totals(registry)
    if totals:
        report(
            f"phase times — {request.node.name}",
            [
                (name, f"{count}x", f"{seconds:.4f}s")
                for name, (count, seconds) in sorted(
                    totals.items(), key=lambda kv: -kv[1][1]
                )
            ],
        )
    outdir = os.environ.get("REPRO_BENCH_METRICS_DIR")
    if outdir:
        os.makedirs(outdir, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
        payload = {
            "bench": request.node.nodeid,
            "trajectory": _flatten_trajectory(registry),
            "metrics": snapshot(registry),
        }
        path = os.path.join(outdir, f"BENCH_{safe}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
