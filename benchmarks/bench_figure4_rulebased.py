"""Figure 4 — rule-based predictor vs prediction window (both logs).

Paper: precision in 0.7-0.9; recall between 0.22 and 0.55, improving with
the prediction window "without a substantial loss in precision".  Rule
generation windows: 15 min (ANL), 25 min (SDSC) — the Step-5 selections.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.paper import FIGURE4_BANDS, RULE_GENERATION_WINDOW_MIN
from repro.evaluation.sweep import prediction_window_sweep
from repro.predictors.rulebased import RuleBasedPredictor
from repro.util.timeutil import MINUTE

WINDOWS = tuple(m * MINUTE for m in (5, 10, 15, 20, 30, 40, 50, 60))


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_figure4_rule_sweep(
    system, anl_bench_events, sdsc_bench_events, benchmark
):
    events = anl_bench_events if system == "ANL" else sdsc_bench_events
    rule_window = RULE_GENERATION_WINDOW_MIN[system] * MINUTE

    points = benchmark.pedantic(
        lambda: prediction_window_sweep(
            lambda w: RuleBasedPredictor(
                rule_window=rule_window, prediction_window=w
            ),
            events,
            windows=WINDOWS,
            k=10,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [("window(min)", "precision", "recall")]
    for p in points:
        rows.append((int(p.window_minutes), round(p.precision, 3),
                     round(p.recall, 3)))
    rows.append(("paper precision band", FIGURE4_BANDS["precision"], ""))
    rows.append(("paper recall band", FIGURE4_BANDS["recall"], ""))
    report(f"Figure 4 — {system} rule-based sweep (G={rule_window // 60} min)",
           rows)

    # Shape assertions.
    first, last = points[0], points[-1]
    assert last.recall > first.recall, "recall improves with the window"
    for p in points:
        assert 0.6 <= p.precision <= 1.0, "precision stays high"
        assert 0.1 <= p.recall <= 0.75
    # "without a substantial loss in precision"
    assert first.precision - last.precision < 0.2


def test_figure4_recall_ceiling_from_orphans(anl_bench_events, benchmark):
    """The rule method 'is limited by the proportion of fatal events without
    any precursor warnings': even at the largest window recall stays well
    below 1."""
    points = benchmark.pedantic(
        lambda: prediction_window_sweep(
            lambda w: RuleBasedPredictor(
                rule_window=15 * MINUTE, prediction_window=w
            ),
            anl_bench_events,
            windows=[60 * MINUTE],
            k=10,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Figure 4 — recall ceiling at 60 min (ANL)",
        [("measured", round(points[0].recall, 3)), ("paper", "<= 0.55")],
    )
    assert points[0].recall < 0.75
