"""Ablation — support/confidence thresholds (paper §3.2.2 discussion).

"Lower value of support and confidence will generate larger amount of rules,
thereby requiring longer time and more memory ... Higher value ... reduces
the opportunities of capturing causal relationships."  We sweep min_support
and min_confidence around the paper's (0.04, 0.2) and measure rule counts,
mining time and prediction quality.
"""

import time


from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.mining.rules import generate_rules
from repro.mining.transactions import build_event_sets
from repro.predictors.rulebased import RuleBasedPredictor
from repro.util.timeutil import MINUTE

SUPPORTS = (0.01, 0.02, 0.04, 0.08, 0.16)


def test_ablation_support_threshold(anl_bench_events, benchmark):
    def run():
        db = build_event_sets(anl_bench_events, rule_window=15 * MINUTE)
        out = {}
        for s in SUPPORTS:
            t0 = time.perf_counter()
            rs = generate_rules(db, min_support=s, min_confidence=0.2)
            out[s] = (len(rs), time.perf_counter() - t0)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("min_support", "rules", "mining time (s)")]
    for s in SUPPORTS:
        rows.append((s, out[s][0], round(out[s][1], 4)))
    report("Ablation — support threshold (ANL, G=15 min)", rows)

    counts = [out[s][0] for s in SUPPORTS]
    # Monotone: lower support -> at least as many rules.
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # The paper's trade-off is real on this substrate: going below 0.04
    # multiplies the rule count (cost), going above it loses rules
    # (coverage).
    assert out[0.01][0] > out[0.04][0]
    assert out[0.16][0] < out[0.04][0]


def test_ablation_support_quality(anl_bench_events, benchmark):
    """Accuracy impact of the support threshold (10-fold CV)."""

    def run():
        out = {}
        for s in (0.02, 0.04, 0.16):
            out[s] = cross_validate(
                lambda s=s: RuleBasedPredictor(
                    rule_window=15 * MINUTE,
                    prediction_window=30 * MINUTE,
                    min_support=s,
                ),
                anl_bench_events,
                k=10,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("min_support", "precision", "recall")]
    for s, cv in out.items():
        rows.append((s, round(cv.precision, 3), round(cv.recall, 3)))
    report("Ablation — support threshold vs accuracy (ANL)", rows)

    # A too-high threshold loses recall (rare strong rules not generated).
    assert out[0.16].recall < out[0.04].recall + 0.02


def test_ablation_confidence_threshold(anl_bench_events, benchmark):
    def run():
        db = build_event_sets(anl_bench_events, rule_window=15 * MINUTE)
        return {
            c: len(generate_rules(db, min_support=0.04, min_confidence=c))
            for c in (0.1, 0.2, 0.5, 0.8)
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation — confidence threshold (ANL)",
        [("min_confidence", "rules")] + [(c, n) for c, n in counts.items()],
    )
    assert counts[0.8] <= counts[0.2] <= counts[0.1]
