"""Table 4 — distribution of compressed fatal events per category.

Runs the generator at FULL scale (the paper's complete span) with reduced
background noise — noise does not affect fatal counts but dominates
generation cost — then Phase 1, and compares per-category compressed fatal
counts against the paper's Table 4.
"""

import pytest

from benchmarks.conftest import report
from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.paper import TABLE4, TABLE4_TOTALS
from repro.preprocess.summary import category_fatal_counts
from repro.synth.generator import LogGenerator
from repro.synth.profiles import profile_by_name
from repro.taxonomy.categories import CATEGORY_ORDER


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_table4_compressed_fatal_distribution(system, benchmark):
    profile = profile_by_name(system)

    def run():
        log = LogGenerator(
            profile, scale=1.0, noise_multiplier=0.1, seed=4
        ).generate()
        result = ThreePhasePredictor().preprocess(log.raw)
        return category_fatal_counts(result.events)

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [("Main Category", "measured", "paper")]
    for cat in CATEGORY_ORDER:
        rows.append((cat.value.capitalize(), counts[cat], TABLE4[system][cat]))
    total = sum(counts.values())
    rows.append(("TOTAL", total, TABLE4_TOTALS[system]))
    report(f"Table 4 — {system} compressed fatal events", rows)

    # Compression may merge a small number of coincident duplicates; each
    # category must land within 5% (+2 for the tiny categories).
    for cat in CATEGORY_ORDER:
        paper = TABLE4[system][cat]
        assert abs(counts[cat] - paper) <= max(2, 0.05 * paper), cat
    assert abs(total - TABLE4_TOTALS[system]) <= 0.03 * TABLE4_TOTALS[system]
