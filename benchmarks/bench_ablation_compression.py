"""Ablation — the 300-second compression threshold and key mode.

The paper: "the amount of compression of FAILURE events achieved is not
significant when threshold values greater than 300 seconds is used", while
higher thresholds risk clustering different events together.  We sweep the
threshold and also compare the paper-literal temporal key (JOB_ID+LOCATION)
against the conservative variant that additionally keys on ENTRY_DATA.
"""


from benchmarks.conftest import report
from repro.preprocess.compression import temporal_compress
from repro.preprocess.pipeline import PreprocessPipeline

THRESHOLDS = (30, 100, 300, 900, 3600)


def test_ablation_compression_threshold(anl_bench_log, benchmark):
    def run():
        out = {}
        for th in THRESHOLDS:
            result = PreprocessPipeline(threshold=float(th)).run(
                anl_bench_log.raw
            )
            out[th] = (
                result.unique_events,
                len(result.events.fatal_events()),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("threshold(s)", "unique events", "unique fatals")]
    for th in THRESHOLDS:
        rows.append((th, out[th][0], out[th][1]))
    report("Ablation — compression threshold (ANL)", rows)

    # Monotone: larger thresholds merge at least as much.
    uniques = [out[th][0] for th in THRESHOLDS]
    assert all(a >= b for a, b in zip(uniques, uniques[1:]))
    # The paper's observation: beyond 300 s the *fatal* count barely moves
    # (compare 300 s vs 900 s) ...
    f300, f900, f3600 = out[300][1], out[900][1], out[3600][1]
    assert abs(f300 - f900) / f300 < 0.05
    # ... while a *much* larger threshold starts clustering genuinely
    # distinct failures together — the paper's stated risk ("increase the
    # chances of different events being clustered together"): at 1 h the
    # storm members themselves begin to merge.
    assert f3600 < f300
    # And a too-small threshold under-compresses dramatically.
    assert out[30][0] > 1.2 * out[300][0]


def test_ablation_temporal_key_mode(anl_bench_log, benchmark):
    """Paper-literal (JOB+LOCATION) vs conservative (+ENTRY_DATA) keys."""

    def run():
        from repro.taxonomy.classifier import TaxonomyClassifier

        labeled = TaxonomyClassifier().classify_store(anl_bench_log.raw)
        literal, _ = temporal_compress(labeled, key_mode="job_location")
        conservative, _ = temporal_compress(
            labeled, key_mode="job_location_entry"
        )
        return literal, conservative

    literal, conservative = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation — temporal key mode (ANL)",
        [
            ("job_location (paper)", len(literal)),
            ("job_location_entry", len(conservative)),
            ("fatals, paper key", len(literal.fatal_events())),
            ("fatals, conservative key", len(conservative.fatal_events())),
        ],
    )
    # The conservative key merges strictly less...
    assert len(conservative) >= len(literal)
    # ...but the max-severity representative rule keeps fatal counts close.
    assert (
        abs(len(conservative.fatal_events()) - len(literal.fatal_events()))
        <= 0.1 * len(literal.fatal_events()) + 2
    )
