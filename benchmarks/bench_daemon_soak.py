"""Ingestion-daemon soak: concurrent streams, bounded memory, lossless restart.

Three properties of :class:`repro.serve.daemon.IngestDaemon`, each asserted
(not just reported), on a bench-scale synthetic stream:

- **Sustained throughput** — four concurrent producers drive the full load
  over loopback TCP; the end-to-end wire rate must clear a conservative
  floor (the wire, not the detector, is the bottleneck: the columnar feed
  path alone clears two orders of magnitude more, see
  ``bench_serve_throughput.py``).
- **Fixed memory budget** — queue depth is sampled from the live metrics
  gauges throughout the run and must never exceed the configured bound;
  peak-RSS growth across the whole soak must stay under a fixed ceiling.
- **Kill/restart loses nothing** — the same traffic split across two daemon
  lives (drain -> state doc -> restart with baseline) must produce exactly
  the lifetime counters of one uninterrupted life.

Measured numbers are printed for EXPERIMENTS.md.
"""

from __future__ import annotations

import asyncio
import resource

from benchmarks.conftest import report
from repro.meta.stacked import MetaLearner
from repro.serve.client import emit_events
from repro.serve.daemon import (
    DaemonConfig,
    IngestDaemon,
    state_from_dict,
    state_to_dict,
)
from repro.util.timeutil import MINUTE

#: Soak shape: 4 producers, bounded queues well below the traffic volume.
STREAMS = ("rack-a", "rack-b", "rack-c", "rack-d")
QUEUE_BOUND = 1024
CHUNK_EVENTS = 512
MIN_EVENTS = 20_000
#: Wire-throughput floor (events/sec), deliberately conservative for CI.
THROUGHPUT_FLOOR = 1_000
#: Peak-RSS growth ceiling across the soak (MiB).
RSS_CEILING_MIB = 768

CONFIG = DaemonConfig(
    port=0,
    queue_bound=QUEUE_BOUND,
    shards=4,
    chunk_events=CHUNK_EVENTS,
    max_streams=len(STREAMS),
)


def _traffic(events):
    """Replicate the store time-shifted until the soak volume is reached."""
    base = list(events)
    span = base[-1].time + 1
    out = list(base)
    k = 1
    while len(out) < MIN_EVENTS:
        out.extend(ev.with_time(ev.time + k * span) for ev in base)
        k += 1
    # Trim to a multiple of the stream count so round-robin halves compose.
    cut = len(out) - (len(out) % len(STREAMS))
    return out[:cut]


async def _soak(meta, events, samples):
    async with IngestDaemon(meta, CONFIG) as daemon:
        stop = asyncio.Event()

        async def sampler():
            while not stop.is_set():
                doc = daemon.metrics_doc()
                depths = [
                    v
                    for k, v in doc.get("gauges", {}).items()
                    if k.startswith("serve.daemon.queue_depth")
                ]
                if depths:
                    samples.append(max(depths))
                await asyncio.sleep(0.02)

        task = asyncio.get_running_loop().create_task(sampler())
        emit = await emit_events(
            events, port=daemon.port, streams=STREAMS, batch=512
        )
        stop.set()
        await task
        drain = await daemon.drain()
        return emit, drain


async def _one_life(meta, events, baseline):
    daemon = IngestDaemon(meta, CONFIG, baseline=baseline)
    async with daemon:
        emit = await emit_events(
            events, port=daemon.port, streams=STREAMS, batch=512
        )
        assert not emit.errors
        return await daemon.drain()


def test_daemon_soak_throughput_memory_and_restart(anl_bench_events):
    cut = int(len(anl_bench_events) * 0.5)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_bench_events.select(slice(0, cut)))
    events = _traffic(anl_bench_events.select(slice(cut, len(anl_bench_events))))
    rss_before_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    # --- soak: concurrent streams under sampled queue-depth telemetry ----
    samples: list[float] = []
    emit, drain = asyncio.run(_soak(meta, events, samples))
    rss_after_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rss_delta_mib = (rss_after_kib - rss_before_kib) / 1024.0
    max_depth = max(samples, default=0.0)

    assert not emit.errors
    assert emit.sent == len(events)
    assert len(drain.streams) == len(STREAMS)
    assert drain.events == len(events)
    assert max_depth <= QUEUE_BOUND, "queue depth escaped its bound"
    assert emit.events_per_sec >= THROUGHPUT_FLOOR, (
        f"sustained wire throughput {emit.events_per_sec:,.0f} events/sec "
        f"below the {THROUGHPUT_FLOOR:,} floor"
    )
    assert rss_delta_mib < RSS_CEILING_MIB, (
        f"peak RSS grew {rss_delta_mib:.0f} MiB during the soak "
        f"(ceiling {RSS_CEILING_MIB} MiB)"
    )

    # --- kill/restart: two lives must equal one uninterrupted life -------
    half = (len(events) // 2) - ((len(events) // 2) % len(STREAMS))
    life1 = asyncio.run(_one_life(meta, events[:half], None))
    restored = state_from_dict(state_to_dict(life1))
    life2 = asyncio.run(_one_life(meta, events[half:], restored))
    uninterrupted = asyncio.run(_one_life(meta, events, None))

    total = life2.total()
    reference = uninterrupted.combined
    # Per-stream lead lists merge in a different interleaving across two
    # lives; the conserved object is the counter set + the lead multiset.
    assert (
        total.events,
        total.failures,
        total.warnings,
        total.hits,
        total.false_alarms,
        total.caught_failures,
        total.missed_failures,
        sorted(map(float, total.lead_seconds)),
    ) == (
        reference.events,
        reference.failures,
        reference.warnings,
        reference.hits,
        reference.false_alarms,
        reference.caught_failures,
        reference.missed_failures,
        sorted(map(float, reference.lead_seconds)),
    ), "kill/restart cycle lost resolved warnings"

    report(
        "daemon soak (4 streams over loopback TCP)",
        [
            ("events delivered", f"{emit.sent:,}"),
            ("wall time", f"{emit.seconds:.2f}s"),
            ("wire throughput", f"{emit.events_per_sec:,.0f} events/sec"),
            ("busy retries", emit.busy_retries),
            ("max queue depth seen", f"{max_depth:.0f} (bound {QUEUE_BOUND})"),
            ("peak RSS growth", f"{rss_delta_mib:.0f} MiB "
                                f"(ceiling {RSS_CEILING_MIB} MiB)"),
            ("warnings resolved", reference.warnings),
            ("restart conservation",
             f"{total.events:,} events, {total.warnings} warnings — exact"),
        ],
    )
