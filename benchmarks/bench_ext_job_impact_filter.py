"""Extension — job-impacting failure filter (the paper's stated future work).

"Our future work will incorporate filtering out this ambiguity of failures
and analyze only those failures which will impact user jobs" (§3.1, citing
Oliner & Stearley).  The hook exists in Phase 1
(:func:`repro.preprocess.pipeline.job_impacting_filter`); this bench
measures its effect: how many fatal events are not attributable to any user
job, and how prediction metrics move when they are excluded from the
target set.
"""

from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.meta.stacked import MetaLearner
from repro.preprocess.pipeline import PreprocessPipeline, job_impacting_filter
from repro.util.timeutil import MINUTE


def test_ext_job_impact_filter(anl_bench_log, benchmark):
    def run():
        plain = PreprocessPipeline().run(anl_bench_log.raw)
        filtered = PreprocessPipeline(
            event_filter=job_impacting_filter
        ).run(anl_bench_log.raw)
        return plain, filtered

    plain, filtered = benchmark.pedantic(run, rounds=1, iterations=1)
    n_plain = len(plain.events.fatal_events())
    n_filtered = len(filtered.events.fatal_events())
    report(
        "Extension — job-impacting failure filter (ANL)",
        [
            ("fatal events (all)", n_plain),
            ("fatal events (job-attributable)", n_filtered),
            ("ambiguous failures removed", n_plain - n_filtered),
            ("removed fraction", round(1 - n_filtered / n_plain, 3)),
        ],
    )
    # Hardware/service failures with no job context exist and are removed;
    # but job-attributable failures must dominate (the machine is busy).
    assert 0 < n_plain - n_filtered < 0.5 * n_plain


def test_ext_filter_effect_on_prediction(anl_bench_log, benchmark):
    def run():
        out = {}
        for name, flt in (("all failures", None),
                          ("job-impacting only", job_impacting_filter)):
            result = PreprocessPipeline(event_filter=flt).run(anl_bench_log.raw)
            out[name] = cross_validate(
                lambda: MetaLearner(
                    prediction_window=30 * MINUTE, rule_window=15 * MINUTE
                ),
                result.events,
                k=10,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("target set", "precision", "recall")]
    for name, cv in out.items():
        rows.append((name, round(cv.precision, 3), round(cv.recall, 3)))
    report("Extension — prediction on filtered targets (ANL, meta)", rows)

    # Restricting targets to job-impacting failures must not make the
    # predictor look worse on them (ambiguous failures are largely
    # signal-free for the application's perspective).
    assert out["job-impacting only"].recall >= out["all failures"].recall - 0.08
