"""Table 1 — RAS log summaries (records, span, size).

Regenerates the paper's Table 1 for both systems.  The bench runs at
``BENCH_SCALE`` and reports both the measured counts and their full-scale
extrapolation (counts scale linearly with the simulated span).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.evaluation.paper import TABLE1
from repro.preprocess.summary import log_summary


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_table1_log_summary(system, anl_bench_log, sdsc_bench_log, benchmark):
    log = anl_bench_log if system == "ANL" else sdsc_bench_log

    summary = benchmark.pedantic(
        lambda: log_summary(log.raw, name=system), rounds=1, iterations=1
    )

    scale = log.scale
    extrapolated = int(summary["records"] / scale)
    paper = TABLE1[system]
    report(
        f"Table 1 — {system} (scale {scale})",
        [
            ("records (measured)", summary["records"]),
            ("records (extrapolated to full span)", extrapolated),
            ("records (paper)", paper["records"]),
            ("span days (measured)", round(summary["span_days"], 1)),
            ("span days (paper full)", round(log.profile.days, 1)),
            ("approx size MB (measured)", round(summary["approx_size_mb"], 1)),
            ("size (paper)", f"{paper['size_gb']} GB"),
        ],
    )
    # Shape assertions: the ANL log is roughly an order of magnitude larger
    # than SDSC, and the extrapolated record count is within 2x of the paper.
    assert 0.5 * paper["records"] < extrapolated < 2.0 * paper["records"]


def test_table1_volume_ratio(anl_bench_log, sdsc_bench_log, benchmark):
    ratio = benchmark.pedantic(
        lambda: anl_bench_log.n_raw / sdsc_bench_log.n_raw,
        rounds=1, iterations=1,
    )
    paper_ratio = TABLE1["ANL"]["records"] / TABLE1["SDSC"]["records"]  # ~9.7
    report(
        "Table 1 — ANL/SDSC volume ratio",
        [("measured", round(ratio, 1)), ("paper", round(paper_ratio, 1))],
    )
    assert ratio > 3.0, "ANL must dwarf SDSC in raw volume"
