"""Extension — naive-Bayes base predictor vs the paper's methods.

The related-work section cites Bayesian failure prediction (Hamerly & Elkan)
as the model-based alternative; this bench puts a Bernoulli naive Bayes over
window contents on the same folds as the paper's two base methods and the
meta-learner, and measures what adding it as a fourth base buys.
"""


from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.meta.multi import MultiMeta
from repro.meta.stacked import MetaLearner
from repro.predictors.bayes import BayesPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


def test_ext_bayes_vs_bases(anl_bench_events, benchmark):
    def run():
        out = {}
        out["statistical"] = cross_validate(
            lambda: StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
            anl_bench_events, k=10,
        )
        out["rule"] = cross_validate(
            lambda: RuleBasedPredictor(
                rule_window=15 * MINUTE, prediction_window=30 * MINUTE
            ),
            anl_bench_events, k=10,
        )
        out["bayes"] = cross_validate(
            lambda: BayesPredictor(window=30 * MINUTE, threshold=0.6),
            anl_bench_events, k=10,
        )
        out["meta (paper)"] = cross_validate(
            lambda: MetaLearner(
                prediction_window=30 * MINUTE, rule_window=15 * MINUTE
            ),
            anl_bench_events, k=10,
        )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("method", "precision", "recall")]
    for name, cv in out.items():
        rows.append((name, round(cv.precision, 3), round(cv.recall, 3)))
    report("Extension — Bayes baseline vs paper methods (ANL)", rows)

    # The soft-evidence Bayes classifier cannot out-precision the mined
    # rules (its firings include combinations below any support threshold),
    # and the meta-learner stays the best on recall.
    assert out["bayes"].precision <= out["rule"].precision + 0.05
    assert out["meta (paper)"].recall >= out["bayes"].recall - 0.05


def test_ext_bayes_as_extra_base(anl_bench_events, benchmark):
    def run():
        three = cross_validate(
            lambda: MultiMeta([
                StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
                RuleBasedPredictor(rule_window=15 * MINUTE,
                                   prediction_window=30 * MINUTE),
                BayesPredictor(window=30 * MINUTE, threshold=0.6),
            ]),
            anl_bench_events, k=10,
        )
        two = cross_validate(
            lambda: MultiMeta([
                StatisticalPredictor(window=HOUR, lead=5 * MINUTE),
                RuleBasedPredictor(rule_window=15 * MINUTE,
                                   prediction_window=30 * MINUTE),
            ]),
            anl_bench_events, k=10,
        )
        return two, three

    two, three = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — MultiMeta with the Bayes base (ANL)",
        [
            ("stat+rule P/R", f"{two.precision:.3f} / {two.recall:.3f}"),
            ("stat+rule+bayes P/R",
             f"{three.precision:.3f} / {three.recall:.3f}"),
        ],
    )
    assert three.recall >= two.recall - 0.03
