"""Ablation — Apriori vs FP-growth.

Both miners produce identical frequent itemsets (property-tested); this
bench compares their cost on the real workload as the support threshold
drops — FP-growth's advantage is avoiding candidate generation when the
pattern space blows up.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.mining.apriori import apriori
from repro.mining.fptree import fpgrowth
from repro.mining.transactions import build_event_sets
from repro.util.timeutil import MINUTE


@pytest.fixture(scope="module")
def transactions(anl_bench_events):
    db = build_event_sets(anl_bench_events, rule_window=30 * MINUTE)
    return db.transactions()


@pytest.mark.parametrize("miner_name", ["apriori", "fpgrowth"])
@pytest.mark.parametrize("min_support", [0.04, 0.01])
def test_ablation_miner_cost(miner_name, min_support, transactions, benchmark):
    miner = apriori if miner_name == "apriori" else fpgrowth
    result = benchmark(lambda: miner(transactions, min_support))
    assert result  # something mined


def test_ablation_miners_identical_output(transactions, benchmark):
    def run():
        out = {}
        for s in (0.04, 0.02, 0.01):
            t0 = time.perf_counter()
            a = apriori(transactions, s)
            ta = time.perf_counter() - t0
            t0 = time.perf_counter()
            f = fpgrowth(transactions, s)
            tf = time.perf_counter() - t0
            assert a == f, f"miner divergence at support {s}"
            out[s] = (len(a), ta, tf)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("min_support", "itemsets", "apriori (s)", "fpgrowth (s)")]
    for s, (n, ta, tf) in out.items():
        rows.append((s, n, round(ta, 4), round(tf, 4)))
    report("Ablation — miner cost, identical outputs", rows)
