"""Extension — fault-tolerance value of prediction (paper §1 motivation).

Converts the meta-learner's measured accuracy into the currency operators
budget in: expected lost computation under prediction-driven checkpointing
vs a periodic baseline, across checkpoint-cost regimes.  Cheap checkpoints
make even modest precision pay; expensive checkpoints raise the bar — the
quantitative form of the paper's "preventive action" argument.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.costmodel import CheckpointPolicy, evaluate_policy
from repro.evaluation.matching import match_warnings
from repro.meta.stacked import MetaLearner
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


@pytest.fixture(scope="module")
def meta_match(anl_bench_events):
    cut = int(len(anl_bench_events) * 0.7)
    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(anl_bench_events.select(slice(0, cut)))
    test = anl_bench_events.select(slice(cut, len(anl_bench_events)))
    match = match_warnings(meta.predict(test), test)
    period = float(test.times[-1] - test.times[0])
    return match, period


def test_ext_costmodel_regimes(meta_match, benchmark):
    match, period = meta_match

    def run():
        out = {}
        for cost in (30, 120, 300, 900):
            policy = CheckpointPolicy(
                interval=HOUR, checkpoint_cost=cost, restart_cost=300
            )
            out[cost] = evaluate_policy(match, policy, period)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("ckpt cost (s)", "saving (s)", "saving %", "actionable")]
    for cost, r in out.items():
        rows.append((cost, int(r.saving), f"{r.saving_fraction:.1%}",
                     r.actionable_failures))
    report("Extension — checkpoint cost regimes (ANL, meta W=30 min)", rows)

    # Cheap checkpoints: prediction pays.  The saving shrinks monotonically
    # as checkpoints get more expensive (fewer actionable failures, dearer
    # false alarms).
    savings = [out[c].saving for c in (30, 120, 300, 900)]
    assert savings[0] > 0
    assert all(a >= b for a, b in zip(savings, savings[1:]))


def test_ext_costmodel_meta_beats_statistical(
    anl_bench_events, meta_match, benchmark
):
    """The recall/precision edge translates into real saved node-seconds."""
    match_meta, period = meta_match

    def run():
        cut = int(len(anl_bench_events) * 0.7)
        stat = StatisticalPredictor(window=HOUR, lead=5 * MINUTE).fit(
            anl_bench_events.select(slice(0, cut))
        )
        test = anl_bench_events.select(slice(cut, len(anl_bench_events)))
        match_stat = match_warnings(stat.predict(test), test)
        policy = CheckpointPolicy(
            interval=HOUR, checkpoint_cost=120, restart_cost=300
        )
        return (
            evaluate_policy(match_meta, policy, period),
            evaluate_policy(match_stat, policy, period),
        )

    meta_r, stat_r = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — FT saving, meta vs statistical (ckpt=120 s)",
        [
            ("meta saving (s)", int(meta_r.saving)),
            ("statistical saving (s)", int(stat_r.saving)),
        ],
    )
    assert meta_r.saving > stat_r.saving
