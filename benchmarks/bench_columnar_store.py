"""Out-of-core columnar store: bounded-memory phase 1 + replay at 10x seed scale.

The seed log (``generate --profile ANL --scale 0.02 --seed 7``) holds 60,453
raw events.  This bench stream-generates an 11-segment log at the same scale
(>= 10x the seed) straight to a columnar store, then runs the full pipeline —
Phase 1 compression, training, and chunked detector-pool replay — in a child
process that only ever memory-maps the store.  The gate is twofold, and the
correctness half comes first (bounded memory is worthless if the streamed
results drift): every result the streaming child reports must be
*bit-identical* to an in-RAM child that materializes the whole store, and the
streaming child's peak RSS must stay under a fixed ceiling regardless of how
large the raw log grows.

Measured here:

- streaming vs in-RAM equivalence: raw/event store fingerprints, unique-event
  counts, and the complete warning stream (SHA-256 over the ordered warning
  keys) must match exactly;
- peak RSS of the streaming child (``ru_maxrss``) against ``RSS_CEILING_MIB``;
- on-disk density of the columnar layout (bytes per row across all columns).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from benchmarks.conftest import report
from repro.synth.profiles import anl_profile
from repro.synth.streaming import stream_generate

#: Rows in the repo's seed log; the bench store must be at least 10x this.
SEED_ROWS = 60_453
SEGMENTS = 11
SCALE = 0.02
SEED = 7
#: Peak-RSS ceiling for the streaming child.  The interpreter plus NumPy
#: alone cost ~60 MiB; the ceiling buys headroom for the (small) unique-event
#: store and detector state while staying far below what materializing a
#: 10x-seed raw log plus batch-mode intermediates would need.
RSS_CEILING_MIB = 512
REPLAY_CHUNK = 4_096

_CHILD = """\
import hashlib
import json
import resource
import sys

from repro.cache import store_fingerprint
from repro.core.pipeline import ThreePhasePredictor
from repro.ras.columnar import open_store
from repro.serve.pool import DetectorPool

path, mode, chunk = sys.argv[1], sys.argv[2], int(sys.argv[3])
raw = open_store(path)
if mode == "inram":
    raw = raw.materialized()
predictor = ThreePhasePredictor()
events = predictor.preprocess(raw).events
predictor.fit(events)
pool = DetectorPool(predictor.meta, shards=4)
replay = pool.replay(events, chunk_events=chunk if mode == "stream" else None)
keys = [
    (w.issued_at, w.horizon_start, w.horizon_end, w.detail)
    for shard in replay.shards
    for w in shard.warnings
]
print(json.dumps({
    "rows": len(raw),
    "raw_fp": store_fingerprint(raw),
    "events_fp": store_fingerprint(events),
    "unique_events": len(events),
    "replayed": replay.events,
    "n_warnings": len(keys),
    "warnings_sha": hashlib.sha256(repr(keys).encode()).hexdigest(),
    "combined_warnings": replay.combined.warnings,
    "precision": replay.combined.precision_so_far,
    "failures": replay.combined.failures,
    "maxrss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    path = tmp_path_factory.mktemp("columnar-bench") / "store"
    return stream_generate(
        anl_profile(),
        path,
        segments=SEGMENTS,
        scale=SCALE,
        seed=SEED,
        chunk_events=100_000,
    )


def _run_child(path: Path, mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env.pop("REPRO_STORE_BACKEND", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(path), mode, str(REPLAY_CHUNK)],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1])


def test_streaming_pipeline_matches_in_ram_within_rss_ceiling(big_store):
    assert big_store.rows >= 10 * SEED_ROWS

    stream = _run_child(big_store.path, "stream")
    inram = _run_child(big_store.path, "inram")

    # Correctness gate: the memory-mapped, chunked pipeline must be
    # indistinguishable from the materialized batch pipeline.
    for key in (
        "rows",
        "raw_fp",
        "events_fp",
        "unique_events",
        "replayed",
        "n_warnings",
        "warnings_sha",
        "combined_warnings",
        "precision",
        "failures",
    ):
        assert stream[key] == inram[key], key

    stream_mib = stream["maxrss_kib"] / 1024
    inram_mib = inram["maxrss_kib"] / 1024
    assert stream_mib <= RSS_CEILING_MIB, (
        f"streaming child peaked at {stream_mib:.0f} MiB "
        f"(ceiling {RSS_CEILING_MIB} MiB)"
    )

    report(
        "columnar store — 10x-seed streaming pipeline",
        [
            ("raw rows", f"{big_store.rows:,}", f"(seed {SEED_ROWS:,})"),
            ("unique events", f"{stream['unique_events']:,}", ""),
            ("warnings", stream["n_warnings"], "bit-identical"),
            ("precision", f"{stream['precision']:.4f}", "bit-identical"),
            ("stream peak RSS", f"{stream_mib:.0f} MiB", f"<= {RSS_CEILING_MIB} MiB"),
            ("in-RAM peak RSS", f"{inram_mib:.0f} MiB", ""),
        ],
    )


def test_on_disk_layout_is_dense(big_store):
    manifest = json.loads((big_store.path / "manifest.json").read_text())
    column_bytes = sum(
        (big_store.path / "columns" / f"{name}.bin").stat().st_size
        for name in manifest["columns"]
    )
    per_row = column_bytes / manifest["rows"]
    # 2x int64 + 3x int32 + 2x int8 = 30 bytes per event, no padding.
    assert per_row <= 32.0
    assert manifest["rows"] == big_store.rows
    assert len(manifest["segments"]) == SEGMENTS

    report(
        "columnar store — on-disk layout",
        [
            ("rows", f"{manifest['rows']:,}", f"{len(manifest['segments'])} segments"),
            ("column bytes", f"{column_bytes:,}", f"{per_row:.1f} B/row"),
        ],
    )
