"""Extension — N-base meta-learning (the paper's future work).

"The proposed meta-learning mechanism should be further examined for
advancing failure prediction in large clusters."  This bench adds a third
base predictor (periodicity) to the two paper methods under confidence
arbitration (:class:`repro.meta.multi.MultiMeta`) and compares 2-base vs
3-base combinations on identical folds.
"""

from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.meta.multi import MultiMeta
from repro.predictors.extensions import PeriodicityPredictor
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.util.timeutil import HOUR, MINUTE


def _stat():
    return StatisticalPredictor(window=HOUR, lead=5 * MINUTE)


def _rule():
    return RuleBasedPredictor(
        rule_window=15 * MINUTE, prediction_window=30 * MINUTE
    )


def test_ext_multimeta_two_vs_three_bases(anl_bench_events, benchmark):
    def run():
        two = cross_validate(
            lambda: MultiMeta([_stat(), _rule()]), anl_bench_events, k=10
        )
        three = cross_validate(
            lambda: MultiMeta([_stat(), _rule(), PeriodicityPredictor()]),
            anl_bench_events,
            k=10,
        )
        return two, three

    two, three = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Extension — MultiMeta base count (ANL, 10-fold CV)",
        [
            ("2 bases (stat+rule) P/R",
             f"{two.precision:.3f} / {two.recall:.3f}"),
            ("3 bases (+periodicity) P/R",
             f"{three.precision:.3f} / {three.recall:.3f}"),
        ],
    )
    # Adding a base under confidence arbitration must not collapse accuracy;
    # recall must not drop (extra coverage can only add).
    assert three.recall >= two.recall - 0.02
    assert three.precision >= two.precision - 0.15


def test_ext_multimeta_contribution_accounting(anl_bench_events, benchmark):
    def run():
        cut = int(len(anl_bench_events) * 0.7)
        mm = MultiMeta([_stat(), _rule(), PeriodicityPredictor()]).fit(
            anl_bench_events.select(slice(0, cut))
        )
        kept = mm.predict(
            anl_bench_events.select(slice(cut, len(anl_bench_events)))
        )
        return mm, kept

    mm, kept = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("base", "contributed", "suppressed")]
    for name in mm.contributions:
        rows.append((name, mm.contributions[name], mm.suppressed[name]))
    report("Extension — MultiMeta per-base contributions", rows)
    assert sum(mm.contributions.values()) == len(kept)
