"""Serving-engine throughput: batched feed and heap-based resolution.

Two measurements, both with a built-in correctness gate (the fast path must
be *bit-identical* to the reference before its speed means anything):

- **Batched columnar feed** (``OnlineDetector.feed_store``) versus the
  per-event ``feed`` loop over the same fitted meta-learner — same warning
  list required, events/sec and per-chunk feed-latency percentiles reported.
- **Heap-based warning resolution** (``WarningResolver``) versus the seed's
  deque implementation (rebuilt per event; inlined below as the reference)
  on a synthetic stream holding a ~10k pending-warning backlog — identical
  :class:`SessionStats` required, and the heap path must clear >= 5x the
  events/sec of the deque path (the PR's acceptance floor).

The resolution stream is synthetic on purpose: a real fitted model dedups
warnings against active horizons, so it cannot build a large backlog; the
resolver is detector-agnostic and the backlog regime is exactly where the
quadratic deque behaviour lived.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Optional

from benchmarks.conftest import report
from repro.core.pipeline import ThreePhasePredictor
from repro.obs import get_registry, summarize_histogram
from repro.online import OnlineDetector, OnlineSession, WarningResolver
from repro.predictors.base import FailureWarning
from repro.serve import DetectorPool

#: Synthetic resolution stream: one warning per event, ~10k-event horizons
#: (so the pending backlog plateaus near 10k), a failure every ~200 events.
BACKLOG_EVENTS = 30_000
BACKLOG_HORIZON = 10_000
BACKLOG_FAILURE_EVERY = 200


class _LegacyDequeResolver:
    """The seed's resolution loop (rebuild-per-event), kept as the baseline.

    This is a faithful inline copy of the pre-heap ``OnlineSession`` logic:
    ``_expire`` rebuilds the whole pending deque on every arrival and the
    fatal-coverage scan walks (and rebuilds) it again.  Do not "fix" it —
    its O(P)-per-event behaviour is the thing being measured against.
    """

    def __init__(self) -> None:
        from repro.online import SessionStats

        self.stats = SessionStats()
        self._pending: deque[tuple[FailureWarning, bool]] = deque()

    def _expire(self, now: int) -> None:
        keep: deque[tuple[FailureWarning, bool]] = deque()
        for warning, hit in self._pending:
            if warning.horizon_end < now:
                if hit:
                    self.stats.hits += 1
                else:
                    self.stats.false_alarms += 1
            else:
                keep.append((warning, hit))
        self._pending = keep

    def process(self, now: int, is_fatal: bool, raised: list[FailureWarning]):
        self._expire(now)
        self.stats.events += 1
        if is_fatal:
            self.stats.failures += 1
            covered = False
            earliest_issue: Optional[int] = None
            updated: deque[tuple[FailureWarning, bool]] = deque()
            for warning, hit in self._pending:
                if warning.covers(now):
                    hit = True
                    covered = True
                    if earliest_issue is None or warning.issued_at < earliest_issue:
                        earliest_issue = warning.issued_at
                updated.append((warning, hit))
            self._pending = updated
            if covered:
                self.stats.caught_failures += 1
                assert earliest_issue is not None
                self.stats.lead_seconds.append(now - earliest_issue)
            else:
                self.stats.missed_failures += 1
        for w in raised:
            self.stats.warnings += 1
            self._pending.append((w, False))

    def finish(self):
        self._expire(now=2**62)
        return self.stats


def _backlog_stream():
    """(time, is_fatal, raised) triples that sustain a ~10k-warning backlog."""
    stream = []
    for i in range(BACKLOG_EVENTS):
        t = 1_000_000 + i
        w = FailureWarning(
            issued_at=t,
            horizon_start=t + 1,
            horizon_end=t + BACKLOG_HORIZON,
            confidence=0.5,
            source="bench",
            detail=f"backlog-{i}",
        )
        is_fatal = (i % BACKLOG_FAILURE_EVERY) == BACKLOG_FAILURE_EVERY - 1
        stream.append((t, is_fatal, [w]))
    return stream


def test_resolution_heap_vs_deque_backlog():
    """10k-backlog resolution: heap must be >= 5x the deque baseline."""
    stream = _backlog_stream()

    legacy = _LegacyDequeResolver()
    t0 = perf_counter()
    for now, is_fatal, raised in stream:
        legacy.process(now, is_fatal, raised)
    legacy_stats = legacy.finish()
    legacy_seconds = perf_counter() - t0

    resolver = WarningResolver()
    t0 = perf_counter()
    for now, is_fatal, raised in stream:
        resolver.advance(now)
        resolver.stats.events += 1
        if is_fatal:
            resolver.observe_failure(now)
        for w in raised:
            resolver.add(w)
    heap_stats = resolver.finalize()
    heap_seconds = perf_counter() - t0

    assert heap_stats == legacy_stats  # bit-identical counters, incl. leads
    legacy_eps = len(stream) / legacy_seconds
    heap_eps = len(stream) / heap_seconds
    speedup = heap_eps / legacy_eps
    report(
        "resolution @ ~10k pending backlog",
        [
            ("events", len(stream)),
            ("deque (seed) events/sec", f"{legacy_eps:,.0f}"),
            ("heap events/sec", f"{heap_eps:,.0f}"),
            ("speedup", f"{speedup:.1f}x (floor 5x)"),
            ("ops/event (heap)", f"{resolver.resolution_ops / len(stream):.1f}"),
        ],
    )
    get_registry().gauge("serve.resolution_speedup", speedup)
    assert speedup >= 5.0, (
        f"heap resolution only {speedup:.1f}x over the deque baseline"
    )


def test_batched_feed_vs_per_event(anl_bench_events):
    """feed_store vs per-event feed: identical warnings, events/sec, p50/p99."""
    events = anl_bench_events
    split = int(len(events) * 0.6)
    import numpy as np

    train = events.select(np.arange(split))
    test = events.select(np.arange(split, len(events)))
    meta = ThreePhasePredictor().fit(train).meta

    per_event = OnlineDetector(meta)
    t0 = perf_counter()
    reference = []
    for ev in test:
        reference.extend(per_event.feed(ev))
    per_event_seconds = perf_counter() - t0

    batched = OnlineDetector(meta)
    obs = get_registry()
    chunk = 256
    t0 = perf_counter()
    warnings = []
    label_ids = batched.label_ids_for(test)
    fatal = test.fatal_mask()
    for lo in range(0, len(test), chunk):
        hi = min(lo + chunk, len(test))
        c0 = perf_counter()
        warnings.extend(
            batched.feed_batch(test.times[lo:hi], label_ids[lo:hi], fatal[lo:hi])
        )
        obs.observe("serve.feed_seconds", perf_counter() - c0)
    batched_seconds = perf_counter() - t0

    assert warnings == reference  # element-for-element identical
    s = summarize_histogram(obs.histograms["serve.feed_seconds"])
    rows = [
        ("events", len(test)),
        ("per-event events/sec", f"{len(test) / per_event_seconds:,.0f}"),
        ("batched events/sec", f"{len(test) / batched_seconds:,.0f}"),
        ("speedup", f"{per_event_seconds / batched_seconds:.1f}x"),
        (f"feed chunk ({chunk} ev) p50", f"{s['p50'] * 1e3:.3f} ms"),
        (f"feed chunk ({chunk} ev) p99", f"{s['p99'] * 1e3:.3f} ms"),
    ]
    report("batched columnar feed", rows)
    obs.gauge("serve.events_per_sec", len(test) / batched_seconds)


def test_pool_replay_throughput(anl_bench_events):
    """Sharded pool replay over the bench store (end-to-end serving path)."""
    events = anl_bench_events
    split = int(len(events) * 0.6)
    import numpy as np

    train = events.select(np.arange(split))
    test = events.select(np.arange(split, len(events)))
    meta = ThreePhasePredictor().fit(train).meta

    session = OnlineSession(meta)
    t0 = perf_counter()
    for ev in test:
        session.process(ev)
    session.finish()
    per_event_seconds = perf_counter() - t0

    pool = DetectorPool(meta, shards=4, key="midplane")
    pool_report = pool.replay(test)
    report(
        "sharded pool replay (4 midplane shards)",
        [
            ("events", pool_report.events),
            ("active shards", len(pool_report.shards)),
            ("per-event session events/sec",
             f"{len(test) / per_event_seconds:,.0f}"),
            ("pool events/sec", f"{pool_report.events_per_sec:,.0f}"),
            ("warnings", pool_report.warnings_total),
            ("combined precision",
             f"{pool_report.combined.precision_so_far:.2f}"),
            ("combined recall", f"{pool_report.combined.recall_so_far:.2f}"),
        ],
    )
