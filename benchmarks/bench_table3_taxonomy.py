"""Table 3 — event categorization (8 main categories, 101 subcategories).

Regenerates the paper's taxonomy table and benchmarks classification
throughput over the bench log (the Phase-1 hot path).
"""

from benchmarks.conftest import report
from repro.evaluation.paper import TABLE3_SUBCATEGORY_COUNTS
from repro.taxonomy.categories import CATEGORY_ORDER
from repro.taxonomy.classifier import TaxonomyClassifier
from repro.taxonomy.subcategories import by_category, validate_catalog


def test_table3_subcategory_counts(benchmark):
    benchmark.pedantic(validate_catalog, rounds=1, iterations=1)
    rows = []
    for cat in CATEGORY_ORDER:
        subcats = by_category(cat)
        paper = TABLE3_SUBCATEGORY_COUNTS[cat]
        examples = ", ".join(sc.name for sc in subcats[:3])
        rows.append((cat.value.capitalize(), len(subcats), paper, examples))
        assert len(subcats) == paper
    rows.append(("TOTAL", sum(r[1] for r in rows), 101, ""))
    report("Table 3 — subcategories (measured vs paper)", rows)


def test_table3_classification_throughput(anl_bench_log, benchmark):
    """Classifying the raw bench log: one pass over interned entries."""
    clf = TaxonomyClassifier()
    labeled = benchmark(lambda: TaxonomyClassifier().classify_store(anl_bench_log.raw))
    counts = labeled.subcat_counts()
    report(
        "Table 3 — raw-log classification",
        [
            ("records classified", len(labeled)),
            ("distinct subcategories seen", len(counts)),
        ],
    )
    assert len(counts) > 40
