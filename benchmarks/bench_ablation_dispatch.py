"""Ablation — the meta-learner's dispatch policy.

The paper motivates coverage-based dispatch qualitatively; this bench makes
the choice measurable by comparing it against post-hoc combination policies
(union, intersection, confidence-max, single bases) on identical folds.

Expected ordering: the coverage-based meta matches union-level recall at
substantially better precision, and intersection trades nearly all recall
for precision.
"""


from benchmarks.conftest import report
from repro.evaluation.crossval import cross_validate
from repro.meta.ensembles import POLICIES, PolicyEnsemble
from repro.meta.stacked import MetaLearner
from repro.util.timeutil import MINUTE

W = 30 * MINUTE
G = 15 * MINUTE


def test_ablation_dispatch_policies(anl_bench_events, benchmark):
    def run():
        results = {}
        for policy in POLICIES:
            results[policy] = cross_validate(
                lambda policy=policy: PolicyEnsemble(policy), anl_bench_events,
                k=10,
            )
        results["meta (paper)"] = cross_validate(
            lambda: MetaLearner(prediction_window=W, rule_window=G),
            anl_bench_events,
            k=10,
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [("policy", "precision", "recall", "f1")]
    for name, cv in results.items():
        p, r = cv.precision, cv.recall
        f1 = 0.0 if p + r == 0 else 2 * p * r / (p + r)
        rows.append((name, round(p, 3), round(r, 3), round(f1, 3)))
    report("Ablation — dispatch policy (ANL, W=30 min)", rows)

    meta = results["meta (paper)"]
    union = results["union"]
    inter = results["intersection"]
    rule_only = results["rule_only"]
    stat_only = results["statistical_only"]

    # Meta keeps (nearly) union recall at better precision.
    assert meta.recall >= union.recall - 0.12
    assert meta.precision > union.precision
    # Meta dominates both single bases on recall.
    assert meta.recall > rule_only.recall
    assert meta.recall > stat_only.recall
    # Intersection (mutual confirmation) keeps only mutually-confirmed
    # warnings: never more recall than union, and precision at union level
    # or better (within fold noise).
    assert inter.precision > union.precision - 0.03
    assert inter.recall <= union.recall
