"""Lifecycle engine: hot-swap latency and drift-triggered precision recovery.

Two measurements, each with a built-in correctness gate (the managed loop
must behave — fire on drift, stay silent when stationary, keep resolution
counters consistent — before its numbers mean anything):

- **Hot-swap latency** — ``DetectorPool.swap_model`` on a warmed pool with
  live sessions and pending warnings, alternating between two fitted
  models.  Reported as p50/p99 from the ``serve.swap_seconds`` histogram;
  the gate checks every swap touched all live sessions and the resolution
  counters stayed monotone (no warning lost at the barrier — the
  element-for-element equivalence itself is proven in
  ``tests/lifecycle/test_swap.py``).
- **Drift-triggered precision recovery** — a serving model fitted on a
  *stale* epoch (the training slice with its top-16 subcategories removed,
  i.e. the distribution the stream has since drifted away from) serves the
  live continuation.  A frozen deployment keeps the stale model; the
  managed deployment (``LifecycleManager``) detects the reference/live
  mismatch via bucketed PSI, retrains on the sliding window and hot-swaps.
  Gates: drift fires on the stale scenario, a stationary control (fresh
  model, matching reference) never retrains, and the managed run beats the
  frozen baseline on both precision and recall.  A model fitted directly
  on the live stream's own epoch is reported as the ceiling.

The drift threshold here is 0.1 — the classic PSI "investigate" level —
rather than the monitor's 0.25 default: with top-10 bucketing the
stationary noise floor at this window size measures ~0.02, so 0.1 keeps a
5x margin while catching the one-sided shift (new labels appearing fold
into the ``__other__`` bucket, which moves PSI less than reference labels
vanishing does).  Everything is seeded; reruns are bit-identical.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from benchmarks.conftest import report
from repro.core.pipeline import ThreePhasePredictor
from repro.evaluation.spec import PredictorSpec
from repro.lifecycle import (
    DriftMonitor,
    LifecycleManager,
    ModelRegistry,
    RetrainPolicy,
    Retrainer,
    subcategory_counts,
)
from repro.obs import get_registry, summarize_histogram
from repro.serve import DetectorPool

#: Swap-latency sampling: alternating swaps on a warmed pool.
SWAP_ROUNDS = 60

#: Drift scenario: events per monitor window / swap-barrier chunk.
DRIFT_WINDOW = 512
#: PSI "investigate" threshold (see module docstring).
DRIFT_THRESHOLD = 0.1
#: Reference labels removed to build the stale training epoch.
STALE_DROP_TOP = 16


def _split(events, frac: float):
    cut = int(len(events) * frac)
    return events.select(slice(0, cut)), events.select(slice(cut, len(events)))


def _drop_top_labels(store, k: int):
    """The store minus its ``k`` most common subcategories (a stale epoch)."""
    counts = subcategory_counts(store)
    top = {
        name
        for name, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    }
    table = store.subcat_table
    keep = np.array([table[i] not in top for i in store.subcat_ids.tolist()])
    return store.select(np.flatnonzero(keep))


def _precision(stats) -> float:
    resolved = stats.hits + stats.false_alarms
    return stats.hits / resolved if resolved else 0.0


def test_hot_swap_latency(anl_bench_events):
    """swap_model p50/p99 on a pool with live sessions + pending warnings."""
    events = anl_bench_events
    train, live = _split(events, 0.5)
    spec = PredictorSpec.of("meta")
    model_a = spec.build(seed=None)
    model_a.fit(train)
    model_b = spec.build(seed=None)
    model_b.fit(_drop_top_labels(train, 4))

    pool = DetectorPool(model_a, shards=4)
    warm = live.select(slice(0, int(len(live) * 0.7)))
    pool.process_store(warm)
    sessions = len(pool._sessions)
    assert sessions > 0, "warm-up traffic created no sessions"
    # A fitted model dedups warnings against active horizons, so the pending
    # backlog at a real barrier is small — but it must be non-zero here or
    # the swap never exercises the pending-warning carry-over path.
    assert sum(s.pending_count for s in pool._sessions.values()) > 0

    before = pool.combined_stats()
    for i in range(SWAP_ROUNDS):
        swapped = pool.swap_model(model_b if i % 2 == 0 else model_a)
        assert swapped == sessions  # every live session crossed the barrier
    after = pool.combined_stats()
    # Barrier safety: swapping resolves nothing by itself — counters only
    # move when events arrive.
    assert after.hits == before.hits
    assert after.false_alarms == before.false_alarms
    assert after.warnings == before.warnings

    obs = get_registry()
    s = summarize_histogram(obs.histograms["serve.swap_seconds"])
    pending = summarize_histogram(obs.histograms["serve.swap_pending_warnings"])
    report(
        "hot-swap latency (4 shards, warmed pool)",
        [
            ("swaps", SWAP_ROUNDS),
            ("live sessions", sessions),
            ("pending warnings at barrier (mean)", f"{pending['mean']:.0f}"),
            ("swap p50", f"{s['p50'] * 1e3:.3f} ms"),
            ("swap p99", f"{s['p99'] * 1e3:.3f} ms"),
            ("swap max", f"{s['max'] * 1e3:.3f} ms"),
        ],
    )
    obs.gauge("lifecycle.bench_swap_p99_ms", s["p99"] * 1e3)


def test_drift_triggered_precision_recovery(anl_bench_events, tmp_path):
    """Managed (drift->retrain->swap) vs frozen stale model on a live epoch."""
    events = anl_bench_events
    head, live = _split(events, 0.5)
    train_stale = _drop_top_labels(head, STALE_DROP_TOP)

    spec = PredictorSpec.of("meta")
    stale = spec.build(seed=None)
    stale.fit(train_stale)
    fresh = spec.build(seed=None)
    fresh.fit(head)

    def frozen_run(model):
        pool = DetectorPool(model, shards=4)
        pool.process_store(live)
        return pool.finish()

    stale_stats = frozen_run(stale)
    fresh_stats = frozen_run(fresh)

    registry = ModelRegistry(tmp_path / "registry")
    base = registry.save(stale, spec=spec)
    manager = LifecycleManager(
        DetectorPool(stale, shards=4),
        DriftMonitor(train_stale, window=DRIFT_WINDOW, threshold=DRIFT_THRESHOLD),
        RetrainPolicy(on_drift=True, cooldown_events=2 * DRIFT_WINDOW),
        Retrainer(
            spec, registry, window_events=2 * DRIFT_WINDOW, seed=3,
            cache_dir=tmp_path / "cache",
        ),
        serving_snapshot=base.snapshot_id,
    )
    t0 = perf_counter()
    managed = manager.run(live, chunk_events=DRIFT_WINDOW)
    managed_seconds = perf_counter() - t0
    assert managed.stats is not None

    # Stationary control: a fresh model with a matching reference must
    # never fire — otherwise "drift detected" is just noise.
    control_registry = ModelRegistry(tmp_path / "control")
    control_base = control_registry.save(fresh, spec=spec)
    control = LifecycleManager(
        DetectorPool(fresh, shards=4),
        DriftMonitor(head, window=DRIFT_WINDOW, threshold=DRIFT_THRESHOLD),
        RetrainPolicy(on_drift=True, cooldown_events=2 * DRIFT_WINDOW),
        Retrainer(
            spec, control_registry, window_events=2 * DRIFT_WINDOW, seed=3,
            cache_dir=tmp_path / "control-cache",
        ),
        serving_snapshot=control_base.snapshot_id,
    ).run(live, chunk_events=DRIFT_WINDOW)

    assert managed.retrains >= 1, "drift never fired on the stale scenario"
    assert all(swap.reason == "drift" for swap in managed.swaps)
    assert control.retrains == 0, "stationary control retrained (noise)"

    stale_p, managed_p = _precision(stale_stats), _precision(managed.stats)
    assert managed_p > stale_p, (
        f"managed precision {managed_p:.4f} did not beat frozen "
        f"{stale_p:.4f}"
    )
    assert managed.stats.recall_so_far >= stale_stats.recall_so_far

    report(
        "drift-triggered precision recovery (stale epoch -> live stream)",
        [
            ("live events", len(live)),
            ("frozen stale precision / recall",
             f"{stale_p:.4f} / {stale_stats.recall_so_far:.4f}"),
            ("managed precision / recall",
             f"{managed_p:.4f} / {managed.stats.recall_so_far:.4f}"),
            ("fresh-fit ceiling precision / recall",
             f"{_precision(fresh_stats):.4f} / "
             f"{fresh_stats.recall_so_far:.4f}"),
            ("retrains (managed / control)",
             f"{managed.retrains} / {control.retrains}"),
            ("swaps", ", ".join(
                f"{s.reason}@{s.at_event} psi={s.drift_score:.3f}"
                for s in managed.swaps
            )),
            ("managed run time", f"{managed_seconds:.2f} s"),
        ],
    )
    obs = get_registry()
    obs.gauge("lifecycle.bench_precision_frozen", stale_p)
    obs.gauge("lifecycle.bench_precision_managed", managed_p)
