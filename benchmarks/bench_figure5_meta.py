"""Figure 5 — meta-learner vs prediction window (both logs).

Paper: with ANL, precision decreases 0.88 -> 0.65 while recall rises
0.64 -> 0.78 as the window grows 5 -> 60 min; with SDSC precision decreases
0.99 -> 0.89 with recall around 0.65.  Headline claim: "the combined
meta-learner has recall which is consistently more than [both bases] for all
prediction windows along with a consistently high value for precision".
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.paper import FIGURE5, RULE_GENERATION_WINDOW_MIN
from repro.evaluation.crossval import cross_validate
from repro.evaluation.sweep import prediction_window_sweep
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE

WINDOWS = tuple(m * MINUTE for m in (5, 10, 15, 20, 30, 40, 50, 60))


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_figure5_meta_sweep(
    system, anl_bench_events, sdsc_bench_events, benchmark
):
    events = anl_bench_events if system == "ANL" else sdsc_bench_events
    rule_window = RULE_GENERATION_WINDOW_MIN[system] * MINUTE

    points = benchmark.pedantic(
        lambda: prediction_window_sweep(
            lambda w: MetaLearner(prediction_window=w, rule_window=rule_window),
            events,
            windows=WINDOWS,
            k=10,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [("window(min)", "precision", "recall")]
    for p in points:
        rows.append((int(p.window_minutes), round(p.precision, 3),
                     round(p.recall, 3)))
    paper = FIGURE5[system]
    rows.append(("paper @5min", paper["precision_at_5min"],
                 paper.get("recall_at_5min", paper.get("recall_floor"))))
    rows.append(("paper @60min", paper["precision_at_60min"],
                 paper.get("recall_at_60min", paper.get("recall_floor"))))
    report(f"Figure 5 — {system} meta-learner sweep", rows)

    first, last = points[0], points[-1]
    # Shapes: recall rises (or holds) with the window; precision stays high
    # and does not *increase* substantially as the window grows.
    assert last.recall >= first.recall - 0.02
    assert all(p.precision > 0.55 for p in points)
    assert all(p.recall > 0.3 for p in points)


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_figure5_meta_beats_both_bases(
    system, anl_bench_events, sdsc_bench_events, benchmark
):
    """The paper's headline: meta recall exceeds both bases at every window
    while precision stays between the rule method's and well above the
    statistical method's."""
    events = anl_bench_events if system == "ANL" else sdsc_bench_events
    G = RULE_GENERATION_WINDOW_MIN[system] * MINUTE

    def run(W):
        stat = cross_validate(
            lambda: StatisticalPredictor(
                window=HOUR, lead=5 * MINUTE,
                categories=[MainCategory.NETWORK, MainCategory.IOSTREAM],
            ),
            events, k=10,
        )
        rule = cross_validate(
            lambda: RuleBasedPredictor(rule_window=G, prediction_window=W),
            events, k=10,
        )
        meta = cross_validate(
            lambda: MetaLearner(prediction_window=W, rule_window=G),
            events, k=10,
        )
        return stat, rule, meta

    stat, rule, meta = benchmark.pedantic(
        lambda: run(30 * MINUTE), rounds=1, iterations=1
    )
    from repro.evaluation.significance import (
        bootstrap_ci,
        paired_bootstrap_pvalue,
    )

    ci = bootstrap_ci(meta, "recall", seed=1)
    p_rule = paired_bootstrap_pvalue(meta, rule, "recall", seed=1)
    p_stat = paired_bootstrap_pvalue(meta, stat, "recall", seed=1)
    report(
        f"Figure 5 — {system} meta vs bases (W=30 min)",
        [
            ("statistical P/R", f"{stat.precision:.3f} / {stat.recall:.3f}"),
            ("rule        P/R", f"{rule.precision:.3f} / {rule.recall:.3f}"),
            ("meta        P/R", f"{meta.precision:.3f} / {meta.recall:.3f}"),
            ("meta recall 95% CI", f"[{ci.lower:.3f}, {ci.upper:.3f}]"),
            ("p(meta <= rule recall)", round(p_rule, 4)),
            ("p(meta <= statistical recall)", round(p_stat, 4)),
        ],
    )
    assert meta.recall >= max(stat.recall, rule.recall) - 0.02
    assert meta.precision > stat.precision
    # Paper: "improve failure accuracy by up to three times" (recall vs the
    # weaker base) — require a substantial boost, and require it to be
    # statistically solid, not a fold accident.
    assert meta.recall > 1.2 * min(stat.recall, rule.recall)
    assert p_rule < 0.05 and p_stat < 0.05
