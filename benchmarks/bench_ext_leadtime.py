"""Extension — warning lead-time profile (ours).

The paper motivates prediction with proactive fault tolerance (§1) and
argues windows under 5 minutes are "too small for taking preventive
action".  This bench quantifies that: for each minimum-notice requirement,
the fraction of failures the meta-learner predicts with at least that much
lead (actionable recall), on a chronological split of the ANL bench log.
"""

from benchmarks.conftest import report
from repro.evaluation.leadtime import lead_time_profile, lead_time_summary
from repro.evaluation.matching import match_warnings
from repro.meta.stacked import MetaLearner
from repro.util.timeutil import MINUTE

LEADS = tuple(m * MINUTE for m in (1, 2, 5, 10, 20, 30))


def test_ext_lead_time_profile(anl_bench_events, benchmark):
    def run():
        cut = int(len(anl_bench_events) * 0.7)
        meta = MetaLearner(
            prediction_window=30 * MINUTE, rule_window=15 * MINUTE
        ).fit(anl_bench_events.select(slice(0, cut)))
        test = anl_bench_events.select(slice(cut, len(anl_bench_events)))
        match = match_warnings(meta.predict(test), test)
        return match

    match = benchmark.pedantic(run, rounds=1, iterations=1)
    points = lead_time_profile(match, LEADS)
    summary = lead_time_summary(match)

    rows = [("min lead", "actionable recall", "coverage retained")]
    for p in points:
        rows.append((f"{int(p.min_lead_minutes)} min",
                     round(p.actionable_recall, 3),
                     round(p.coverage_retention, 3)))
    rows.append(("median lead (s)", round(summary["median"], 0), ""))
    rows.append(("p90 lead (s)", round(summary["p90"], 0), ""))
    report("Extension — lead-time profile (ANL, meta, W=30 min)", rows)

    ar = [p.actionable_recall for p in points]
    assert ar == sorted(ar, reverse=True), "monotone in the requirement"
    assert ar[0] > 0.3, "most coverage arrives with >= 1 min notice"
    # The paper's 5-minute argument: substantial coverage survives a
    # 5-minute action cost.
    five = points[2]
    assert five.actionable_recall > 0.15
