"""Figure 3 — generated association rules with confidence values.

Mines rules from the ANL bench log exactly as the paper does (support 0.04,
confidence 0.2, rule-generation window 15 min) and prints the rule list in
Figure 3's format.  The paper's figure shows rules like::

    nodeMapFileError ==> nodeMapCreateFailure: 1
    ddrErrorCorrectionInfo maskInfo ==> socketReadFailure: 0.697674
    coredumpCreated ==> loadProgramFailure: 0.583333

We assert the same *patterns* are rediscovered: the marquee rules appear,
confidences span a wide band, and rules are sorted by confidence.
"""

from benchmarks.conftest import report
from repro.predictors.rulebased import RuleBasedPredictor
from repro.util.timeutil import MINUTE


def test_figure3_rule_list(anl_bench_events, benchmark):
    rb = benchmark.pedantic(
        lambda: RuleBasedPredictor(
            rule_window=15 * MINUTE, min_support=0.04, min_confidence=0.2
        ).fit(anl_bench_events),
        rounds=1,
        iterations=1,
    )
    ruleset = rb.ruleset
    assert ruleset is not None and len(ruleset) >= 5

    lines = ruleset.format_rules().splitlines()
    report(
        "Figure 3 — mined association rules (ANL, G=15 min)",
        [(ln, "") for ln in lines],
    )

    text = "\n".join(lines)
    # Marquee Figure-3 patterns rediscovered from the synthetic log.
    assert "nodeMapFileError ==> nodeMapCreateFailure" in text
    assert "ddrErrorCorrectionInfo maskInfo ==>" in text
    assert "coredumpCreated ==>" in text

    confs = [r.confidence for r in ruleset]
    assert confs == sorted(confs, reverse=True), "Step 4: confidence order"
    assert max(confs) > 0.85 and min(confs) >= 0.2


def test_figure3_rule_combination(anl_bench_events, benchmark):
    """Step 3: same-body rules are combined into multi-head rules."""

    def mine(combine):
        return RuleBasedPredictor(rule_window=15 * MINUTE).fit(
            anl_bench_events
        ) if combine else None

    rb = benchmark.pedantic(lambda: mine(True), rounds=1, iterations=1)
    bodies = [r.body for r in rb.ruleset]
    assert len(bodies) == len(set(bodies)), "combined rules have unique bodies"


def test_figure3_no_precursor_statistic(anl_bench_events, benchmark):
    """The paper: 31-66 % of ANL failures have no precursor non-fatal
    events (across window sizes); at G=15 min we must be in that band's
    vicinity."""
    rb = benchmark.pedantic(
        lambda: RuleBasedPredictor(rule_window=15 * MINUTE).fit(
            anl_bench_events
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Figure 3 — failures with no precursors (ANL, 15-min window)",
        [
            ("measured", round(rb.no_precursor_fraction, 3)),
            ("paper", "0.31 - 0.66 (across windows)"),
        ],
    )
    assert 0.15 <= rb.no_precursor_fraction <= 0.7
