"""§3.2.2 Step 5 — rule-generation window selection.

"To determine the optimum size of the rule generation window, we conducted
experiments with window size ranging from 5 minutes to 1 hour ... we chose
the window size which gives the best precision with highest recall.  Thus,
the rule generation window is 15 minutes for ANL log and 25 minutes for
SDSC log."

The synthetic profiles plant chain geometries that make those windows
favored: shorter windows truncate precursor bodies, longer windows only add
dilution.  We assert the selected window falls in the paper's neighbourhood
for each system and that severely truncating windows lose recall.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation.paper import RULE_GENERATION_WINDOW_MIN
from repro.evaluation.spec import PredictorSpec
from repro.evaluation.sweep import select_rule_window, sweep
from repro.util.timeutil import MINUTE

GRID = tuple(m * MINUTE for m in (5, 10, 15, 20, 25, 30, 40, 60))

#: Swept spec: the grid varies the rule-generation window, holding the
#: paper's 30-minute prediction window fixed.  The engine honors
#: ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``, so re-runs with a warm artifact
#: cache skip all 2 x 8 x 10 mining fits.
RULE_SPEC = PredictorSpec.rule(prediction_window=30 * MINUTE)


def _knee(points):
    """Smallest window achieving 95 % of the sweep's peak precision."""
    peak = max(p.precision for p in points)
    return min(
        (p for p in points if p.precision >= 0.95 * peak),
        key=lambda p: p.window,
    )


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_rulegen_window_selection(
    system, anl_bench_events, sdsc_bench_events, benchmark
):
    events = anl_bench_events if system == "ANL" else sdsc_bench_events

    points = benchmark.pedantic(
        lambda: sweep(RULE_SPEC.grid("rule_window", GRID), events, k=10),
        rounds=1,
        iterations=1,
    )
    best = select_rule_window(points)
    knee = _knee(points)

    rows = [("rule window(min)", "precision", "recall")]
    for p in points:
        marker = " <- selected" if p.window == best.window else ""
        marker += " <- knee" if p.window == knee.window else ""
        rows.append((f"{int(p.window_minutes)}{marker}",
                     round(p.precision, 3), round(p.recall, 3)))
    rows.append(("paper selection", f"{RULE_GENERATION_WINDOW_MIN[system]} min", ""))
    report(f"Step 5 — {system} rule-generation window sweep", rows)

    paper_min = RULE_GENERATION_WINDOW_MIN[system]
    # The precision knee (smallest window within 5 % of peak precision)
    # sits at the precursor chains' extent — within a grid step or two of
    # the paper's choice.  (The full best-precision/highest-recall selection
    # can jitter along the plateau between realizations.)
    assert abs(knee.window_minutes - paper_min) <= 15
    assert abs(best.window_minutes - paper_min) <= 25
    if system == "SDSC":
        # SDSC's wider chains need at least as wide a window as ANL's.
        anl_points = sweep(
            RULE_SPEC.grid("rule_window", GRID), anl_bench_events, k=10
        )
        assert knee.window_minutes >= _knee(anl_points).window_minutes

    # Truncation hurts: a 5-minute window clearly loses precision.
    assert points[0].precision < knee.precision - 0.05
