"""Online deployment simulation: replay a day of RAS events in real time.

The paper argues the meta-learner "is practical to deploy ... as an online
prediction engine" (rule matching is trivial; only an hour of history is
needed).  This example simulates that deployment:

- train the meta-learner on the first 80 % of an SDSC-profile log;
- replay the remaining events in timestamp order, as a monitoring daemon
  would receive them from CMCS;
- print each warning the moment it is raised, then check it against what
  actually happened, and summarize operator-facing statistics (lead time,
  false-alarm rate, failures caught/missed).

Run:  python examples/online_monitor.py
"""

from repro import LogGenerator, ThreePhasePredictor, sdsc_profile
from repro.evaluation.matching import match_warnings
from repro.meta.stacked import MetaLearner
from repro.util.timeutil import MINUTE, format_epoch


def main() -> None:
    print("generating SDSC log and training the meta-learner ...")
    log = LogGenerator(sdsc_profile(), scale=0.08, seed=23).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    cut = int(len(events) * 0.8)
    train, live = events.select(slice(0, cut)), events.select(
        slice(cut, len(events))
    )

    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=25 * MINUTE
    ).fit(train)
    print(f"trained on {len(train):,} events "
          f"({len(train.fatal_events())} failures); "
          f"{len(meta.rulebased.ruleset)} rules, "
          f"triggers={[c.value for c in meta.statistical.trigger_categories]}")

    # The predictor is streaming by construction (a single forward pass);
    # predict() returns the warnings in the order a daemon would raise them.
    warnings = meta.predict(live)
    match = match_warnings(warnings, live)

    fatal = live.fatal_events()
    print(f"\nreplaying {len(live):,} live events "
          f"({len(fatal)} failures) ...\n")
    print("--- operator console " + "-" * 46)
    for w, hit in zip(warnings, match.warning_hit):
        verdict = "HIT " if hit else "MISS"
        print(f"[{format_epoch(w.issued_at)}] WARNING "
              f"(conf {w.confidence:.2f}) failure expected within "
              f"{(w.horizon_end - w.issued_at) // 60} min "
              f"| outcome: {verdict} | {w.detail[:48]}")
    print("-" * 68)

    m = match.metrics
    caught = m.covered_fatals
    print(f"\nshift summary:")
    print(f"  warnings raised:     {m.n_warnings} "
          f"({m.fp_warnings} false alarms, "
          f"precision {m.precision:.2f})")
    print(f"  failures caught:     {caught}/{m.n_fatals} "
          f"(recall {m.recall:.2f})")
    print(f"  mean lead time:      {match.mean_lead / 60:.1f} min")
    print(f"  dispatch mix:        {meta.dispatch_counts}")
    print("\nwith ~minutes of lead time per caught failure, a checkpoint "
          "or job-migration policy has room to act (paper §1).")


if __name__ == "__main__":
    main()
