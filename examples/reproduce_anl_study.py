"""Reproduce the paper's ANL study at laptop scale.

Walks through every experiment of the evaluation in order — Table 4
(compressed fatal distribution), Figure 2 (failure-gap CDF), Table 5
(statistical predictor), Figure 3 (mined rules), Figure 4 (rule-based
sweep) and Figure 5 (meta-learner sweep) — on a 15 %-scale ANL log, printing
measured values next to the paper's.

The benchmarks in ``benchmarks/`` run the same experiments with shape
assertions; this script is the narrative version.

Run:  python examples/reproduce_anl_study.py   (~1-2 minutes)
"""

import numpy as np

from repro import LogGenerator, ThreePhasePredictor, anl_profile
from repro.evaluation import cross_validate, prediction_window_sweep
from repro.evaluation.paper import TABLE4, TABLE5
from repro.evaluation.sweep import format_sweep
from repro.meta.stacked import MetaLearner
from repro.predictors.rulebased import RuleBasedPredictor
from repro.predictors.statistical import StatisticalPredictor, failure_gap_cdf
from repro.preprocess.summary import category_fatal_counts, format_table4
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import HOUR, MINUTE

SCALE = 0.15
WINDOWS = [m * MINUTE for m in (5, 15, 30, 60)]


def main() -> None:
    print(f"=== generating ANL log at scale {SCALE} ===")
    log = LogGenerator(anl_profile(), scale=SCALE, seed=11).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    print(f"{log.n_raw:,} raw records -> {len(events):,} unique events, "
          f"{len(events.fatal_events())} failures\n")

    # ------------------------------------------------------------------ #
    print("=== Table 4 — compressed fatal events by category ===")
    counts = category_fatal_counts(events)
    paper_scaled = {
        cat: round(TABLE4["ANL"][cat] * SCALE) for cat in MainCategory
    }
    print(format_table4({"measured": counts, "paper(x0.15)": paper_scaled}))

    # ------------------------------------------------------------------ #
    print("\n=== Figure 2 — failure-gap CDF ===")
    grid = np.array([5 * MINUTE, 30 * MINUTE, HOUR, 6 * HOUR], dtype=float)
    _, cdf = failure_gap_cdf(events, grid)
    for g, c in zip(grid, cdf):
        print(f"  P(next failure within {int(g) // 60:>3} min) = {c:.3f}")

    # ------------------------------------------------------------------ #
    print("\n=== Table 5 — statistical predictor (10-fold CV) ===")
    cv = cross_validate(
        lambda: StatisticalPredictor(
            window=HOUR, lead=5 * MINUTE,
            categories=[MainCategory.NETWORK, MainCategory.IOSTREAM],
        ),
        events, k=10,
    )
    print(f"  measured: P={cv.precision:.4f} R={cv.recall:.4f}")
    print(f"  paper:    P={TABLE5['ANL']['precision']} "
          f"R={TABLE5['ANL']['recall']}")

    # ------------------------------------------------------------------ #
    print("\n=== Figure 3 — mined association rules (G=15 min) ===")
    rb = RuleBasedPredictor(rule_window=15 * MINUTE).fit(events)
    print(rb.ruleset.format_rules(limit=10))
    print(f"  failures without precursors: {rb.no_precursor_fraction:.1%} "
          "(paper: 31-66 % across windows)")

    # ------------------------------------------------------------------ #
    print("\n=== Figure 4 — rule-based predictor vs prediction window ===")
    points = prediction_window_sweep(
        lambda w: RuleBasedPredictor(rule_window=15 * MINUTE,
                                     prediction_window=w),
        events, windows=WINDOWS, k=10,
    )
    print(format_sweep(points))
    print("  paper: precision 0.7-0.9, recall rising 0.22 -> 0.55")

    # ------------------------------------------------------------------ #
    print("\n=== Figure 5 — meta-learner vs prediction window ===")
    points = prediction_window_sweep(
        lambda w: MetaLearner(prediction_window=w, rule_window=15 * MINUTE),
        events, windows=WINDOWS, k=10,
    )
    print(format_sweep(points))
    print("  paper: precision 0.88 -> 0.65, recall 0.64 -> 0.78")
    print("\nheadline: the meta-learner's recall exceeds both base "
          "predictors at every window while precision stays rule-grade.")


if __name__ == "__main__":
    main()
