"""Quickstart: generate a Blue Gene/L RAS log and predict failures.

Runs the full three-phase pipeline of the paper end to end:

1. synthesize a raw RAS log for the ANL system profile (the CMCS simulator
   produces the redundant raw records a real repository would hold);
2. Phase 1 — categorize + compress it to unique events;
3. Phases 2-3 — train the statistical and rule-based base predictors and the
   meta-learner on the first 70 % of the log;
4. predict failures on the remaining 30 % and score the warnings.

Run:  python examples/quickstart.py
"""

from repro import (
    LogGenerator,
    ThreePhasePredictor,
    anl_profile,
    match_warnings,
)


def main() -> None:
    # 1. Synthesize a log: 5 % of the ANL system's 15-month span.
    print("generating synthetic ANL RAS log (scale 0.05) ...")
    log = LogGenerator(anl_profile(), scale=0.05, seed=42).generate()
    print(f"  raw records:   {log.n_raw:,}")
    print(f"  unique events: {log.n_unique:,} (ground truth)")

    # 2. Phase 1 on the raw records.
    predictor = ThreePhasePredictor()
    result = predictor.preprocess(log.raw)
    events = result.events
    print(f"  after Phase 1: {result.unique_events:,} events "
          f"({result.overall_compression:.1%} compression)")
    print(f"  failures:      {len(events.fatal_events()):,}")

    # 3. Chronological 70/30 split; train phases 2-3.
    cut = int(len(events) * 0.7)
    train, test = events.select(slice(0, cut)), events.select(
        slice(cut, len(events))
    )
    predictor.fit(train)
    print(f"\ntrained: {predictor.report.rules_mined} association rules, "
          f"triggers = {predictor.report.trigger_categories}")

    # 4. Predict and evaluate.
    warnings = predictor.predict(test)
    match = match_warnings(warnings, test)
    m = match.metrics
    print(f"\n{len(warnings)} warnings on the test period:")
    for w in warnings[:5]:
        print(f"  t={w.issued_at}  confidence={w.confidence:.2f}  {w.detail[:70]}")
    if len(warnings) > 5:
        print(f"  ... and {len(warnings) - 5} more")
    print(f"\nprecision = {m.precision:.3f}   recall = {m.recall:.3f}   "
          f"f1 = {m.f1:.3f}")
    print(f"mean warning lead time: {match.mean_lead / 60:.1f} minutes")


if __name__ == "__main__":
    main()
