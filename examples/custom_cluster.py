"""Extend the framework to a hypothetical non-Blue-Gene cluster.

The paper's summary: "we believe the proposed three-phase framework can be
extended for general failure analysis and prediction in other large-scale
clusters".  This example builds a *custom* system profile — a 4-rack machine
with its own failure modes, workload and duplication behaviour — and runs
the unchanged pipeline on it:

- a custom :class:`MachineSpec` (4 racks, I/O-lean);
- custom chain templates (a disk-array failure mode and a fabric failure
  mode) on top of two catalog patterns;
- heavier storms than either paper system.

Run:  python examples/custom_cluster.py
"""

from repro import LogGenerator, ThreePhasePredictor
from repro.bgl.cmcs import DuplicationModel
from repro.bgl.topology import MachineSpec
from repro.evaluation import cross_validate
from repro.meta.stacked import MetaLearner
from repro.synth.chains import ChainTemplate, default_chain_templates
from repro.synth.profiles import BurstConfig, SystemProfile, WorkloadConfig, _noise_rates
from repro.taxonomy.categories import MainCategory
from repro.util.timeutil import MINUTE


def build_profile() -> SystemProfile:
    """A 4-rack, I/O-lean research cluster with its own failure mix."""
    _ = MainCategory
    custom_chains = default_chain_templates(
        confidence_scale=1.1,
        body_span=9 * MINUTE,
        head_lag=(30.0, 150.0),
        weight_overrides={
            # This cluster's dominant failure modes: fabric and memory.
            "torus-sendrecv": 12.0,
            "sram-parity": 6.0,
        },
    ) + [
        # A failure mode the paper systems don't have: thermal runaway on
        # service hardware escalating to bulk power loss.
        ChainTemplate(
            key="thermal-runaway",
            body=("tempSensorWarning", "fanSpeedWarning", "powerSupplyError"),
            head="bulkPowerFailure",
            confidence=0.9,
            body_span=12 * MINUTE,
            head_lag=(60.0, 300.0),
            weight=5.0,
        ),
    ]
    return SystemProfile(
        name="RESEARCH-4R",
        machine=MachineSpec(racks=4, io_nodes_per_nodecard=1),
        start_epoch=1_000_000_000,
        days=200.0,
        fatal_budget={
            _.APPLICATION: 300, _.IOSTREAM: 350, _.KERNEL: 250,
            _.MEMORY: 220, _.MIDPLANE: 60, _.NETWORK: 500,
            _.NODECARD: 30, _.OTHER: 160,
        },
        chain_fraction={
            _.APPLICATION: 0.5, _.IOSTREAM: 0.3, _.KERNEL: 0.6,
            _.MEMORY: 0.7, _.MIDPLANE: 0.7, _.NETWORK: 0.4,
            _.NODECARD: 0.6, _.OTHER: 0.8,
        },
        burst_fraction={
            _.APPLICATION: 0.1, _.IOSTREAM: 0.5, _.KERNEL: 0.1,
            _.MEMORY: 0.0, _.MIDPLANE: 0.0, _.NETWORK: 0.45,
            _.NODECARD: 0.0, _.OTHER: 0.0,
        },
        chains=custom_chains,
        burst=BurstConfig(mean_cluster_size=12.0, lag=(4 * MINUTE, 30 * MINUTE)),
        noise=_noise_rates(high_scale=0.6, body_scale=0.8),
        duplication=DuplicationModel(
            mean_reporting_chips=48.0, mean_repeats=1.5
        ),
        workload=WorkloadConfig(mean_interarrival=900.0, p_full_machine=0.1),
        chain_burst_anchor_fraction=0.3,
    )


def main() -> None:
    profile = build_profile()
    print(f"=== custom cluster: {profile.name} "
          f"({profile.machine.compute_nodes} nodes, "
          f"{profile.machine.racks} racks) ===")
    log = LogGenerator(profile, scale=0.3, seed=5).generate()
    events = ThreePhasePredictor().preprocess(log.raw).events
    print(f"{log.n_raw:,} raw records -> {len(events):,} unique events, "
          f"{len(events.fatal_events())} failures")

    # The unchanged pipeline adapts: triggers and rules are learned from
    # this cluster's own data.
    cv = cross_validate(
        lambda: MetaLearner(
            prediction_window=30 * MINUTE, rule_window=15 * MINUTE
        ),
        events, k=5,
    )
    print(f"\nmeta-learner (5-fold CV): precision={cv.precision:.3f} "
          f"recall={cv.recall:.3f}")

    meta = MetaLearner(
        prediction_window=30 * MINUTE, rule_window=15 * MINUTE
    ).fit(events)
    print(f"learned triggers: "
          f"{[c.value for c in meta.statistical.trigger_categories]}")
    print("\ntop rules discovered on this cluster:")
    print(meta.rulebased.ruleset.format_rules(limit=8))
    text = meta.rulebased.ruleset.format_rules()
    if "bulkPowerFailure" in text:
        print("\nnote the thermal-runaway mode surfacing as a mined rule — "
              "the framework discovered a failure chain the paper never saw.")


if __name__ == "__main__":
    main()
