"""Validate relative links and intra-repo anchors in the Markdown docs.

Checks every inline Markdown link (``[text](target)``, images included) in
the repo's operational manual — ``docs/*.md`` plus the top-level
``README.md``, ``EXPERIMENTS.md`` and ``DESIGN.md`` — for three failure
modes that silently rot:

1. a relative link whose target file does not exist (GitHub resolves
   relative to the containing file, so this tool does too);
2. an anchor link (``file.md#section`` or ``#section``) whose slug matches
   no heading in the target file (GitHub's slugification rules);
3. a link that escapes the repository root.

External links (``http://``, ``https://``, ``mailto:``) are skipped — this
build is offline and their liveness is not this tool's concern.
Reference-style definitions (``[id]: target``) are checked too; bare paths
in prose or code spans are not links and are ignored.

Usage::

    python -m tools.doc_link_check            # default file set, exit 0/1
    python -m tools.doc_link_check README.md docs/observability.md

Also enforced by ``tests/tools/test_doc_link_check.py`` (so plain pytest
fails on a broken link) and by CI next to repro-lint.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Inline links/images: [text](target) / ![alt](target "title").
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [id]: target
REF_DEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
#: ATX headings, for anchor slugs.
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
#: Fenced code block delimiters.
FENCE_RE = re.compile(r"^\s*(```|~~~)")
#: Schemes that are out of scope.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Characters GitHub keeps when slugifying a heading (besides word chars).
_SLUG_STRIP_RE = re.compile(r"[^\w\- ]", re.UNICODE)
#: Markdown inline markup stripped before slugification.
_MARKUP_RE = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")


@dataclass
class LinkError:
    """One broken link: file, line, target, and what is wrong with it."""

    path: Path
    line: int
    target: str
    reason: str

    def format(self) -> str:
        return f"{self.path.as_posix()}:{self.line}: {self.target} — {self.reason}"


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text (lowercase, hyphenated)."""
    text = _MARKUP_RE.sub(lambda m: m.group(1) or "", heading)
    text = _SLUG_STRIP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_anchors(markdown: str) -> set[str]:
    """All anchor slugs a Markdown document exposes (with -N dedup suffixes)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(markdown: str) -> Iterable[tuple[int, str]]:
    """(line_number, target) for every inline link and reference definition."""
    in_fence = False
    for lineno, line in enumerate(markdown.splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        ref = REF_DEF_RE.match(line)
        if ref:
            yield lineno, ref.group(1)
            continue
        for m in INLINE_LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(
    path: Path, repo_root: Path, anchor_cache: dict[Path, set[str]]
) -> list[LinkError]:
    """All broken relative links/anchors in one Markdown file."""
    errors: list[LinkError] = []
    text = path.read_text(encoding="utf-8")
    for lineno, raw_target in iter_links(text):
        target = raw_target.strip()
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("data:"):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(repo_root.resolve())
            except ValueError:
                errors.append(
                    LinkError(path, lineno, target, "escapes the repository")
                )
                continue
            if not resolved.exists():
                errors.append(
                    LinkError(path, lineno, target, "target does not exist")
                )
                continue
        else:
            resolved = path.resolve()
        if anchor and resolved.suffix.lower() in (".md", ".markdown"):
            anchors = anchor_cache.get(resolved)
            if anchors is None:
                anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
                anchor_cache[resolved] = anchors
            if anchor.lower() not in anchors:
                errors.append(
                    LinkError(path, lineno, target, f"no heading #{anchor}")
                )
    return errors


def default_files(repo_root: Path) -> list[Path]:
    """The documentation surface this tool guards by default."""
    files = sorted((repo_root / "docs").glob("*.md"))
    for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md"):
        candidate = repo_root / name
        if candidate.exists():
            files.append(candidate)
    return files


def check_paths(
    paths: Sequence[Path], repo_root: Path
) -> list[LinkError]:
    """Check many files, sharing the per-target anchor cache."""
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[LinkError] = []
    for path in paths:
        errors.extend(check_file(path, repo_root, anchor_cache))
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="doc-link-check",
        description="validate relative links and anchors in repo Markdown",
    )
    parser.add_argument(
        "files", nargs="*",
        help="Markdown files to check (default: docs/*.md README.md "
             "EXPERIMENTS.md DESIGN.md)",
    )
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args(argv)
    repo_root = Path(args.root)
    files = [Path(f) for f in args.files] or default_files(repo_root)
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"doc-link-check: no such file: {f}", file=sys.stderr)
        return 2
    errors = check_paths(files, repo_root)
    for err in errors:
        print(err.format())
    if errors:
        print(f"doc-link-check: {len(errors)} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"doc-link-check: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
