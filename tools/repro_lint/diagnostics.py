"""Diagnostic records emitted by repro-lint rules.

A :class:`Diagnostic` pins a rule violation to a ``file:line:col`` location
and carries both the human-readable message and a *fix hint* — the invariant
checkers exist to teach the conventions, so every rule explains how to comply
rather than just complaining.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = field(default="", compare=False)

    def format(self, *, show_hint: bool = True) -> str:
        """Render ``path:line:col: CODE message`` (plus the hint if any)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def sort_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    """Stable order for reporting: by path, then line, column and code."""
    return sorted(diags)
