"""Diagnostic records emitted by repro-lint rules.

A :class:`Diagnostic` pins a rule violation to a ``file:line:col`` location
and carries the human-readable message, a *fix hint* — the invariant
checkers exist to teach the conventions, so every rule explains how to
comply rather than just complaining — and a severity tier:

``error``
    Violates a correctness invariant; fails the build (subject to the
    committed baseline, see ``baseline.py``).
``warn``
    Probably wrong or fragile, but with known-legitimate shapes (e.g. a
    bound method crossing a process boundary); reported, does not fail
    the build by default.
``info``
    Advisory only (e.g. contract-coverage notes).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

SEVERITIES = ("error", "warn", "info")

#: Diagnostic severity -> SARIF 2.1.0 result level.
SARIF_LEVELS = {"error": "error", "warn": "warning", "info": "note"}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = field(default="", compare=False)
    severity: str = field(default="error", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity {self.severity!r} not one of {SEVERITIES}"
            )

    def format(self, *, show_hint: bool = True) -> str:
        """Render ``path:line:col: CODE [severity] message`` (+ hint)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def sort_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    """Stable order for reporting: by path, then line, column and code."""
    return sorted(diags)


def count_by_severity(diags: list[Diagnostic]) -> dict[str, int]:
    counts = {sev: 0 for sev in SEVERITIES}
    for diag in diags:
        counts[diag.severity] += 1
    return counts
