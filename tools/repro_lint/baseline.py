"""Committed-baseline mode: adopt today's findings, fail only regressions.

A baseline file records accepted findings as ``(path, code, message)``
triples with occurrence counts — deliberately *without* line numbers, so
unrelated edits that shift a finding do not churn the file.  ``--baseline
FILE`` filters matching findings out of the failing set (they are still
counted and reported in ``--stats``); ``--update-baseline`` rewrites the
file from the current findings.

The committed baseline (``tools/repro_lint/baseline.json``) is itself
gated: a pytest test asserts it contains zero error-tier entries, so the
baseline can park warn/info debt but never an invariant violation.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from tools.repro_lint.diagnostics import Diagnostic

BASELINE_FORMAT_VERSION = 1

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

Key = tuple[str, str, str]  # (path, code, message)


@dataclass
class Baseline:
    """Accepted findings, keyed by (path, code, message) with counts."""

    entries: Counter = field(default_factory=Counter)
    severities: dict[Key, str] = field(default_factory=dict)
    source_path: Optional[str] = None

    @staticmethod
    def key_of(diag: Diagnostic) -> Key:
        return (diag.path, diag.code, diag.message)

    def split(
        self, diags: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition into (new findings, baselined findings).

        Each baseline entry absorbs at most its recorded count of
        occurrences; extra occurrences of a baselined finding are
        regressions and stay in the failing set.
        """
        budget = Counter(self.entries)
        fresh: list[Diagnostic] = []
        absorbed: list[Diagnostic] = []
        for diag in diags:
            key = self.key_of(diag)
            if budget[key] > 0:
                budget[key] -= 1
                absorbed.append(diag)
            else:
                fresh.append(diag)
        return fresh, absorbed

    def error_entries(self) -> list[Key]:
        """Keys of baselined findings recorded at error severity."""
        return sorted(
            key for key, sev in self.severities.items() if sev == "error"
        )

    # -- persistence ---------------------------------------------------- #

    @classmethod
    def from_diagnostics(cls, diags: list[Diagnostic]) -> "Baseline":
        baseline = cls()
        for diag in diags:
            key = cls.key_of(diag)
            baseline.entries[key] += 1
            baseline.severities[key] = diag.severity
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text("utf-8"))
        if data.get("format_version") != BASELINE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: baseline format {data.get('format_version')!r} "
                f"!= {BASELINE_FORMAT_VERSION}"
            )
        baseline = cls(source_path=str(path))
        for entry in data.get("entries", []):
            key = (entry["path"], entry["code"], entry["message"])
            baseline.entries[key] = int(entry.get("count", 1))
            baseline.severities[key] = entry.get("severity", "error")
        return baseline

    def save(self, path: Path) -> None:
        entries = [
            {
                "path": key[0],
                "code": key[1],
                "message": key[2],
                "count": count,
                "severity": self.severities.get(key, "error"),
            }
            for key, count in sorted(self.entries.items())
        ]
        payload = {
            "format_version": BASELINE_FORMAT_VERSION,
            "entries": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        "utf-8")
