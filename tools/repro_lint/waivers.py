"""Waiver comments: opting a line out of a repro-lint rule.

Two forms are recognised, both anchored to the physical line they appear on:

``# repro-lint: disable=RL001[,RL002,...]``
    Suppress the listed rule codes on this line.  Rules that reason about a
    whole function (RL003, RL005) also honour a waiver on the function's
    ``def`` line.

``# repro-lint: sorted``
    Domain-specific alias for ``disable=RL003`` — asserts that the array
    operand is sorted by construction and the O(n) :func:`check_sorted`
    guard is deliberately omitted (hot-path functions document the
    precondition instead).

Unknown or malformed directives are themselves reported (``RL000``) so a
typo'd waiver cannot silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from tools.repro_lint.diagnostics import Diagnostic

DIRECTIVE_RE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
CODE_RE = re.compile(r"^RL\d{3}$")

#: Domain aliases: tag -> waived rule code.
ALIASES: dict[str, str] = {"sorted": "RL003"}


@dataclass
class Waivers:
    """Per-file map of line number -> waived rule codes."""

    path: str
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: Malformed/unknown directives found while parsing.
    errors: list[Diagnostic] = field(default_factory=list)

    def is_waived(self, code: str, *lines: int) -> bool:
        """True if ``code`` is waived on any of the given lines."""
        return any(code in self.by_line.get(line, ()) for line in lines)


def parse_waivers(path: str, source: str) -> Waivers:
    """Extract all waiver directives from ``source`` comment tokens."""
    waivers = Waivers(path=path)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers  # parse errors are reported by the engine, not here
    for line, col, text in comments:
        match = DIRECTIVE_RE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        codes = _parse_directive_body(body)
        if codes is None:
            waivers.errors.append(
                Diagnostic(
                    path=path,
                    line=line,
                    col=col,
                    code="RL000",
                    message=f"unrecognised repro-lint directive {body!r}",
                    hint=(
                        "use '# repro-lint: disable=RLnnn[,RLnnn...]' or a "
                        f"known alias ({', '.join(sorted(ALIASES))})"
                    ),
                )
            )
            continue
        waivers.by_line.setdefault(line, set()).update(codes)
    return waivers


def _parse_directive_body(body: str) -> set[str] | None:
    """Return waived codes, or None if the directive is malformed."""
    if body in ALIASES:
        return {ALIASES[body]}
    if body.startswith("disable="):
        codes = {c.strip() for c in body[len("disable=") :].split(",")}
        if codes and all(CODE_RE.match(c) for c in codes):
            return codes
    return None
